"""CmpSystem-level behaviour: fills, eviction routing, stats reset,
invariant cross-checks, writeback accounting."""

import pytest

from repro.sim.request import Supplier

from tests.util import access, build

from tests.test_arch_private import evict_from_l1


class TestL1Fill:
    def test_fill_requires_tokens(self):
        system = build("shared")
        with pytest.raises(ValueError):
            system.l1_fill(0, 0x10, tokens=0, dirty=False)

    def test_fill_registers_with_ledger(self):
        system = build("shared")
        tokens = system.ledger.take_from_memory(0x10)
        system.l1_fill(0, 0x10, tokens, dirty=False)
        assert system.ledger.l1_holders(0x10) == [0]
        system.check_invariants()

    def test_fill_merge_accumulates(self):
        system = build("shared")
        t1 = system.ledger.take_from_memory(0x10, 4)
        system.l1_fill(0, 0x10, t1, dirty=False)
        t2 = system.ledger.take_from_memory(0x10, 4)
        system.l1_fill(0, 0x10, t2, dirty=True)
        line = system.l1s[0].lookup(0x10)
        assert line.tokens == 8 and line.dirty
        system.check_invariants()


class TestWritebackAccounting:
    def test_dirty_offchip_eviction_counts_writeback(self):
        system = build("shared")
        amap = system.amap
        assoc = system.config.l2.assoc
        # Overflow one shared set with dirty blocks: same bank + index.
        blocks, tag = [], 1
        while len(blocks) < assoc + 2:
            candidate = (tag << 8) | 0b00010  # bank 2, index 0
            assert amap.shared_bank(candidate) == 2
            assert amap.shared_index(candidate) == 0
            blocks.append(candidate)
            tag += 1
        for b in blocks:
            access(system, 0, b, write=True)
            evict_from_l1(system, 0, b)
        assert system.memory.writebacks >= 2  # overflow was dirty
        system.check_invariants()

    def test_offchip_writeback_reserved_at_eviction_time(self):
        # Regression: the dirty branch used to call post_writeback(0)
        # regardless of the sim clock, piling every writeback onto the
        # controller's t=0 frontier.
        system = build("shared")
        access(system, 0, 0x999, write=True)
        system.l1s[0].invalidate(0x999)
        tokens = system.ledger.take_from_l1(0x999, 0)
        system.send_to_memory(0x999, tokens, dirty=True, router=0, t=50_000)
        assert system.memory.writebacks == 1
        mc, _ = system.topology.controller_hops(0)
        controller = system.memory.controller(mc)
        assert controller._busy_until >= 50_000

    def test_clean_tokens_return_silently(self):
        system = build("shared")
        access(system, 0, 0x999)
        line = system.l1s[0].invalidate(0x999)
        tokens = system.ledger.take_from_l1(0x999, 0)
        before = system.memory.writebacks
        system.send_to_memory(0x999, tokens, dirty=False, router=0)
        assert system.memory.writebacks == before


class TestSendToMemoryRouting:
    def test_tokens_prefer_onchip_l1_holder(self):
        system = build("shared")
        access(system, 0, 0x500)
        access(system, 3, 0x500)  # both L1s hold copies now
        line3 = system.l1s[3].invalidate(0x500)
        tokens = system.ledger.take_from_l1(0x500, 3)
        system.send_to_memory(0x500, tokens, dirty=False, router=3)
        # Tokens merged into core 0's line, not parked in memory.
        assert system.ledger.state(0x500).memory_tokens == 0
        system.check_invariants()

    def test_last_copy_resets_classifier(self):
        system = build("sp-nuca")
        access(system, 0, 0x501)
        line = system.l1s[0].invalidate(0x501)
        tokens = system.ledger.take_from_l1(0x501, 0)
        system.send_to_memory(0x501, tokens, dirty=False, router=0)
        from repro.core.private_bit import Classification
        assert system.architecture.classifier.classify(0x501) \
            is Classification.ABSENT


class TestStatsReset:
    def test_reset_clears_counters_keeps_state(self):
        system = build("shared")
        access(system, 0, 0x600)
        occupancy = system.l1s[0].occupancy()
        system.reset_stats()
        assert system.result.memory_accesses == 0
        assert system.network.messages_sent == 0
        assert system.memory.demand_requests == 0
        assert system.l1s[0].occupancy() == occupancy  # state survives
        out = access(system, 0, 0x600)
        assert out.supplier is Supplier.L1_LOCAL


class TestIntrospection:
    def test_l2_occupancy_counts_blocks(self):
        system = build("private")
        assert system.l2_occupancy() == 0
        access(system, 0, 0x700)
        evict_from_l1(system, 0, 0x700)
        assert system.l2_occupancy() >= 1
