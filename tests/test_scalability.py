"""Scaled-out (16-core) configurations — the introduction's motivation.

ESP-NUCA's mechanisms are per-bank and per-block; nothing in the
implementation may assume 8 cores. These tests pin that down on a
4x4-mesh, 64-bank, 16 MB system.
"""

import pytest

from repro.architectures.registry import make_architecture
from repro.common.config import many_core_config
from repro.sim.engine import SimulationEngine
from repro.sim.system import CmpSystem
from repro.workloads.base import TraceGenerator
from repro.workloads.mixes import MixBuilder, program


@pytest.fixture(scope="module")
def config16():
    return many_core_config(16, capacity_factor=8)


def run16(config, arch_name, spec, seed=1, check=True):
    system = CmpSystem(config, make_architecture(arch_name, config),
                       check_tokens=check)
    engine = SimulationEngine(system,
                              TraceGenerator(spec, seed).traces(16))
    result = engine.run()
    if check:
        system.check_invariants()
    return system, result


class TestGeometry:
    def test_derived_bit_fields(self, config16):
        assert config16.num_cores == 16
        assert config16.core_bits == 4
        assert config16.bank_bits == 6
        assert config16.private_bank_bits == 2  # still 4 banks per core
        assert config16.noc.columns * config16.noc.rows == 16

    def test_per_core_resources_preserved(self):
        full = many_core_config(16)
        assert full.l2.size == 16 * 1024 * 1024
        assert full.l2.num_banks == 64
        assert full.private_banks_per_core == 4

    def test_core_count_validation(self):
        with pytest.raises(ValueError):
            many_core_config(12)

    def test_private_partitions_tile_the_array(self, config16):
        from repro.common.addresses import AddressMap
        amap = AddressMap(config16)
        banks = [b for core in range(16) for b in amap.private_banks(core)]
        assert sorted(banks) == list(range(64))


class TestSixteenCoreRuns:
    @pytest.fixture(scope="class")
    def mix(self):
        shared_app = program("sh", footprint_blocks=500, shared_blocks=300,
                             shared_fraction=0.35, refs_per_core=500)
        return (MixBuilder("m16", num_cores=16)
                .assign(range(16), shared_app).build())

    @pytest.mark.parametrize("arch", ["shared", "private", "esp-nuca",
                                      "d-nuca", "cc30"])
    def test_architectures_run_clean_at_16_cores(self, config16, mix, arch):
        system, result = run16(config16, arch, mix)
        assert result.memory_accesses == 500 * 16
        assert result.performance > 0

    def test_esp_unbalanced_win_persists_at_16_cores(self, config16):
        """The single-thread capacity scenario must keep its shape when
        the chip doubles: victims use the larger idle pool."""
        partition = (config16.l2.sets_per_bank * config16.l2.assoc * 4)
        lone = program("lone", footprint_blocks=int(partition * 2.5),
                       refs_per_core=6000, reuse_fraction=0.3,
                       locality=1.1)
        mix = MixBuilder("lone16", num_cores=16).assign([0], lone).build()
        perf = {}
        for arch in ("private", "esp-nuca"):
            _, result = run16(config16, arch, mix, check=False)
            perf[arch] = result.performance
        assert perf["esp-nuca"] > perf["private"]

    def test_duel_state_per_bank_at_16_cores(self, config16, mix):
        system, _ = run16(config16, "esp-nuca", mix)
        arch = system.architecture
        assert len(arch.banks) == 64
        budgets = [arch.duel.state_of(b.bank_id).nmax for b in arch.banks]
        assert all(0 <= n <= 15 for n in budgets)
