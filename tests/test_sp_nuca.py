"""Directed tests of SP-NUCA (Section 2): private bit, dual mapping,
demotion with migration, eviction routing."""

from repro.cache.block import BlockClass
from repro.core.private_bit import Classification
from repro.sim.request import Supplier

from tests.util import access, build

from tests.test_arch_private import evict_from_l1


class TestPrivatePath:
    def test_arrival_classified_private(self):
        system = build("sp-nuca")
        access(system, 3, 0x777)
        arch = system.architecture
        assert arch.classifier.classify(0x777) is Classification.PRIVATE
        assert arch.classifier.owner(0x777) == 3

    def test_private_eviction_goes_to_private_bank(self):
        system = build("sp-nuca")
        block = 0x777
        access(system, 3, block)
        evict_from_l1(system, 3, block)
        bank = system.amap.private_bank(block, 3)
        entry = system.architecture.banks[bank].peek(
            system.amap.private_index(block), block)
        assert entry is not None and entry.cls is BlockClass.PRIVATE
        assert entry.owner == 3

    def test_private_l2_hit_is_local(self):
        system = build("sp-nuca")
        block = 0x777
        access(system, 3, block)
        evict_from_l1(system, 3, block)
        out = access(system, 3, block)
        assert out.supplier is Supplier.L2_LOCAL
        # Owner swap: the entry moved into the L1.
        bank = system.amap.private_bank(block, 3)
        assert system.architecture.banks[bank].peek(
            system.amap.private_index(block), block) is None


class TestDemotion:
    def test_remote_access_demotes_and_migrates(self):
        """Figure 2b step 3': a private block found in a remote private
        bank resets its private bit and migrates to its shared bank."""
        system = build("sp-nuca")
        arch = system.architecture
        block = 0x777
        access(system, 3, block)
        evict_from_l1(system, 3, block)
        out = access(system, 6, block)
        assert out.supplier is Supplier.L2_REMOTE
        assert arch.classifier.classify(block) is Classification.SHARED
        # Gone from the private bank...
        pbank = system.amap.private_bank(block, 3)
        assert arch.banks[pbank].peek(
            system.amap.private_index(block), block) is None
        # ... and the surplus tokens sit at the shared-map bank.
        sbank = system.amap.shared_bank(block)
        entry = arch.banks[sbank].peek(system.amap.shared_index(block), block)
        assert entry is not None and entry.cls is BlockClass.SHARED

    def test_demotion_via_remote_l1(self):
        system = build("sp-nuca")
        arch = system.architecture
        block = 0x778
        access(system, 3, block)  # still in core 3's L1
        out = access(system, 6, block)
        assert out.supplier is Supplier.L1_REMOTE
        assert arch.classifier.classify(block) is Classification.SHARED

    def test_shared_eviction_goes_to_shared_bank(self):
        system = build("sp-nuca")
        block = 0x779
        access(system, 3, block)
        access(system, 6, block)  # demote
        evict_from_l1(system, 6, block)
        sbank = system.amap.shared_bank(block)
        entry = system.architecture.banks[sbank].peek(
            system.amap.shared_index(block), block)
        assert entry is not None and entry.cls is BlockClass.SHARED

    def test_shared_hit_at_shared_bank(self):
        system = build("sp-nuca")
        block = 0x779
        access(system, 3, block)
        access(system, 6, block)
        evict_from_l1(system, 6, block)
        evict_from_l1(system, 3, block)
        out = access(system, 1, block)
        assert out.supplier in (Supplier.L2_SHARED, Supplier.L2_LOCAL)


class TestClassificationReset:
    def test_block_leaving_chip_resets_private_bit(self):
        system = build("sp-nuca")
        arch = system.architecture
        amap = system.amap
        assoc = system.config.l2.assoc
        # Enough same-set private blocks to overflow the L2 set; SP-NUCA
        # sends L2 private evictions to memory.
        blocks, tag = [], 1
        while len(blocks) < assoc + 2:
            candidate = tag << 10
            if amap.private_index(candidate) == 0 \
                    and amap.private_bank(candidate, 0) == amap.private_banks(0)[0]:
                blocks.append(candidate)
            tag += 1
        for b in blocks:
            access(system, 0, b)
            evict_from_l1(system, 0, b)
        evicted = [b for b in blocks
                   if arch.classifier.classify(b) is Classification.ABSENT]
        assert evicted, "an overflowing block must have left the chip"


class TestWriteUpgrade:
    def test_owner_write_is_silent_with_all_tokens(self):
        system = build("sp-nuca")
        block = 0x780
        access(system, 2, block)
        out = access(system, 2, block, write=True)
        assert out.complete - 0 <= system.config.l1.access_latency
