"""Shift-only EMA estimator (paper equations 1-2)."""

import pytest
from hypothesis import given, strategies as st

from repro.common.fixedpoint import EmaEstimator, float_ema_reference


class TestUpdateRule:
    def test_all_hits_saturates_high(self):
        e = EmaEstimator(bits=8, shift=1)
        for _ in range(20):
            e.record(True)
        assert e.value == 255
        assert e.hit_rate() > 0.99

    def test_all_misses_decays_to_zero(self):
        e = EmaEstimator(bits=8, shift=1)
        for _ in range(40):
            e.record(False)
        assert e.value == 0

    def test_alpha_half_single_steps(self):
        # value' = value - value>>1 + 256>>1 = value/2 + 128 on hit
        e = EmaEstimator(bits=8, shift=1, initial=0)
        assert e.record(True) == 128
        assert e.record(True) == 192
        assert e.record(False) == 96

    def test_initial_midpoint(self):
        assert EmaEstimator(bits=8, shift=1).value == 128
        assert EmaEstimator(bits=6, shift=2).value == 32

    def test_sample_counter(self):
        e = EmaEstimator()
        for hit in (True, False, True):
            e.record(hit)
        assert e.samples == 3
        e.reset()
        assert e.samples == 0 and e.value == 128

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            EmaEstimator(bits=8, shift=8)
        with pytest.raises(ValueError):
            EmaEstimator(bits=8, shift=1, initial=256)


class TestAgainstFloatReference:
    @given(st.lists(st.booleans(), min_size=1, max_size=200),
           st.integers(min_value=1, max_value=3))
    def test_tracks_float_model(self, events, shift):
        e = EmaEstimator(bits=8, shift=shift)
        for hit in events:
            e.record(hit)
        reference = float_ema_reference(events, bits=8, shift=shift)
        # Integer truncation only loses fractions per step; with alpha
        # = 2**-shift the accumulated error stays within a few counts
        # per bit of shift.
        assert abs(e.value - reference) <= 2 ** shift * 4

    @given(st.lists(st.booleans(), min_size=50, max_size=50))
    def test_value_always_in_range(self, events):
        e = EmaEstimator(bits=8, shift=1)
        for hit in events:
            e.record(hit)
            assert 0 <= e.value <= 255


class TestDegradedBeyond:
    def test_matching_rates_not_degraded(self):
        a, b = EmaEstimator(initial=200), EmaEstimator(initial=200)
        assert not a.degraded_beyond(b, shift=3)

    def test_large_gap_detected(self):
        low, ref = EmaEstimator(initial=100), EmaEstimator(initial=200)
        assert low.degraded_beyond(ref, shift=3)

    def test_strict_threshold_semantics(self):
        # Only degradation *strictly beyond* ref >> shift triggers:
        # exactly at the tolerance is still acceptable (the controller
        # must not shrink the budget when helping blocks cost exactly
        # the tolerated fraction — or, degenerately, when every
        # estimator reads 0).
        ref = EmaEstimator(initial=128)
        at_tolerance = EmaEstimator(initial=128 - (128 >> 3))
        assert not at_tolerance.degraded_beyond(ref, shift=3)
        beyond = EmaEstimator(initial=128 - (128 >> 3) - 1)
        assert beyond.degraded_beyond(ref, shift=3)
        within = EmaEstimator(initial=128 - (128 >> 3) + 1)
        assert not within.degraded_beyond(ref, shift=3)

    def test_all_zero_rates_not_degraded(self):
        # The degenerate case that motivates the strictness: an idle
        # bank where reference and conventional rates are both 0 must
        # not register as degraded (pre-fix ">=" said 0 - 0 >= 0).
        zero_a, zero_b = EmaEstimator(initial=0), EmaEstimator(initial=0)
        assert not zero_a.degraded_beyond(zero_b, shift=5)
