"""Fleet telemetry: the /metrics exposition, health probes, structured
logging, run-cache usage accounting and the ``esp-nuca top`` dashboard.

The acceptance contract pinned here:

* ``GET /metrics`` on a live gateway returns valid Prometheus text
  (round-tripped through the validating parser) covering the queue,
  fabric, cache, per-tenant and per-route scopes, and counters are
  monotone across scrapes;
* ``/healthz`` is liveness, ``/readyz`` is readiness: false before the
  store is migrated, false while draining, true in between;
* every request is observed exactly once in the per-route counters —
  including an SSE watcher that disconnects mid-stream (counted as
  ``aborted``, not lost, not double-counted);
* structured logs are one JSON object per line with correlation fields
  from :func:`repro.obs.logging.log_context`;
* run-cache usage accounting rides the ShardIndex's mtime-revalidated
  scans — repeated ``stats()``/``usage()`` calls do not re-list
  unchanged shard directories.
"""

import asyncio
import hashlib
import io
import json
import logging as stdlogging
import os
import socket
import threading
import time

import pytest

from repro.common.statsreg import StatsRegistry
from repro.gateway import (GatewayClient, GatewayConfig, GatewayError,
                           GatewayThread, JobStore)
from repro.harness import runcache as runcache_mod
from repro.harness.executor import Executor
from repro.harness.runcache import RunCache
from repro.obs import logging as obslog
from repro.obs.metrics import (CONTENT_TYPE, MetricsExporter,
                               assert_counters_monotone, parse_exposition)
from repro.obs.top import render_dashboard, run_top
from tests.test_gateway import (QUICK, SETTINGS_WIRE, GatedExecutor, gateway,
                                mint)


def wait_for(predicate, timeout=30.0, interval=0.05, message="condition"):
    deadline = time.monotonic() + timeout
    while True:
        value = predicate()
        if value:
            return value
        if time.monotonic() >= deadline:
            raise AssertionError(f"{message} not met within {timeout:.0f}s")
        time.sleep(interval)


# -- the exporter and its validating parser -----------------------------------

class TestExporter:
    def build(self):
        reg = StatsRegistry()
        gw = reg.scope("gateway")
        gw.counter("http_requests").inc(3)
        gw.scope("tenants").scope("alice").counter("admits").inc(2)
        gw.scope("rejects").counter("auth").inc()
        exporter = MetricsExporter()
        exporter.mount_registry(reg, label_scopes={
            "gateway.tenants": "tenant", "gateway.rejects": "reason"})
        return reg, exporter

    def test_registry_round_trip_with_label_folding(self):
        _, exporter = self.build()
        text = exporter.render()
        assert text.endswith("\n")
        parsed = parse_exposition(text)
        assert parsed.value("espnuca_gateway_http_requests_total") == 3
        assert parsed.value("espnuca_gateway_tenants_admits_total",
                            tenant="alice") == 2
        assert parsed.value("espnuca_gateway_rejects_total",
                            reason="auth") == 1
        assert parsed.types["espnuca_gateway_http_requests_total"] == \
            "counter"
        # the folded families never leak the per-entity metric names
        assert "espnuca_gateway_tenants_alice" not in text
        assert "espnuca_gateway_rejects_auth" not in text

    def test_histogram_pow2_le_bounds_are_exact(self):
        reg = StatsRegistry()
        hist = reg.scope("routes").scope("healthz").histogram("latency_us")
        hist.record(1)    # bit_length 1 -> bucket 1, le = 1
        hist.record(5)    # bit_length 3 -> bucket 3, le = 7
        hist.record(5)
        exporter = MetricsExporter()
        exporter.mount_registry(reg,
                                label_scopes={"routes": "route"})
        parsed = parse_exposition(exporter.render())
        name = "espnuca_routes_latency_us"
        assert parsed.types[name] == "histogram"
        assert parsed.value(f"{name}_bucket", route="healthz", le="1") == 1
        assert parsed.value(f"{name}_bucket", route="healthz", le="7") == 3
        assert parsed.value(f"{name}_bucket", route="healthz",
                            le="+Inf") == 3
        assert parsed.value(f"{name}_sum", route="healthz") == 11
        assert parsed.value(f"{name}_count", route="healthz") == 3

    def test_collectors_skip_none_and_suffix_counters(self):
        exporter = MetricsExporter()
        exporter.add_collector(lambda: [
            ("queue_backlog", "gauge", "queued", {}, 4),
            ("jobs_done", "counter", "done", {"tenant": "a"}, 7),
            ("heartbeat_age_max_seconds", "gauge", "age", {}, None)])
        parsed = parse_exposition(exporter.render())
        assert parsed.value("espnuca_queue_backlog") == 4
        assert parsed.value("espnuca_jobs_done_total", tenant="a") == 7
        assert parsed.value("espnuca_heartbeat_age_max_seconds") is None

    def test_parser_rejects_malformed_documents(self):
        for bad in ("metric{x=unquoted} 1\n",
                    "metric 1 2 3\n",
                    "metric not-a-number\n",
                    "dup 1\ndup 2\n",
                    "# TYPE espnuca_x sideways\n",
                    "# HELP\n"):
            with pytest.raises(ValueError):
                parse_exposition(bad)
        # label escapes round-trip
        parsed = parse_exposition(
            'm{name="a\\"b\\\\c\\nd"} 2\n')
        assert parsed.value("m", name='a"b\\c\nd') == 2

    def test_counter_monotonicity_check(self):
        text = ("# TYPE c_total counter\nc_total 5\n"
                "# TYPE g gauge\ng 9\n")
        before = parse_exposition(text)
        after = parse_exposition(text.replace("c_total 5", "c_total 6")
                                 .replace("g 9", "g 2"))
        assert set(before.counters()) == {("c_total", ())}
        assert_counters_monotone(before, after)  # gauge drop is fine
        with pytest.raises(AssertionError, match="c_total"):
            assert_counters_monotone(after, before)


# -- structured logging -------------------------------------------------------

@pytest.fixture
def clean_logging(monkeypatch):
    """Restore the ``repro`` root logger and REPRO_LOG after the test."""
    monkeypatch.delenv(obslog.ENV_VAR, raising=False)
    root = stdlogging.getLogger(obslog.ROOT_LOGGER)
    before = (list(root.handlers), root.level, root.propagate)
    yield root
    root.handlers[:] = before[0]
    root.setLevel(before[1])
    root.propagate = before[2]


class TestStructuredLogging:
    def test_json_lines_carry_context_and_pid(self, clean_logging):
        sink = io.StringIO()
        obslog.configure("debug", fmt="json", stream=sink,
                         export_env=False)
        log = obslog.get_logger("gateway")
        with obslog.log_context(job="g7", tenant="alice"):
            log.info("job admitted", points=4)
        record = json.loads(sink.getvalue())
        assert record["event"] == "job admitted"
        assert record["level"] == "info"
        assert record["logger"] == "repro.gateway"
        assert record["job"] == "g7" and record["tenant"] == "alice"
        assert record["points"] == 4
        assert record["pid"] == os.getpid()
        # context pops with the block
        sink.truncate(0), sink.seek(0)
        log.info("after")
        assert "job" not in json.loads(sink.getvalue())

    def test_configure_is_idempotent_and_exports_env(self, clean_logging,
                                                     monkeypatch):
        obslog.configure("info", fmt="json", stream=io.StringIO())
        obslog.configure("debug", fmt="human", stream=io.StringIO())
        named = [h for h in clean_logging.handlers
                 if h.get_name() == "repro-structured"]
        assert len(named) == 1
        assert os.environ[obslog.ENV_VAR] == "human:debug"
        # a worker process rebuilds the same configuration from the env
        assert obslog.configure_from_env({obslog.ENV_VAR: "json:debug"})
        assert not obslog.configure_from_env({})
        assert not obslog.configure_from_env({obslog.ENV_VAR: "bogus:nope"})

    def test_disabled_levels_cost_no_record_build(self, clean_logging):
        sink = io.StringIO()
        obslog.configure("warning", fmt="json", stream=sink,
                         export_env=False)
        log = obslog.get_logger("executor")
        assert not log.enabled_for(stdlogging.DEBUG)
        log.debug("invisible", huge=object())
        log.info("also invisible")
        assert sink.getvalue() == ""
        log.warning("visible")
        assert json.loads(sink.getvalue())["event"] == "visible"


# -- /metrics on a live gateway -----------------------------------------------

class TestMetricsEndpoint:
    def test_scrape_covers_fleet_scopes_and_stays_monotone(self, tmp_path):
        with gateway(tmp_path / "m.sqlite", cache_dir=tmp_path / "cache",
                     allow_anonymous=True) as handle:
            with GatewayClient(handle.base_url) as client:
                resp, data = client._roundtrip("GET", "/metrics")
                assert resp.status == 200
                assert resp.getheader("Content-Type") == CONTENT_TYPE
                before = parse_exposition(data.decode("utf-8"))
                job = client.submit(["shared"], ["apache"], seeds=[7],
                                    settings=SETTINGS_WIRE)["job"]
                client.wait(job)
                after = parse_exposition(client.metrics())
                assert_counters_monotone(before, after)
                # one family from every fleet scope the issue names
                for name in ("espnuca_queue_backlog",
                             "espnuca_queue_limit",
                             "espnuca_dispatchers",
                             "espnuca_fabric_running",
                             "espnuca_cache_hit_ratio",
                             "espnuca_cache_entries",
                             "espnuca_executed_points_total",
                             "espnuca_gateway_http_requests_total",
                             "espnuca_store_results",
                             "espnuca_ready",
                             "espnuca_draining"):
                    assert after.value(name) is not None, name
                assert after.value("espnuca_ready") == 1
                assert after.value("espnuca_executed_points_total") == 1
                assert after.value("espnuca_gateway_tenants_requests_total",
                                   tenant="anon") >= 2
                assert after.value("espnuca_gateway_tenants_admits_total",
                                   tenant="anon") == 1
                # per-route latency histogram exists for the submit route
                assert after.value(
                    "espnuca_gateway_routes_latency_us_count",
                    route="v1_jobs") >= 1

    def test_successful_requests_count_no_phantom_rejects(self, tmp_path):
        """Regression: resolving a job used to *construct* (and thereby
        count) the not-found reject even when the job existed."""
        with gateway(tmp_path / "p.sqlite", allow_anonymous=True) as handle:
            with GatewayClient(handle.base_url) as client:
                job = client.submit(["shared"], ["apache"], seeds=[8],
                                    settings=SETTINGS_WIRE)["job"]
                client.wait(job)
                client.job(job)
                parsed = parse_exposition(client.metrics())
                assert parsed.value("espnuca_gateway_rejects_total",
                                    reason="not_found") == 0
                assert parsed.value(
                    "espnuca_gateway_tenants_rejects_total",
                    tenant="anon", default=0) == 0
                with pytest.raises(GatewayError):
                    client.job("g999")
                parsed = parse_exposition(client.metrics())
                assert parsed.value("espnuca_gateway_rejects_total",
                                    reason="not_found") == 1

    def test_telemetry_disabled_is_typed_503_and_skips_counters(
            self, tmp_path):
        with gateway(tmp_path / "d.sqlite", allow_anonymous=True,
                     telemetry=False) as handle:
            assert handle.gateway.exporter is None
            with GatewayClient(handle.base_url) as client:
                with pytest.raises(GatewayError) as exc:
                    client.metrics()
                assert exc.value.status == 503
                assert exc.value.code == "telemetry-disabled"
                # the rest of the API is unaffected
                assert client.health()["ok"] is True
                assert client.readyz()["ready"] is True
                client.status()
                snap = handle.gateway.registry.to_dict()["gateway"]
                assert snap["tenants"] == {}
                assert snap["routes"] == {}


# -- health probes ------------------------------------------------------------

class TestHealthProbes:
    def test_ready_gateway_reports_all_checks_true(self, tmp_path):
        with gateway(tmp_path / "h.sqlite", allow_anonymous=True) as handle:
            with GatewayClient(handle.base_url) as client:
                assert client.health()["ok"] is True
                reply = client.readyz()
                assert reply["ready"] is True
                assert reply["checks"] == {"store_migrated": True,
                                           "fabric_started": True,
                                           "queue_accepting": True}

    def test_readyz_false_before_store_is_migrated(self, tmp_path):
        db = str(tmp_path / "u.sqlite")
        store = JobStore(db)
        assert store.migrate(upto=1) == ["0001_initial.sql"]
        handle = GatewayThread(
            GatewayConfig(bind=("tcp", "127.0.0.1", 0), db_path=db,
                          allow_anonymous=True),
            executor=Executor(jobs=1, cache=RunCache(enabled=False)),
            settings=QUICK, store=store)
        with handle:
            with GatewayClient(handle.base_url) as client:
                assert client.health()["ok"] is True  # alive, not ready
                reply = client.readyz()
                assert reply["ready"] is False
                assert reply["checks"]["store_migrated"] is False
                assert reply["checks"]["fabric_started"] is True
                parsed = parse_exposition(client.metrics())
                assert parsed.value("espnuca_ready") == 0
                assert parsed.value("espnuca_ready_check",
                                    check="store_migrated") == 0
                # migrating the live store flips readiness to true
                store.migrate()
                assert client.readyz()["ready"] is True

    def test_readyz_false_while_draining(self, tmp_path):
        gate = threading.Event()
        executor = GatedExecutor(jobs=1, cache=RunCache(enabled=False),
                                 gate=gate)
        try:
            with gateway(tmp_path / "dr.sqlite", executor,
                         allow_anonymous=True, workers=1,
                         batch=1) as handle:
                client = GatewayClient(handle.base_url)
                client.submit(["shared"], ["apache"], seeds=[9],
                              settings=SETTINGS_WIRE)
                assert client.readyz()["ready"] is True
                future = asyncio.run_coroutine_threadsafe(
                    handle.gateway.shutdown(), handle._box["loop"])
                reply = wait_for(
                    lambda: (lambda r: r if not r["ready"] else None)(
                        client.readyz()),
                    message="readyz flipping false during drain")
                assert reply["checks"]["queue_accepting"] is False
                gate.set()
                future.result(timeout=120)
        finally:
            gate.set()


# -- exactly-once request accounting (SSE disconnect) -------------------------

class TestRequestAccounting:
    def test_sse_disconnect_counts_aborted_exactly_once(self, tmp_path):
        gate = threading.Event()
        executor = GatedExecutor(jobs=1, cache=RunCache(enabled=False),
                                 gate=gate)
        try:
            with gateway(tmp_path / "s.sqlite", executor,
                         allow_anonymous=True, workers=1,
                         batch=1) as handle:
                client = GatewayClient(handle.base_url)
                job = client.submit(["shared"], ["apache"], seeds=[92],
                                    settings=SETTINGS_WIRE)["job"]
                _, host, port = handle.address
                sock = socket.create_connection((host, port), timeout=60)
                sock.sendall(b"GET /v1/jobs/" + job.encode() +
                             b"/events HTTP/1.1\r\nHost: x\r\n\r\n")
                stream = sock.makefile("rb")
                while b"data: " not in stream.readline():
                    pass
                # Watcher vanishes mid-stream.  shutdown() sends the FIN
                # right away — close() alone would wait for the makefile
                # wrapper's duplicate reference.
                sock.shutdown(socket.SHUT_RDWR)
                stream.close()
                sock.close()
                gate.set()
                assert client.wait(job)["state"] == "done"

                def events_route():
                    parsed = parse_exposition(client.metrics())
                    aborted = parsed.value(
                        "espnuca_gateway_routes_aborted_total",
                        route="v1_jobs_id_events", default=0)
                    return parsed if aborted else None

                # abort observation is asynchronous (the server notices
                # on its next write) — poll, then pin the exact counts
                parsed = wait_for(events_route,
                                  message="aborted SSE request observed")
                assert parsed.value(
                    "espnuca_gateway_routes_requests_total",
                    route="v1_jobs_id_events") == 1
                assert parsed.value(
                    "espnuca_gateway_routes_aborted_total",
                    route="v1_jobs_id_events") == 1
                assert parsed.value(
                    "espnuca_gateway_routes_errors_total",
                    route="v1_jobs_id_events", default=0) == 0
                # the per-tenant counter saw it exactly once too: one
                # events request among the submit + poll traffic
                snap = handle.gateway.registry.to_dict()
                routes = snap["gateway"]["routes"]
                assert routes["v1_jobs_id_events"]["requests"] == 1
        finally:
            gate.set()


# -- fabric summary in server status ------------------------------------------

class TestFabricSummary:
    def test_executor_summary_shape_without_fabric(self):
        executor = Executor(jobs=1, cache=RunCache(enabled=False))
        assert executor.fabric_running() is True
        summary = executor.fabric_summary()
        assert summary["running"] is True
        assert summary["workers"] == 0
        assert summary["heartbeat_age_s"] == {}
        assert summary["heartbeat_age_max_s"] is None
        for key in ("dispatched", "completed", "requeued", "crashed"):
            assert summary[key] == 0

    def test_server_status_carries_fabric_summary(self, tmp_path):
        with gateway(tmp_path / "f.sqlite", allow_anonymous=True) as handle:
            with GatewayClient(handle.base_url) as client:
                status = client.status()
                summary = status["fabric_summary"]
                assert summary["running"] is True
                assert set(summary) >= {"workers", "busy",
                                        "heartbeat_age_s",
                                        "heartbeat_age_max_s", "requeued"}


# -- run-cache usage accounting (repro-cache stats) ---------------------------

def seed_cache_files(cache, count, payload=b'{"x":1}'):
    keys = [hashlib.sha256(str(i).encode()).hexdigest()
            for i in range(count)]
    for key in keys:
        path = cache.entry_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as handle:
            handle.write(payload)
    return keys


class TestRunCacheUsage:
    def test_usage_counts_entries_and_bytes(self, tmp_path):
        cache = RunCache(root=str(tmp_path / "c"), shards=4)
        assert cache.usage() == (0, 0)
        keys = seed_cache_files(cache, 5)
        entries, size = cache.usage()
        assert entries == 5
        assert size == 5 * len(b'{"x":1}')
        assert sum(c for c, _ in cache.shard_usage().values()) == 5
        stats = cache.stats()
        assert stats["entries"] == 5 and stats["bytes"] == size
        assert stats["per_version"] == {runcache_mod.cache_generation(): 5}
        assert stats["shards"]["populated"] == len(cache.shard_usage())
        # the index still answers membership through the same scans
        assert cache.probably_has(keys[0])
        assert not cache.probably_has("f" * 64)

    def test_repeated_stats_do_not_rescan_unchanged_shards(
            self, tmp_path, monkeypatch):
        cache = RunCache(root=str(tmp_path / "c"), shards=4)
        seed_cache_files(cache, 6)
        first = cache.stats()
        calls = []
        real_scandir = os.scandir
        monkeypatch.setattr(runcache_mod.os, "scandir",
                            lambda path: calls.append(path)
                            or real_scandir(path))
        second = cache.stats()
        assert calls == []  # mtime unchanged: stat-only revalidation
        assert second["entries"] == first["entries"]
        assert second["bytes"] == first["bytes"]
        # a new entry bumps its shard's mtime: exactly that shard rescans
        new_key = hashlib.sha256(b"fresh").hexdigest()
        path = cache.entry_path(new_key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as handle:
            handle.write(b'{"z":333}')
        calls.clear()
        third = cache.stats()
        assert third["entries"] == first["entries"] + 1
        assert len(calls) == 1
        assert calls[0].endswith(cache.shard_dir(new_key))

    def test_note_keeps_index_warm_after_put(self, tmp_path):
        cache = RunCache(root=str(tmp_path / "c"), shards=4)
        keys = seed_cache_files(cache, 2)
        shard = cache.shard_dir(keys[0])
        assert cache.index.contains(keys[0], shard)  # scan now cached
        fake = "deadbeef" * 8
        cache.index.note(fake, shard)  # what put() does after a write
        assert cache.index.contains(fake, shard)
        # absent shard directories report empty usage, not an error
        assert cache.index.shard_usage("zz") == (0, 0)


# -- the top dashboard --------------------------------------------------------

SAMPLE_EXPOSITION = """\
# TYPE espnuca_queue_backlog gauge
espnuca_queue_backlog 3
espnuca_queue_inflight 1
espnuca_queue_limit 256
espnuca_dispatchers 2
espnuca_dispatchers_busy 1
# TYPE espnuca_points_requested_total counter
espnuca_points_requested_total 40
espnuca_fabric_running 1
espnuca_fabric_workers 4
espnuca_fabric_busy 2
espnuca_fabric_heartbeat_age_max_seconds 0.4
# TYPE espnuca_fabric_completed_total counter
espnuca_fabric_completed_total 30
# TYPE espnuca_executed_points_total counter
espnuca_executed_points_total 30
# TYPE espnuca_cache_hits_total counter
espnuca_cache_hits_total 10
espnuca_cache_misses_total 30
espnuca_cache_hit_ratio 0.25
espnuca_cache_entries 12
espnuca_cache_bytes 4096
# TYPE espnuca_gateway_tenants_requests_total counter
espnuca_gateway_tenants_requests_total{tenant="alice"} 9
espnuca_gateway_tenants_admits_total{tenant="alice"} 4
espnuca_gateway_tenants_rejects_total{tenant="alice"} 1
# TYPE espnuca_gateway_routes_requests_total counter
espnuca_gateway_routes_requests_total{route="v1_jobs"} 4
espnuca_gateway_routes_errors_total{route="v1_jobs"} 1
espnuca_gateway_routes_aborted_total{route="v1_jobs"} 0
espnuca_gateway_routes_latency_us_sum{route="v1_jobs"} 9000
espnuca_gateway_routes_latency_us_count{route="v1_jobs"} 4
espnuca_draining 0
"""


class TestTopDashboard:
    def test_render_panels_from_parsed_metrics(self):
        parsed = parse_exposition(SAMPLE_EXPOSITION)
        frame = render_dashboard(
            parsed, {"ready": True, "checks": {}}, url="http://gw:1")
        assert "esp-nuca top — http://gw:1  [ready]" in frame
        assert "backlog 3/256" in frame
        assert "workers 2/4 busy" in frame
        assert "heartbeat 0.4s" in frame
        assert "hit ratio 25%" in frame
        assert "12 entries, 4.0KiB" in frame
        assert "alice" in frame
        assert "v1_jobs" in frame
        assert "2.25" in frame  # 9000us / 4 requests = 2.25ms

    def test_render_shows_rates_failing_checks_and_draining(self):
        previous = parse_exposition(SAMPLE_EXPOSITION)
        current = parse_exposition(
            SAMPLE_EXPOSITION
            .replace("espnuca_executed_points_total 30",
                     "espnuca_executed_points_total 40")
            .replace("espnuca_draining 0", "espnuca_draining 1"))
        frame = render_dashboard(
            current,
            {"ready": False, "checks": {"queue_accepting": False,
                                        "store_migrated": True}},
            url="u", previous=previous, elapsed_s=5.0)
        assert "NOT READY (queue_accepting)" in frame
        assert "[draining]" in frame
        assert "executed 40 (2.0/s)" in frame
        # first frame has no baseline: no rate shown
        first = render_dashboard(previous, None, url="u")
        assert "(2.0/s)" not in first and "ready ?" in first

    def test_run_top_against_live_gateway_and_dead_port(self, tmp_path):
        with gateway(tmp_path / "t.sqlite", allow_anonymous=True) as handle:
            sink = io.StringIO()
            assert run_top(handle.base_url, once=True, stream=sink) == 0
            out = sink.getvalue()
            assert "esp-nuca top" in out and "[ready]" in out
            assert "\x1b[2J" not in out  # --once never clears the screen
            sink = io.StringIO()
            assert run_top(handle.base_url, interval=0.01, iterations=2,
                           stream=sink) == 0
            assert sink.getvalue().count("esp-nuca top") == 2
        # unreachable gateway: a message and exit 1, no traceback
        sink = io.StringIO()
        dead = socket.socket()
        dead.bind(("127.0.0.1", 0))
        port = dead.getsockname()[1]
        dead.close()
        assert run_top(f"http://127.0.0.1:{port}", once=True,
                       stream=sink) == 1
        assert "cannot reach" in sink.getvalue()

    def test_cli_top_once(self, tmp_path, capsys):
        from repro.harness.cli import main as cli_main

        with gateway(tmp_path / "cli.sqlite",
                     allow_anonymous=True) as handle:
            _, host, port = handle.address
            assert cli_main(["top", "--http", f"{host}:{port}",
                             "--once"]) == 0
        out = capsys.readouterr().out
        assert "esp-nuca top" in out
        assert cli_main(["top", "--http", "127.0.0.1:1", "--once",
                         "--interval", "0"]) == 2
