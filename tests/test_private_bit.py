"""Private-bit classification state machine (Section 2.1)."""

import pytest

from repro.core.private_bit import Classification, PrivateBitDirectory


class TestLifecycle:
    def test_absent_before_arrival(self):
        d = PrivateBitDirectory()
        assert d.classify(0x10) is Classification.ABSENT
        assert d.owner(0x10) is None

    def test_arrival_makes_private(self):
        d = PrivateBitDirectory()
        d.on_arrival(0x10, core=3)
        assert d.classify(0x10) is Classification.PRIVATE
        assert d.owner(0x10) == 3

    def test_double_arrival_rejected(self):
        d = PrivateBitDirectory()
        d.on_arrival(0x10, 0)
        with pytest.raises(ValueError):
            d.on_arrival(0x10, 1)

    def test_owner_access_keeps_private(self):
        d = PrivateBitDirectory()
        d.on_arrival(0x10, 3)
        assert not d.note_access(0x10, 3)
        assert d.classify(0x10) is Classification.PRIVATE

    def test_second_core_demotes(self):
        d = PrivateBitDirectory()
        d.on_arrival(0x10, 3)
        assert d.note_access(0x10, 5)
        assert d.classify(0x10) is Classification.SHARED
        assert d.owner(0x10) is None
        assert d.demotions == 1

    def test_shared_is_sticky_on_chip(self):
        # "This status remains with the block while it stays in the chip."
        d = PrivateBitDirectory()
        d.on_arrival(0x10, 3)
        d.note_access(0x10, 5)
        assert not d.note_access(0x10, 3)
        assert d.classify(0x10) is Classification.SHARED

    def test_left_chip_resets(self):
        d = PrivateBitDirectory()
        d.on_arrival(0x10, 3)
        d.note_access(0x10, 5)
        d.on_left_chip(0x10)
        assert d.classify(0x10) is Classification.ABSENT
        d.on_arrival(0x10, 5)  # may arrive private again
        assert d.owner(0x10) == 5

    def test_force_shared(self):
        d = PrivateBitDirectory()
        d.on_arrival(0x10, 0)
        d.force_shared(0x10)
        assert d.classify(0x10) is Classification.SHARED

    def test_note_access_on_absent_is_noop(self):
        d = PrivateBitDirectory()
        assert not d.note_access(0x99, 0)

    def test_len_counts_tracked_blocks(self):
        d = PrivateBitDirectory()
        d.on_arrival(1, 0)
        d.on_arrival(2, 1)
        assert len(d) == 2
