"""L1 cache: exact LRU, fills, merges, invalidation, reuse bit."""

from repro.cache.l1 import L1Cache


class TestBasics:
    def test_hit_miss_counters(self):
        l1 = L1Cache(0, num_sets=2, assoc=2)
        assert l1.access(0x10) is None
        l1.fill(0x10, tokens=1, dirty=False)
        assert l1.access(0x10) is not None
        assert (l1.hits, l1.misses) == (1, 1)

    def test_set_isolation(self):
        l1 = L1Cache(0, num_sets=2, assoc=1)
        l1.fill(0, tokens=1, dirty=False)   # set 0
        l1.fill(1, tokens=1, dirty=False)   # set 1
        assert l1.lookup(0) and l1.lookup(1)

    def test_occupancy(self):
        l1 = L1Cache(0, num_sets=2, assoc=2)
        l1.fill(0, 1, False)
        l1.fill(2, 1, False)
        assert l1.occupancy() == 2
        assert sorted(l1.resident_blocks()) == [0, 2]


class TestEviction:
    def test_lru_eviction_within_set(self):
        l1 = L1Cache(0, num_sets=1, assoc=2)
        l1.fill(1, 1, False)
        l1.fill(2, 1, False)
        l1.lookup(1)  # 2 becomes LRU
        _, evicted, _ = l1.fill(3, 1, False)
        assert evicted is not None and evicted.block == 2

    def test_no_eviction_when_room(self):
        l1 = L1Cache(0, num_sets=1, assoc=2)
        _, evicted, merged = l1.fill(1, 1, False)
        assert not merged
        assert evicted is None


class TestMergeAndInvalidate:
    def test_refill_merges_tokens_and_dirty(self):
        l1 = L1Cache(0, num_sets=1, assoc=2)
        line, _, _ = l1.fill(1, tokens=2, dirty=False)
        merged, evicted, was_merge = l1.fill(1, tokens=3, dirty=True)
        assert merged is line and evicted is None and was_merge
        assert line.tokens == 5 and line.dirty

    def test_invalidate(self):
        l1 = L1Cache(0, num_sets=1, assoc=2)
        l1.fill(1, 1, False)
        line = l1.invalidate(1)
        assert line is not None
        assert l1.invalidate(1) is None
        assert l1.lookup(1) is None


class TestReuseBit:
    def test_fresh_line_not_reused(self):
        l1 = L1Cache(0, num_sets=1, assoc=2)
        line, _, _ = l1.fill(1, 1, False)
        assert not line.reused

    def test_hit_sets_reused(self):
        l1 = L1Cache(0, num_sets=1, assoc=2)
        line, _, _ = l1.fill(1, 1, False)
        l1.access(1)
        assert line.reused
