"""Timeline instrumentation (Figure 3 monitoring view)."""

import pytest

from repro.core.timeline import TimelineRecorder
from repro.sim.cpu import TraceItem, TraceKind
from repro.sim.engine import SimulationEngine

from tests.util import build, tiny_config


def run_with_recorder(trace_blocks, period=32):
    system = build("esp-nuca", check_tokens=False)
    recorder = TimelineRecorder(system.architecture, period=period).install()
    trace = [TraceItem(gap=1, block=b, kind=TraceKind.LOAD)
             for b in trace_blocks]
    traces = [iter(trace)] + [None] * 7
    SimulationEngine(system, traces).run()
    return recorder


class TestRecording:
    def test_samples_accumulate(self):
        blocks = list(range(0x100, 0x140)) * 30
        recorder = run_with_recorder(blocks, period=16)
        assert len(recorder.samples) >= 2
        assert recorder.samples[0].events == 16

    def test_sample_fields_in_range(self):
        blocks = list(range(0x100, 0x140)) * 30
        recorder = run_with_recorder(blocks)
        for sample in recorder.samples:
            assert 0.0 <= sample.hr_reference <= 1.0
            assert 0 <= sample.average_nmax <= 15
            assert len(sample.per_bank_nmax) == 32

    def test_snapshot_every_period(self):
        blocks = list(range(0x100, 0x140)) * 30
        recorder = run_with_recorder(blocks, period=16)
        assert [s.events for s in recorder.samples] == \
            [16 * (i + 1) for i in range(len(recorder.samples))]

    def test_requires_dueling_variant(self):
        system = build("esp-nuca-flat")
        with pytest.raises(ValueError):
            TimelineRecorder(system.architecture)

    def test_requires_bound_architecture(self):
        from repro.core.esp_nuca import EspNuca

        with pytest.raises(ValueError):
            TimelineRecorder(EspNuca(tiny_config()))

    def test_double_install_is_idempotent(self):
        system = build("esp-nuca")
        recorder = TimelineRecorder(system.architecture, period=8)
        assert recorder.install() is recorder.install()
        assert recorder.installed

    def test_uninstall_is_idempotent_and_stops_recording(self):
        system = build("esp-nuca", check_tokens=False)
        recorder = TimelineRecorder(system.architecture, period=1)
        recorder.install()
        system.access(0, 0x100, False, 0)
        seen = len(recorder.samples)
        recorder.uninstall()
        recorder.uninstall()  # second uninstall is a no-op
        assert not recorder.installed
        system.access(0, 0x200, False, 1000)
        assert len(recorder.samples) == seen

    def test_context_manager_detaches_on_exception(self):
        system = build("esp-nuca", check_tokens=False)
        recorder = TimelineRecorder(system.architecture, period=1)
        with pytest.raises(RuntimeError):
            with recorder:
                system.access(0, 0x100, False, 0)
                raise RuntimeError("mid-run failure")
        assert not recorder.installed
        assert not system.tracer.enabled  # private tracer restored


class TestRendering:
    def test_sparkline_shape(self):
        blocks = list(range(0x100, 0x180)) * 20
        recorder = run_with_recorder(blocks, period=16)
        line = recorder.sparkline("average_nmax")
        assert len(line) == len(recorder.samples)
        assert set(line) <= set("▁▂▃▄▅▆▇█")

    def test_sparkline_downsampling(self):
        blocks = list(range(0x100, 0x180)) * 20
        recorder = run_with_recorder(blocks, period=8)
        line = recorder.sparkline("average_nmax", width=10)
        assert len(line) <= 10

    def test_format_mentions_all_monitors(self):
        blocks = list(range(0x100, 0x140)) * 30
        text = run_with_recorder(blocks).format()
        assert "HR_ref" in text and "HR_conv" in text and "HR_expl" in text

    def test_empty_recorder_formats(self):
        system = build("esp-nuca")
        recorder = TimelineRecorder(system.architecture)
        assert recorder.format() == "no samples"
        assert recorder.sparkline() == ""

    def test_sparkline_flat_series_is_well_defined(self):
        system = build("esp-nuca")
        recorder = TimelineRecorder(system.architecture)
        from repro.core.timeline import TimelineSample

        recorder.samples = [TimelineSample(events=i, average_nmax=2.0,
                                           hr_reference=0.5,
                                           hr_conventional=0.5,
                                           hr_explorer=0.5)
                            for i in range(4)]
        assert recorder.sparkline("average_nmax") == "▁▁▁▁"
