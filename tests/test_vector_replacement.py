"""Property test: batch replacement (sim/vector/replacement.py) must
reproduce the reference policies (cache/replacement.py) decision for
decision — including protected-LRU refusal, the over-budget
shed-before-free convergence rule, and every tie-break.

Strategy: drive the same seeded random op sequence (install / touch /
evict / reclassify / budget change) through a real
:class:`~repro.cache.cache_set.CacheSet` guarded by the reference
policy, and through a :class:`~repro.sim.vector.replacement.SetMatrix`;
at every install the chosen way must agree, on both the numpy batch
path and the scalar fallback.
"""

from __future__ import annotations

import random

import pytest

from repro.cache.block import BlockClass, CacheBlock
from repro.cache.cache_set import CacheSet
from repro.cache.replacement import FlatLru, ProtectedLru
from repro.sim.vector.replacement import (REFUSED, SetMatrix, choose_flat,
                                          choose_protected)

WAYS = 4
HELPING_CLASSES = (BlockClass.REPLICA, BlockClass.VICTIM)
FIRST_CLASSES = (BlockClass.PRIVATE, BlockClass.SHARED)


class _StubBank:
    """The slice of CacheBank that ProtectedLru consumes."""

    def __init__(self, limit: int) -> None:
        self.limit = limit

    def helping_limit(self, set_index: int) -> int:
        return self.limit


class _Harness:
    """One set mirrored in both representations, plus a stamp counter."""

    def __init__(self) -> None:
        self.cache_set = CacheSet(WAYS)
        self.matrix = SetMatrix(1, WAYS)
        self.stamp = 0
        self.next_block = 0

    def tick(self) -> int:
        self.stamp += 1
        return self.stamp

    def fresh_block(self, cls: BlockClass) -> CacheBlock:
        self.next_block += 1
        return CacheBlock(block=self.next_block, cls=cls,
                          owner=-1 if cls is BlockClass.SHARED else 0)

    def install(self, way: int, entry: CacheBlock) -> None:
        entry.lru = self.tick()
        self.cache_set.install(way, entry)
        self.matrix.install(0, way, entry.is_helping, entry.lru)

    def valid_ways(self):
        return [w for w, e in enumerate(self.cache_set.blocks)
                if e is not None]


def _agreeing_choice(harness: _Harness, policy, bank, entry: CacheBlock):
    """The reference policy's choice, asserted equal on both batch paths."""
    ref = policy.choose(harness.cache_set, entry, bank, 0)
    if isinstance(policy, FlatLru):
        batch = choose_flat(harness.matrix, [0])[0]
        scalar = choose_flat(harness.matrix, [0], force_scalar=True)[0]
    else:
        batch = choose_protected(harness.matrix, [0], [entry.is_helping],
                                 [bank.limit])[0]
        scalar = choose_protected(harness.matrix, [0], [entry.is_helping],
                                  [bank.limit], force_scalar=True)[0]
    expected = REFUSED if ref is None else ref
    assert batch == expected, (
        f"numpy path chose way {batch}, reference chose {ref} "
        f"(limit {bank.limit}, helping incoming {entry.is_helping}, "
        f"n {harness.cache_set.helping_count})")
    assert scalar == expected, (
        f"scalar path chose way {scalar}, reference chose {ref}")
    return ref


def _random_walk(seed: int, policy, limits) -> int:
    rng = random.Random(seed)
    harness = _Harness()
    bank = _StubBank(rng.choice(limits))
    installs = 0
    for _ in range(400):
        op = rng.random()
        if op < 0.55:  # install (the op under test)
            helping = (isinstance(policy, ProtectedLru)
                       and rng.random() < 0.5)
            cls = rng.choice(HELPING_CLASSES if helping else FIRST_CLASSES)
            entry = harness.fresh_block(cls)
            way = _agreeing_choice(harness, policy, bank, entry)
            if way is None:
                assert entry.is_helping and bank.limit == 0
                continue
            harness.install(way, entry)
            installs += 1
        elif op < 0.75:  # touch a resident block
            ways = harness.valid_ways()
            if ways:
                way = rng.choice(ways)
                stamp = harness.tick()
                harness.cache_set.blocks[way].lru = stamp
                harness.matrix.touch(0, way, stamp)
        elif op < 0.85:  # evict a resident block
            ways = harness.valid_ways()
            if ways:
                way = rng.choice(ways)
                harness.cache_set.remove(harness.cache_set.blocks[way])
                harness.matrix.evict(0, way)
        elif op < 0.92 and isinstance(policy, ProtectedLru):
            # Reclassify: flips helping-ness, so a later budget change
            # can leave the set strictly over budget.
            ways = harness.valid_ways()
            if ways:
                way = rng.choice(ways)
                entry = harness.cache_set.blocks[way]
                new_cls = rng.choice(
                    FIRST_CLASSES if entry.is_helping else HELPING_CLASSES)
                harness.cache_set.reclassify(entry, new_cls)
                harness.matrix.reclassify(0, way, entry.is_helping)
        else:  # budget change (nmax duel moves / set-role changes)
            bank.limit = rng.choice(limits)
        assert (harness.cache_set.helping_count
                == harness.matrix.helping_count(0))
    return installs


@pytest.mark.parametrize("seed", range(8))
def test_protected_lru_matches_reference(seed: int) -> None:
    installs = _random_walk(seed, ProtectedLru(), limits=(0, 1, 2, WAYS, 64))
    assert installs > 50  # the walk actually exercised the policy


@pytest.mark.parametrize("seed", range(4))
def test_flat_lru_matches_reference(seed: int) -> None:
    installs = _random_walk(seed, FlatLru(), limits=(WAYS,))
    assert installs > 50


def test_zero_budget_refuses_helping() -> None:
    matrix = SetMatrix(1, WAYS)
    for force_scalar in (False, True):
        assert choose_protected(matrix, [0], [True], [0],
                                force_scalar=force_scalar) == [REFUSED]


def test_over_budget_first_class_sheds_helping_before_free_way() -> None:
    """A set strictly over its budget converges back via first-class
    installs even while free ways remain (Section 3.2 convergence)."""
    matrix = SetMatrix(1, WAYS)
    matrix.install(0, 1, True, 10)   # LRU helping block
    matrix.install(0, 2, True, 20)
    # Ways 0 and 3 are free; with limit 1 the set is over budget (n=2),
    # so a first-class install must evict the LRU helping block (way 1),
    # not take a free way.
    for force_scalar in (False, True):
        assert choose_protected(matrix, [0], [False], [1],
                                force_scalar=force_scalar) == [1]
    # At the budget (n == limit) the shed rule no longer applies below
    # capacity: the first free way wins.
    for force_scalar in (False, True):
        assert choose_protected(matrix, [0], [False], [2],
                                force_scalar=force_scalar) == [0]


def test_at_budget_helping_replaces_lru_helping_despite_free_way() -> None:
    matrix = SetMatrix(1, WAYS)
    matrix.install(0, 3, True, 5)
    for force_scalar in (False, True):
        assert choose_protected(matrix, [0], [True], [1],
                                force_scalar=force_scalar) == [3]


def test_batch_mixes_sets_and_budgets() -> None:
    """One batched call over heterogeneous sets equals per-set calls."""
    matrix = SetMatrix(3, WAYS)
    matrix.install(0, 0, False, 1)
    matrix.install(1, 0, True, 1)
    matrix.install(1, 1, True, 2)
    for way in range(WAYS):
        matrix.install(2, way, way == 2, 100 - way)
    sets = [0, 1, 2, 1]
    incoming = [True, False, True, True]
    limits = [0, 1, 2, 64]
    batched = choose_protected(matrix, sets, incoming, limits)
    singly = [choose_protected(matrix, [s], [h], [lim])[0]
              for s, h, lim in zip(sets, incoming, limits)]
    scalar = choose_protected(matrix, sets, incoming, limits,
                              force_scalar=True)
    assert batched == singly == scalar
