"""Cross-engine equivalence: the vectorized engine must reproduce the
reference engine byte for byte (docs/engine.md, "Oracle guarantees").

Layers, cheapest first:

* **fuzz grid** — every architecture family in the oracle registry,
  seeded random workloads, full ``to_dict()`` equality (flat result
  fields *and* the hierarchical stats snapshot);
* **real workloads** — trace-generator workloads on representative
  architectures;
* **oracle sweep under both engines** — the differential oracles hold
  regardless of engine selection;
* **conservation on the vectorized engine** — the per-component sums
  that back the stats tables;
* **fallback path** — checker-enabled runs take the reference schedule
  inside the vectorized engine and still match;
* **selection plumbing** — ``RunSettings.engine`` is honored through
  the executor (serial and pooled take the same ``simulate_point``
  seam) and validated at construction.
"""

from __future__ import annotations

import pytest

from repro.architectures.registry import make_architecture
from repro.check.oracles import (FUZZ_ARCHITECTURES, fuzz_traces,
                                 oracle_flat_unbounded, oracle_pinned_zero,
                                 small_config)
from repro.common.config import scaled_config
from repro.harness.executor import Executor, RunPoint
from repro.harness.runcache import RunCache
from repro.harness.runner import RunSettings
from repro.sim.engines import (DEFAULT_ENGINE, ENGINES, build_engine,
                               resolve_engine)
from repro.sim.system import CmpSystem
from repro.workloads.base import TraceGenerator
from repro.workloads.registry import get_workload


def run_engine(engine: str, arch: str, traces, config) -> dict:
    system = CmpSystem(config, make_architecture(arch, config))
    return build_engine(system, traces, engine).run().to_dict()


def workload_traces(workload: str, seed: int, refs: int, config):
    spec = get_workload(workload).capacity_scaled(8).scaled(refs)
    return [list(t) if t is not None else None
            for t in TraceGenerator(spec, seed).traces(config.num_cores)]


def assert_identical(ref: dict, vec: dict, label: str) -> None:
    if ref == vec:
        return
    diffs = [k for k in ref if ref.get(k) != vec.get(k)]
    raise AssertionError(
        f"{label}: engines diverged in fields {diffs[:6]} "
        f"(e.g. {diffs[0]}: reference={ref[diffs[0]]!r} "
        f"vectorized={vec[diffs[0]]!r})")


class TestFuzzGrid:
    """Every policy family, random workloads, full snapshot equality."""

    @pytest.mark.parametrize("arch", FUZZ_ARCHITECTURES)
    def test_architecture(self, arch: str) -> None:
        config = small_config(checks=False)
        for seed in (11, 12):
            traces = fuzz_traces(config, seed, refs_per_core=150)
            ref = run_engine("reference", arch, traces, config)
            vec = run_engine("vectorized", arch, traces, config)
            assert_identical(ref, vec, f"{arch} seed {seed}")


class TestRealWorkloads:
    @pytest.mark.parametrize("arch,workload", [
        ("esp-nuca", "apache"), ("esp-nuca", "oltp"), ("shared", "apache"),
        ("sp-nuca", "CG"),
    ])
    def test_workload(self, arch: str, workload: str) -> None:
        config = scaled_config(8)
        traces = workload_traces(workload, seed=1, refs=800, config=config)
        ref = run_engine("reference", arch, traces, config)
        vec = run_engine("vectorized", arch, traces, config)
        assert_identical(ref, vec, f"{arch}/{workload}")


class TestOraclesUnderBothEngines:
    """The differential oracles are engine-independent: running them
    under each engine *is* the cross-engine check for the oracle grid
    (tools/check_sweep.py does the full sweep in CI)."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_pinned_zero(self, engine: str, monkeypatch) -> None:
        monkeypatch.setenv("REPRO_ENGINE", engine)
        report = oracle_pinned_zero(seed=5, refs_per_core=200)
        assert report.ok, str(report)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_flat_unbounded(self, engine: str, monkeypatch) -> None:
        monkeypatch.setenv("REPRO_ENGINE", engine)
        report = oracle_flat_unbounded(seed=5, refs_per_core=200)
        assert report.ok, str(report)


class TestConservationOnVectorized:
    """The stats-table sums (tests/test_conservation.py) hold for runs
    produced by the vectorized engine."""

    @pytest.fixture(scope="class")
    def result(self):
        config = scaled_config(8)
        traces = workload_traces("apache", seed=1, refs=1200, config=config)
        system = CmpSystem(config, make_architecture("esp-nuca", config))
        return build_engine(system, traces, "vectorized").run()

    def test_bank_hits_sum_to_l2_hits(self, result) -> None:
        banks = result.stats["l2"]
        hits = sum(sum(bank["hits"].values()) for bank in banks.values())
        lookups = hits + sum(bank["misses"] for bank in banks.values())
        assert hits == result.l2_hits
        assert lookups == result.l2_demand_lookups

    def test_l1_cores_sum_to_l1_totals(self, result) -> None:
        cores = result.stats["l1"]
        assert sum(c["hits"] for c in cores.values()) == result.l1_hits
        assert sum(c["misses"] for c in cores.values()) == result.l1_misses

    def test_supplier_counts_cover_every_access(self, result) -> None:
        assert (sum(result.supplier_count.values())
                == result.memory_accesses)

    def test_noc_links_sum_to_totals(self, result) -> None:
        links = result.stats["noc"]["links"]
        # Each message increments one link counter per hop traversed.
        assert (sum(l["messages"] for l in links.values())
                == result.stats["noc"]["hops"])
        assert (sum(l["queueing"] for l in links.values())
                == result.noc_queueing)


class TestFallbackPath:
    def test_checker_run_falls_back_and_matches(self) -> None:
        """With invariant checking on, the vectorized engine takes the
        reference schedule — and still matches the reference engine."""
        config = small_config(checks=True, sample=16)
        traces = fuzz_traces(config, seed=7, refs_per_core=120)
        ref = run_engine("reference", "esp-nuca", traces, config)
        vec = run_engine("vectorized", "esp-nuca", traces, config)
        assert_identical(ref, vec, "checked esp-nuca")


class TestSelectionPlumbing:
    def test_resolve_engine_defaults(self, monkeypatch) -> None:
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert resolve_engine() == DEFAULT_ENGINE
        monkeypatch.setenv("REPRO_ENGINE", "reference")
        assert resolve_engine() == "reference"
        assert resolve_engine("vectorized") == "vectorized"  # arg wins

    def test_resolve_engine_rejects_typos(self, monkeypatch) -> None:
        monkeypatch.setenv("REPRO_ENGINE", "vectorised")
        with pytest.raises(ValueError, match="vectorised"):
            resolve_engine()

    def test_run_settings_validates_engine(self) -> None:
        with pytest.raises(ValueError, match="bogus"):
            RunSettings(engine="bogus")
        assert RunSettings(engine="reference").quick().engine == "reference"

    @pytest.mark.parametrize("engine", ENGINES)
    def test_executor_honors_settings_engine(self, engine: str,
                                             tmp_path) -> None:
        """The serial executor path (the same ``simulate_point`` the
        pool workers run) builds the engine named by the point."""
        settings = RunSettings(capacity_factor=8, refs_per_core=300,
                               warmup_refs_per_core=0, num_seeds=1,
                               engine=engine)
        point = RunPoint(name="esp-nuca", workload="apache", seed=1,
                         config=scaled_config(8), settings=settings,
                         arch="esp-nuca")
        executor = Executor(jobs=1, cache=RunCache(enabled=False))
        result = executor.run([point])[0]
        assert result.memory_accesses > 0

    def test_engines_agree_through_executor(self) -> None:
        """End to end through the executor seam: the two engines'
        results are interchangeable (which is why the run cache is not
        keyed by engine)."""
        results = {}
        for engine in ENGINES:
            settings = RunSettings(capacity_factor=8, refs_per_core=300,
                                   warmup_refs_per_core=100, num_seeds=1,
                                   engine=engine)
            point = RunPoint(name="esp-nuca", workload="oltp", seed=2,
                             config=scaled_config(8), settings=settings,
                             arch="esp-nuca")
            executor = Executor(jobs=1, cache=RunCache(enabled=False))
            results[engine] = executor.run([point])[0].to_dict()
        assert_identical(results["reference"], results["vectorized"],
                         "executor esp-nuca/oltp")
