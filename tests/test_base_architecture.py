"""Shared architecture machinery: timing helpers and token plumbing."""

import pytest

from repro.cache.block import BlockClass, CacheBlock
from repro.sim.request import Supplier

from tests.util import access, build


class TestBankService:
    def test_sequential_hit_and_miss_latency(self):
        system = build("shared")
        arch = system.architecture
        cfg = system.config.l2
        t_hit = arch.bank_service(5, 100, hit=True)
        assert t_hit == 100 + cfg.tag_latency + cfg.access_latency
        fresh = build("shared").architecture
        t_miss = fresh.bank_service(5, 100, hit=False)
        assert t_miss == 100 + cfg.tag_latency

    def test_busy_bank_serializes(self):
        arch = build("shared").architecture
        first = arch.bank_service(0, 0, hit=True)
        second = arch.bank_service(0, 0, hit=True)
        assert second > first

    def test_skewed_reservation_bounded(self):
        arch = build("shared").architecture
        arch.bank_service(0, 10_000, hit=True)
        early = arch.bank_service(0, 0, hit=True)
        assert early <= 0 + 5 * 7  # capped wait + own service


class TestOffchipFetch:
    def test_latency_includes_hops_and_dram(self):
        system = build("shared")
        arch = system.architecture
        mem = system.config.mem
        hop = system.config.noc.hop_latency
        t = arch.fetch_offchip(0, 0, 0)
        # router 0: 1 hop to controller 0 each way.
        assert t == hop + mem.latency + hop

    def test_farther_router_pays_more(self):
        arch = build("shared").architecture
        near = arch.fetch_offchip(0, 0, 0)
        far = arch.fetch_offchip(1, 0, 1)
        assert far > near


class TestCollectForWrite:
    def test_collects_from_all_holders(self):
        system = build("shared")
        arch = system.architecture
        block = 0x3333
        access(system, 0, block)
        access(system, 4, block)
        access(system, 7, block)
        t, tokens, dirty = arch.collect_for_write(7, block, 7, 100)
        assert tokens == system.ledger.total_tokens - \
            system.l1s[7].lookup(block).tokens
        assert t > 100
        assert system.l1s[0].lookup(block) is None
        assert system.l1s[4].lookup(block) is None
        system.ledger.state(block).l1[7].tokens += tokens  # restore
        system.check_invariants()

    def test_nothing_to_collect_is_free(self):
        system = build("shared")
        arch = system.architecture
        block = 0x3334
        access(system, 0, block)
        t, tokens, dirty = arch.collect_for_write(0, block, 0, 50)
        assert (t, tokens, dirty) == (50, 0, False)


class TestMergeOrAllocate:
    def test_merges_into_existing_entry(self):
        system = build("shared")
        arch = system.architecture
        block = 0x40
        tokens = system.ledger.take_from_memory(block, 4)
        entry = CacheBlock(block=block, cls=BlockClass.SHARED, tokens=2)
        bank = system.amap.shared_bank(block)
        index = system.amap.shared_index(block)
        assert arch.l2_allocate(bank, index, entry)
        assert arch.merge_or_allocate(bank, index, block, BlockClass.SHARED,
                                      -1, 2, dirty=True)
        assert entry.tokens == 4 and entry.dirty

    def test_refusal_releases_tokens(self):
        system = build("esp-nuca")
        arch = system.architecture
        for bank in arch.banks:
            bank.nmax = 0
            bank.monitor = None
        block = 0x41
        tokens = system.ledger.take_from_memory(block)
        ok = arch.merge_or_allocate(0, 1, block, BlockClass.REPLICA, 0,
                                    tokens, dirty=False)
        assert not ok
        # Tokens are back in memory (no other holder existed).
        assert not system.ledger.on_chip(block)


class TestSupplierGeometry:
    def test_is_local_bank(self):
        arch = build("shared").architecture
        assert arch.is_local_bank(0, 0)
        assert arch.is_local_bank(0, 3)
        assert not arch.is_local_bank(0, 4)

    def test_supply_from_l1_charges_three_legs(self):
        system = build("shared")
        arch = system.architecture
        hop = system.config.noc.hop_latency
        l1 = system.config.l1.access_latency
        t = arch.supply_from_l1(requester=0, holder=7, via_router=3, t=0)
        # via 3 -> holder 7 (1 hop), L1, 7 -> requester 0 (4 hops)
        assert t == 1 * hop + l1 + 4 * hop
