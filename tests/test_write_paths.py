"""Write-path corner cases across architectures: upgrades, write
misses on every supplier kind, dirty propagation."""

from repro.cache.block import BlockClass
from repro.sim.request import Supplier

from tests.util import (access, build, private_overflow_blocks,
                        remote_helping_block)

from tests.test_arch_private import evict_from_l1


class TestUpgrades:
    def test_upgrade_after_shared_read(self):
        """Reader holds one token; a write must collect the rest."""
        system = build("shared")
        access(system, 0, 0x51)          # owner: all tokens
        access(system, 4, 0x51)          # reader: one token
        line4 = system.l1s[4].lookup(0x51, touch=False)
        assert line4.tokens < system.ledger.total_tokens
        out = access(system, 4, 0x51, write=True)
        assert out.supplier is Supplier.L1_LOCAL
        assert line4.tokens == system.ledger.total_tokens
        assert system.l1s[0].lookup(0x51) is None

    def test_silent_upgrade_with_all_tokens(self):
        system = build("shared")
        access(system, 0, 0x52)
        t0 = 1000
        out = access(system, 0, 0x52, write=True, t=t0)
        assert out.complete - t0 == system.config.l1.access_latency

    def test_esp_upgrade_invalidates_replica(self):
        system = build("esp-nuca")
        core = 6
        block = remote_helping_block(system, core)
        access(system, core, block)
        access(system, 3, block)          # demote to shared
        access(system, core, block)       # reuse bit
        evict_from_l1(system, core, block)  # replica + sb entry
        assert any(h.entry.cls is BlockClass.REPLICA
                   for h in system.ledger.l2_holdings(block))
        # The *other* core writes: replica must die.
        access(system, 3, block, write=True)
        assert all(h.entry.cls is not BlockClass.REPLICA
                   for h in system.ledger.l2_holdings(block))
        assert system.l1s[3].lookup(block).tokens == \
            system.ledger.total_tokens


class TestWriteMisses:
    def test_write_miss_on_l2_shared_entry(self):
        system = build("shared")
        block = 0x61
        access(system, 0, block)
        evict_from_l1(system, 0, block)
        out = access(system, 5, block, write=True)
        assert system.l1s[5].lookup(block).tokens == \
            system.ledger.total_tokens
        assert system.ledger.l2_holdings(block) == []

    def test_sp_write_miss_via_remote_private_bank(self):
        """A write that finds the data in a remote private bank (the 3'
        path) must collect everything and demote."""
        system = build("sp-nuca")
        block = 0x777
        access(system, 3, block)
        evict_from_l1(system, 3, block)
        out = access(system, 6, block, write=True)
        assert out.supplier is Supplier.L2_REMOTE
        assert system.l1s[6].lookup(block).tokens == \
            system.ledger.total_tokens
        from repro.core.private_bit import Classification
        assert system.architecture.classifier.classify(block) \
            is Classification.SHARED

    def test_write_miss_offchip_arrives_exclusive_and_dirty(self):
        system = build("private")
        out = access(system, 2, 0x62, write=True)
        assert out.supplier is Supplier.OFFCHIP
        line = system.l1s[2].lookup(0x62, touch=False)
        assert line.dirty and line.tokens == system.ledger.total_tokens


class TestDirtyPropagation:
    def test_dirty_travels_through_l2_back_to_reader(self):
        """Writer -> L2 -> other core: the dirty responsibility must
        never be lost (memory would silently hold stale data)."""
        system = build("shared")
        block = 0x63
        access(system, 0, block, write=True)
        evict_from_l1(system, 0, block)     # dirty entry in L2
        holding = system.ledger.l2_holdings(block)[0]
        assert holding.entry.dirty
        access(system, 4, block)            # sole copy moves to L1(4)
        line = system.l1s[4].lookup(block, touch=False)
        assert line is not None and line.dirty

    def test_dirty_victim_roundtrip_in_esp(self):
        system = build("esp-nuca")
        assoc = system.config.l2.assoc
        blocks = private_overflow_blocks(system, 0, assoc + 3)
        for b in blocks:
            access(system, 0, b, write=True)
            evict_from_l1(system, 0, b)
        victims = [h for b in blocks for h in system.ledger.l2_holdings(b)
                   if h.entry.cls is BlockClass.VICTIM]
        assert victims and all(v.entry.dirty for v in victims)
