"""Conservation invariants between the registry snapshot and the flat
aggregate counters of :class:`SimResult`.

Every per-component breakdown must sum back to the aggregate the flat
result reports — the property that makes the ``esp-nuca stats`` tables
trustworthy (their totals rows are these same sums).
"""

import json

import pytest

from repro.architectures.registry import make_architecture
from repro.common.config import scaled_config
from repro.common.statsreg import histogram_count, histogram_total
from repro.sim.engine import SimulationEngine
from repro.sim.results import SimResult
from repro.sim.system import CmpSystem
from repro.workloads.base import TraceGenerator
from repro.workloads.registry import get_workload

REFS = 1200

#: One protected-LRU architecture (exercises duel + helping scopes), one
#: plain shared baseline, one private-substrate policy.
ARCHS = ("esp-nuca", "shared", "cc30")


def run_workload(arch_name, workload="apache", seed=1, warmup=0, refs=REFS,
                 trace_refs=None):
    config = scaled_config(8)
    system = CmpSystem(config, make_architecture(arch_name, config))
    spec = get_workload(workload).capacity_scaled(8).scaled(
        trace_refs if trace_refs is not None else refs + warmup)
    engine = SimulationEngine(system, TraceGenerator(spec, seed).traces(
        config.num_cores))
    result = engine.run(max_refs_per_core=refs, warmup_refs_per_core=warmup)
    return system, result


@pytest.fixture(scope="module", params=ARCHS)
def run(request):
    return run_workload(request.param)


class TestConservation:
    def test_bank_hits_sum_to_l2_hits(self, run):
        _, result = run
        banks = result.stats["l2"]
        hits = sum(sum(bank["hits"].values()) for bank in banks.values())
        lookups = hits + sum(bank["misses"] for bank in banks.values())
        assert hits == result.l2_hits
        assert lookups == result.l2_demand_lookups

    def test_l1_cores_sum_to_l1_totals(self, run):
        _, result = run
        cores = result.stats["l1"]
        assert sum(c["hits"] for c in cores.values()) == result.l1_hits
        assert sum(c["misses"] for c in cores.values()) == result.l1_misses

    def test_noc_kinds_sum_to_messages(self, run):
        _, result = run
        noc = result.stats["noc"]
        assert sum(noc["kinds"].values()) == result.noc_messages
        assert noc["messages"] == result.noc_messages
        assert noc["queueing"] == result.noc_queueing

    def test_noc_links_sum_to_hops_and_queueing(self, run):
        """A message traversing h links counts once per link, so the
        per-link message sum equals total *hops*, not total messages."""
        _, result = run
        noc = result.stats["noc"]
        links = noc["links"]
        assert sum(l["messages"] for l in links.values()) == noc["hops"]
        assert sum(l["queueing"] for l in links.values()) == noc["queueing"]

    def test_supplier_counts_sum_to_memory_accesses(self, run):
        _, result = run
        access = result.stats["access"]
        assert sum(s["count"] for s in access.values()) \
            == result.memory_accesses
        for supplier, count in result.supplier_count.items():
            sub = access[supplier.name.lower()]
            assert sub["count"] == count
            assert sub["cycles"] == result.supplier_cycles[supplier]
            assert histogram_count(sub["latency"]) == count
            assert histogram_total(sub["latency"]) \
                == result.supplier_cycles[supplier]

    def test_controllers_sum_to_offchip_totals(self, run):
        _, result = run
        mcs = result.stats["mem"]
        assert sum(m["demand"] for m in mcs.values()) == result.offchip_demand
        assert sum(m["writebacks"] for m in mcs.values()) \
            == result.offchip_writebacks


class TestSnapshotRoundTrip:
    def test_from_dict_to_dict_is_lossless(self, run):
        _, result = run
        assert SimResult.from_dict(result.to_dict()) == result

    def test_json_round_trip_is_lossless(self, run):
        _, result = run
        wire = json.dumps(result.to_dict())
        assert SimResult.from_dict(json.loads(wire)) == result

    def test_schema_mismatch_returns_none(self, run):
        _, result = run
        payload = result.to_dict()
        payload["surprise"] = 1
        assert SimResult.from_dict(payload) is None
        payload = result.to_dict()
        del payload["noc_messages"]
        assert SimResult.from_dict(payload) is None


class TestWarmupReset:
    def test_reset_zeroes_every_registered_stat(self):
        system, _ = run_workload("esp-nuca")
        assert any(stat.snapshot() not in (0, 0.0)
                   for _, stat in system.stats.walk()
                   if not isinstance(stat.snapshot(), dict))
        system.reset_stats()
        for path, stat in system.stats.walk():
            snap = stat.snapshot()
            if isinstance(snap, dict):
                assert histogram_count(snap) == 0, path
            else:
                assert snap in (0, 0.0), path

    def test_warm_run_measures_only_post_warmup_phase(self):
        """Previously-latent gap: duel-controller bookkeeping survived
        the warm-up reset (it was not on the hand-maintained reset
        list). With the registry walk, the measured phase of a warm run
        reports exactly the full run's stats minus the warm-up phase —
        the two runs replay identical traces, only the reset differs.
        """
        warmup = 400
        _, full = run_workload("esp-nuca", refs=REFS + warmup,
                               trace_refs=REFS + warmup)
        _, warm = run_workload("esp-nuca", warmup=warmup)
        assert full.memory_accesses == (REFS + warmup) * 8
        assert warm.memory_accesses == REFS * 8

        def duel_events(result):
            return sum(bank["events"]
                       for bank in result.stats["arch"]["duel"].values())

        assert 0 < duel_events(warm) < duel_events(full)
        steals = "coherence"
        assert warm.stats[steals]["token_steals"] \
            <= full.stats[steals]["token_steals"]


class TestRenderedTotals:
    def test_stats_tables_quote_the_aggregates(self, run):
        from repro.harness.reporting import format_run_stats
        _, result = run
        text = format_run_stats(result)
        assert str(result.memory_accesses) in text
        banks = result.stats["l2"]
        total_misses = sum(bank["misses"] for bank in banks.values())
        # The L2 totals row carries the bank-summed miss count.
        l2_section = text.split("-- L2 banks --")[1].split("\n-- ")[0]
        assert any(str(total_misses) in line
                   for line in l2_section.splitlines()
                   if line.startswith("total"))
