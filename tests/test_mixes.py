"""Workload-mix builder API."""

import pytest

from repro.workloads.base import TraceGenerator
from repro.workloads.mixes import MixBuilder, half_and_half, program


def small_program(name, footprint=128, **kw):
    return program(name, footprint, refs_per_core=200, **kw)


class TestProgram:
    def test_program_defaults(self):
        p = program("p", 1000)
        assert p.private_footprint_blocks == 1000
        assert p.family == "custom"

    def test_loop_program(self):
        p = program("scan", 100, loop_blocks=500, loop_fraction=0.4)
        assert p.loop_blocks == 500


class TestMixBuilder:
    def test_basic_mix(self):
        mix = (MixBuilder("m")
               .assign([0, 1], small_program("a"))
               .assign([2], small_program("b"))
               .build())
        assert mix.active_cores == (0, 1, 2)
        assert mix.per_core[2].name == "b"
        assert "0:a" in mix.description and "2:b" in mix.description

    def test_double_assignment_rejected(self):
        builder = MixBuilder("m").assign([0], small_program("a"))
        with pytest.raises(ValueError):
            builder.assign([0], small_program("b"))
        with pytest.raises(ValueError):
            builder.idle([0])

    def test_out_of_range_core(self):
        with pytest.raises(ValueError):
            MixBuilder("m").assign([9], small_program("a"))

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError):
            MixBuilder("m").build()

    def test_refs_override(self):
        mix = (MixBuilder("m").assign([0], small_program("a"))
               .build(refs_per_core=77))
        assert mix.refs_per_core == 77

    def test_generates_traces_per_assignment(self):
        fat = small_program("fat", footprint=512)
        thin = small_program("thin", footprint=16)
        mix = MixBuilder("m").assign([0], fat).assign([1], thin).build()
        gen = TraceGenerator(mix, seed=3)
        blocks0 = {i.block for i in gen.core_trace(0)}
        blocks1 = {i.block for i in gen.core_trace(1)}
        assert len(blocks0) > len(blocks1)
        assert not blocks0 & blocks1  # disjoint private regions

    def test_idle_cores_have_no_trace(self):
        mix = (MixBuilder("m").assign([0], small_program("a"))
               .idle([1, 2]).build())
        traces = TraceGenerator(mix, 1).traces(8)
        assert traces[0] is not None
        assert all(t is None for t in traces[1:])


class TestHalfAndHalf:
    def test_matches_paper_hybrid_layout(self):
        mix = half_and_half("h", small_program("a"), small_program("b"))
        assert mix.active_cores == tuple(range(8))
        assert mix.per_core[0].name == "a"
        assert mix.per_core[7].name == "b"

    def test_capacity_scaling_propagates(self):
        mix = half_and_half("h", small_program("a", footprint=256),
                            small_program("b", footprint=512))
        scaled = mix.capacity_scaled(4)
        assert scaled.per_core[0].private_footprint_blocks == 64
        assert scaled.per_core[7].private_footprint_blocks == 128

    def test_runs_in_a_system(self):
        from repro.sim.engine import SimulationEngine
        from tests.util import build
        mix = half_and_half("h", small_program("a"), small_program("b"))
        system = build("esp-nuca")
        engine = SimulationEngine(system,
                                  TraceGenerator(mix, 1).traces(8))
        result = engine.run()
        assert result.memory_accesses == 200 * 8
        system.check_invariants()
