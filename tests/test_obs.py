"""Unified event-tracing layer: recorder semantics, exporters, and the
end-to-end acceptance capture (both clock domains + helping-block
instants in one valid Chrome-trace payload)."""

import io
import json

import pytest

from repro.harness.executor import Executor, RunPoint
from repro.harness.runcache import RunCache
from repro.harness.runner import RunSettings
from repro.common.config import scaled_config
from repro.obs import trace as obs
from repro.obs import NULL_TRACER, Tracer, activated
from repro.obs.export import (chrome_payload, events_of_category,
                              iter_instants, validate_chrome, write_chrome,
                              write_jsonl)

from tests.util import build


class TestFilters:
    def test_default_covers_standard_categories_only(self):
        tracer = Tracer()
        for category in obs.CATEGORIES:
            assert tracer.wants(category)
        for category in obs.DETAIL_CATEGORIES:
            assert not tracer.wants(category)

    def test_explicit_categories(self):
        tracer = Tracer(categories=["l2", "noc"])
        assert tracer.wants("l2") and tracer.wants("noc")
        assert not tracer.wants("access")

    def test_detail_requires_opt_in(self):
        assert not Tracer().wants("duel-observe")
        assert Tracer(detail=["duel-observe"]).wants("duel-observe")
        # Naming a detail category in --categories counts as opting in.
        assert Tracer(categories=["duel-observe"]).wants("duel-observe")

    def test_unwanted_category_not_recorded(self):
        tracer = Tracer(categories=["l2"])
        with tracer.wall_span("executor", "skipped", tid="t"):
            pass
        tracer.instant("l2", "kept", ts=1.0, pid=tracer.wall_pid, tid="t")
        assert [e.name for e in tracer.events] == ["kept"]


class TestSampling:
    def test_deterministic_one_in_n(self):
        tracer = Tracer(sample=3)
        picks = [tracer.sample_step() for _ in range(9)]
        assert picks == [False, False, True] * 3

    def test_sample_one_keeps_everything(self):
        tracer = Tracer()
        assert all(tracer.sample_step() for _ in range(5))

    def test_sample_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(sample=0)


class TestRingBuffer:
    def test_oldest_dropped_and_counted(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            tracer.instant("l2", f"e{i}", ts=float(i), pid=1, tid="t")
        assert tracer.dropped == 2
        assert tracer.emitted == 5
        assert [e.name for e in tracer.events] == ["e2", "e3", "e4"]

    def test_capacity_zero_is_listener_only(self):
        tracer = Tracer(capacity=0)
        seen = []
        tracer.subscribe(seen.append)
        tracer.instant("l2", "e", ts=0.0, pid=1, tid="t")
        assert len(seen) == 1
        assert len(tracer.events) == 0

    def test_null_tracer_refuses_subscribers(self):
        with pytest.raises(RuntimeError):
            NULL_TRACER.subscribe(lambda e: None)


class TestClockDomains:
    def test_one_pid_per_sim_run_and_shared_wall_pid(self):
        tracer = Tracer()
        a = tracer.process("esp-nuca/apache s1")
        b = tracer.process("esp-nuca/apache s2")
        assert a != b
        assert tracer.wall_pid == tracer.wall_pid
        clocks = {pid: clock for pid, _, clock in tracer.processes()}
        assert clocks[a] == "sim" and clocks[tracer.wall_pid] == "wall"

    def test_duplicate_labels_disambiguated(self):
        tracer = Tracer()
        tracer.process("run")
        tracer.process("run")
        labels = [label for _, label, _ in tracer.processes()]
        assert labels == ["run", "run#2"]


class TestInstallation:
    def test_activated_restores_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with activated(tracer):
                assert obs.active() is tracer
                raise RuntimeError("boom")
        assert obs.active() is NULL_TRACER

    def test_system_captures_active_tracer_at_construction(self):
        tracer = Tracer()
        with activated(tracer):
            system = build("shared", check_tokens=False)
        assert system.tracer is tracer
        assert not build("shared", check_tokens=False).tracer.enabled


class TestExport:
    def make_tracer(self):
        tracer = Tracer()
        pid = tracer.process("run")
        tracer.complete("l2", "bank hit", ts=10.0, dur=5.0, pid=pid,
                        tid="bank3", args={"wait": 2})
        tracer.instant("esp", "replica placed", ts=12.0, pid=pid, tid="bank3")
        tracer.complete("noc", "req", ts=4.0, dur=6.0, pid=pid, tid="noc")
        tracer.counter("service", "queue depth", ts=1.0,
                       pid=tracer.wall_pid, tid="service",
                       values={"backlog": 2.0})
        return tracer

    def test_payload_is_valid(self):
        payload = chrome_payload(self.make_tracer())
        assert validate_chrome(payload) == []

    def test_metadata_names_processes_and_tracks(self):
        payload = chrome_payload(self.make_tracer())
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert "run [sim]" in names and "wall-clock [wall]" in names
        assert "bank3" in names and "noc" in names

    def test_tids_are_interned_integers(self):
        payload = chrome_payload(self.make_tracer())
        for event in payload["traceEvents"]:
            assert isinstance(event["tid"], int)

    def test_instants_are_thread_scoped(self):
        payload = chrome_payload(self.make_tracer())
        instants = list(iter_instants(payload))
        assert instants and all(e["s"] == "t" for e in instants)

    def test_validator_catches_regressions(self):
        assert validate_chrome({"traceEvents": [
            {"ph": "X", "pid": 1, "tid": 1, "ts": 10, "dur": 1},
            {"ph": "X", "pid": 1, "tid": 1, "ts": 5, "dur": 1},
        ]})
        assert validate_chrome({"traceEvents": [
            {"ph": "X", "pid": 1, "tid": 1, "ts": 10},  # span without dur
        ]})
        assert validate_chrome({"traceEvents": [
            {"ph": "?", "pid": 1, "tid": 1, "ts": 0},
        ]})
        assert validate_chrome({}) == ["traceEvents missing or not a list"]

    def test_write_chrome_and_jsonl_round_trip(self, tmp_path):
        tracer = self.make_tracer()
        path = tmp_path / "t.json"
        payload = write_chrome(tracer, str(path))
        assert json.loads(path.read_text()) == payload
        buffer = io.StringIO()
        count = write_jsonl(tracer, buffer)
        lines = [json.loads(line) for line in
                 buffer.getvalue().splitlines()]
        assert count == len(lines) == len(tracer.events)


QUICK = RunSettings(capacity_factor=8, refs_per_core=800,
                    warmup_refs_per_core=200, num_seeds=1)


def traced_run(arch="esp-nuca", workload="apache", **tracer_kwargs):
    tracer = Tracer(**tracer_kwargs)
    point = RunPoint(name=arch, workload=workload, seed=42,
                     config=scaled_config(QUICK.capacity_factor),
                     settings=QUICK, arch=arch)
    executor = Executor(jobs=1, cache=RunCache(enabled=False))
    with activated(tracer):
        executor.run([point])
    return tracer


class TestEndToEnd:
    def test_acceptance_capture(self):
        """The PR's acceptance trace: one capture holding an L2-bank
        access span on the sim clock, an executor run span on the wall
        clock, and at least one helping-block instant — all in a payload
        the validator accepts."""
        tracer = traced_run()
        payload = chrome_payload(tracer)
        assert validate_chrome(payload) == []
        clocks = {pid: clock for pid, _, clock in tracer.processes()}

        l2_spans = [e for e in events_of_category(payload, "l2")
                    if e["ph"] == "X" and e["name"].startswith("bank")]
        assert l2_spans and all(clocks[e["pid"]] == "sim"
                                for e in l2_spans)

        run_spans = [e for e in events_of_category(payload, "executor")
                     if e["ph"] == "X" and e["name"].startswith("run ")]
        assert run_spans and all(clocks[e["pid"]] == "wall"
                                 for e in run_spans)

        helping = [e["name"] for e in iter_instants(payload)
                   if e["name"] in ("replica placed", "victim placed",
                                    "allocation refused")]
        assert helping

    def test_sim_pid_labeled_after_run_point(self):
        tracer = traced_run()
        labels = [label for _, label, clock in tracer.processes()
                  if clock == "sim"]
        assert labels == ["esp-nuca/apache s42"]

    def test_sampling_thins_access_spans_only(self):
        dense = traced_run()
        sparse = traced_run(sample=10)
        dense_access = len([e for e in dense.events
                            if e.category == "access"])
        sparse_access = len([e for e in sparse.events
                             if e.category == "access"])
        assert 0 < sparse_access <= dense_access // 5
        # Child spans follow their access tree; instants are unsampled.
        dense_inst = [e for e in dense.events if e.phase == obs.PH_INSTANT
                      and e.category == "classifier"]
        sparse_inst = [e for e in sparse.events if e.phase == obs.PH_INSTANT
                       and e.category == "classifier"]
        assert len(dense_inst) == len(sparse_inst)

    def test_category_filter_limits_capture(self):
        tracer = traced_run(categories=["l2"])
        assert {e.category for e in tracer.events} == {"l2"}

    def test_disabled_tracing_emits_nothing(self):
        point = RunPoint(name="esp-nuca", workload="apache", seed=42,
                         config=scaled_config(QUICK.capacity_factor),
                         settings=QUICK, arch="esp-nuca")
        executor = Executor(jobs=1, cache=RunCache(enabled=False))
        executor.run([point])
        assert obs.active() is NULL_TRACER
        assert NULL_TRACER.emitted == 0
