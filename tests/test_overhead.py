"""Storage-overhead model vs the paper's cost claims (Section 5.2)."""

import pytest

from repro.common.config import SystemConfig
from repro.core.overhead import OverheadReport, StorageModel, summarize


@pytest.fixture(scope="module")
def model():
    return StorageModel(SystemConfig())


class TestGeometry:
    def test_line_and_set_counts(self, model):
        assert model.lines == 131072   # 8 MB / 64 B
        assert model.sets == 8192      # 32 banks x 256 sets
        assert model.banks == 32

    def test_private_tag_is_p_bits_wider(self, model):
        assert model.private_tag_bits == model.shared_tag_bits + 3


class TestPaperClaims:
    def test_section52_bank_level_items_order_of_magnitude(self, model):
        """'the aggregate storage overhead is approximately 9KB':
        the itemized bank-level state must land in single-digit KiB."""
        report = model.esp_nuca_bank_level()
        assert 2.0 < report.total_kib < 16.0

    def test_n_counter_dominates_bank_level(self, model):
        report = model.esp_nuca_bank_level()
        n_item = next(v for k, v in report.items.items()
                      if k.startswith("n counter"))
        assert n_item == 8192 * 4
        assert n_item > report.total_bits / 2

    def test_sp_nuca_costs_p_bits_per_line(self, model):
        report = model.sp_nuca()
        tag_item = next(v for k, v in report.items.items()
                        if "tag extension" in k)
        assert tag_item == 131072 * 3

    def test_esp_cheaper_than_every_costly_counterpart(self, model):
        """The abstract's framing: ESP-NUCA outperforms 'much costlier
        architectures'. Its storage must be well below shadow tags,
        D-NUCA search state and the CCE."""
        esp = model.esp_nuca().total_bits
        assert model.shadow_tags().total_bits > esp
        assert model.dnuca().total_bits > esp
        assert model.cooperative_caching().total_bits > esp * 3

    def test_cc_directory_is_the_most_expensive(self, model):
        totals = {r.architecture: r.total_bits for r in model.all_reports()}
        assert max(totals, key=totals.get) == "cooperative-caching"


class TestReportMechanics:
    def test_totals_sum_items(self):
        report = OverheadReport("x")
        report.add("a", 1024)
        report.add("b", 7 * 1024)
        assert report.total_bits == 8 * 1024
        assert report.total_kib == 1.0

    def test_format_lists_items(self, model):
        text = model.esp_nuca().format()
        assert "esp-nuca" in text and "KiB total" in text

    def test_summary_mentions_section_check(self):
        text = summarize()
        assert "Section 5.2" in text
        assert "esp-nuca" in text

    def test_scales_with_configuration(self):
        from repro.common.config import scaled_config
        small = StorageModel(scaled_config(4))
        full = StorageModel(SystemConfig())
        assert small.esp_nuca().total_bits < full.esp_nuca().total_bits
