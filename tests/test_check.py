"""The invariant checker: wiring, sampling, and one deliberate state
corruption per invariant family (each must be caught by a sweep)."""

from dataclasses import replace

import pytest

from repro.cache.block import BlockClass, CacheBlock
from repro.check.invariants import FAMILIES, InvariantViolation
from repro.common.config import CheckConfig
from repro.architectures.registry import make_architecture
from repro.sim.system import CmpSystem
from tests.util import loads, run_trace, tiny_config


def checked_system(arch: str = "esp-nuca", sample: int = 1,
                   raise_on_violation: bool = True) -> CmpSystem:
    config = replace(tiny_config(), checks=CheckConfig(
        enabled=True, sample=sample, raise_on_violation=raise_on_violation))
    return CmpSystem(config, make_architecture(arch, config))


def warm(system: CmpSystem, refs: int = 400) -> None:
    """Mixed traffic sized to overflow the tiny L1s, so the L2 banks
    hold live private and shared entries afterwards."""
    num_cores = system.config.num_cores
    t = 0
    for i in range(refs):
        core = i % num_cores
        if i % 3 == 0:
            block = 0x1000 + (i // 3) % 24  # shared across cores
        else:
            block = 0x2000 + core * 0x100 + (i // num_cores) % 40
        system.access(core, block, is_write=(i % 7 == 0), t_issue=t)
        t += 10


def expect_violation(system: CmpSystem, family: str) -> None:
    with pytest.raises(InvariantViolation) as excinfo:
        system.checker.sweep()
    assert excinfo.value.family == family


def some_l2_holding(system: CmpSystem, min_tokens: int = 1):
    for state in system.ledger._states.values():
        for holding in state.l2.values():
            if holding.entry.tokens >= min_tokens:
                return holding
    raise AssertionError("no suitable L2 entry on chip after warmup")


class TestWiring:
    def test_disabled_by_default(self):
        config = tiny_config()
        system = CmpSystem(config, make_architecture("esp-nuca", config))
        assert system.checker is None

    def test_enabled_via_config(self):
        system = checked_system()
        assert system.checker is not None
        warm(system, refs=10)
        assert system.checker.sweeps == 10
        assert system.checker.violations == 0

    def test_sampling_knob(self):
        system = checked_system(sample=3)
        warm(system, refs=10)
        assert system.checker.sweeps == 10 // 3

    def test_sample_must_be_positive(self):
        with pytest.raises(ValueError):
            CheckConfig(enabled=True, sample=0)

    def test_stats_mounted(self):
        system = checked_system()
        warm(system, refs=5)
        snapshot = system.stats.to_dict()
        assert snapshot["check"]["sweeps"] == 5
        assert snapshot["check"]["violations"] == 0
        assert set(snapshot["check"]["by_family"]) == set(FAMILIES)


class TestEnvOverride:
    def test_env_forces_checking_on(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKS", "2")
        config = tiny_config()  # checks disabled in the config
        system = CmpSystem(config, make_architecture("esp-nuca", config))
        assert system.checker is not None
        assert system.checker.sample == 2

    def test_env_forces_checking_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKS", "0")
        config = replace(tiny_config(),
                         checks=CheckConfig(enabled=True))
        system = CmpSystem(config, make_architecture("esp-nuca", config))
        assert system.checker is None

    def test_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKS", "often")
        config = tiny_config()
        with pytest.raises(ValueError, match="REPRO_CHECKS"):
            CmpSystem(config, make_architecture("esp-nuca", config))


class TestCorruptionsCaught:
    """One injected corruption per family; the next sweep must name it."""

    def test_tokens_lost_token(self):
        system = checked_system()
        warm(system)
        some_l2_holding(system).entry.tokens -= 1
        expect_violation(system, "tokens")

    def test_tokens_unregistered_resident(self):
        system = checked_system()
        warm(system)
        holding = some_l2_holding(system)
        # The ledger forgets the entry but it stays resident in the bank.
        system.ledger.forget_l2(holding.entry.block, holding.entry)
        expect_violation(system, "tokens")

    def test_tokens_dangling_holding(self):
        system = checked_system()
        warm(system)
        holding = some_l2_holding(system)
        # Resident copy vanishes from the bank; the ledger still points
        # at it. (remove() keeps helping_count and stamps coherent, so
        # only the directory cross-check can fire.)
        system.architecture.banks[holding.bank_id].remove(
            holding.set_index, holding.entry)
        expect_violation(system, "tokens")

    def test_helping_count_drift(self):
        system = checked_system()
        warm(system)
        holding = some_l2_holding(system)
        cache_set = system.architecture.banks[holding.bank_id] \
            .sets[holding.set_index]
        cache_set.helping_count += 1
        expect_violation(system, "helping")

    def test_duplicate_resident_copy(self):
        system = checked_system()
        warm(system)
        holding = some_l2_holding(system, min_tokens=2)
        bank = system.architecture.banks[holding.bank_id]
        cache_set = bank.sets[holding.set_index]
        entry = holding.entry
        # Split the entry into two registered, conservation-preserving
        # copies of the same (block, cls, owner) — the exact corruption
        # the duplicates family exists to catch — planted behind the
        # install() guard's back.
        entry.tokens -= 1
        clone = CacheBlock(block=entry.block, cls=entry.cls,
                           owner=entry.owner, tokens=1)
        system.ledger.register_l2(entry.block, holding.bank_id,
                                  holding.set_index, clone)
        for way, resident in enumerate(cache_set.blocks):
            if resident is None or resident is not entry:
                cache_set.blocks[way] = clone
                break
        expect_violation(system, "duplicates")

    def test_budget_nmax_out_of_range(self):
        system = checked_system()
        warm(system)
        bank = system.architecture.banks[0]
        bank.nmax = bank.ways + 3
        expect_violation(system, "budget")

    def test_lru_stamp_beyond_counter(self):
        system = checked_system()
        warm(system)
        holding = some_l2_holding(system)
        bank = system.architecture.banks[holding.bank_id]
        holding.entry.lru = bank._stamp + 100
        expect_violation(system, "lru")

    def test_classifier_stale_private_entry(self):
        system = checked_system(arch="sp-nuca")
        warm(system)
        # Find a block with an owned (PRIVATE) L2 entry and flip its
        # classification without scrubbing the entry.
        for block, state in system.ledger._states.items():
            if any(h.entry.cls is BlockClass.PRIVATE
                   for h in state.l2.values()):
                system.architecture.classifier.force_shared(block)
                break
        else:
            raise AssertionError("no PRIVATE L2 entry after warmup")
        expect_violation(system, "classifier")


class TestNonRaisingMode:
    def test_violations_counted_not_raised(self):
        system = checked_system(raise_on_violation=False)
        warm(system)
        some_l2_holding(system).entry.tokens -= 1
        system.checker.sweep()  # must not raise
        assert system.checker.violations >= 1
        assert system.checker.violations_of("tokens") >= 1

    def test_violation_emits_trace_instant(self):
        from repro.obs import Tracer

        system = checked_system(raise_on_violation=False)
        tracer = Tracer(categories=["check"])
        system.set_tracer(tracer)
        warm(system)
        before = tracer.emitted
        some_l2_holding(system).entry.tokens -= 1
        system.checker.sweep()
        assert tracer.emitted > before


class TestHealthyRuns:
    @pytest.mark.parametrize("arch", ["esp-nuca", "esp-nuca-flat",
                                      "sp-nuca", "shared"])
    def test_no_violations_on_clean_traffic(self, arch):
        system = checked_system(arch=arch)
        traces = [loads(range(0x500 + core * 16, 0x500 + core * 16 + 48))
                  for core in range(system.config.num_cores)]
        run_trace(system, traces)
        assert system.checker.sweeps > 0
        assert system.checker.violations == 0
