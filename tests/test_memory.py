"""Memory controllers: latency, bandwidth queue, writebacks."""

from repro.common.config import SystemConfig
from repro.mem.controller import MemoryController, MemorySystem


class TestController:
    def test_uncontended_latency(self):
        mc = MemoryController(latency=350, occupancy=20)
        assert mc.service(100) == 450

    def test_bandwidth_serialization(self):
        mc = MemoryController(latency=350, occupancy=20)
        assert mc.service(0) == 350
        assert mc.service(0) == 370  # queued behind one occupancy
        assert mc.requests == 2

    def test_queueing_bounded(self):
        mc = MemoryController(latency=100, occupancy=20)
        mc.service(100_000)  # future-stamped reservation
        early = mc.service(0)
        assert early <= 100 + mc.MAX_QUEUE_SERVICES * 20

    def test_demand_queue_charge_exact_at_cap(self):
        # Out-of-time-order reservations: a future-stamped demand must
        # charge an earlier-stamped one exactly MAX_QUEUE_SERVICES
        # occupancies, and the later reservation must survive.
        mc = MemoryController(latency=100, occupancy=20)
        mc.service(100_000)
        assert mc.service(0) == mc.MAX_QUEUE_SERVICES * 20 + 100
        assert mc.total_queueing == mc.MAX_QUEUE_SERVICES * 20
        assert mc.service(100_020) == 100_120  # queue frontier intact

    def test_writeback_queue_charge_is_capped(self):
        # A writeback behind a future-stamped reservation is charged at
        # most MAX_QUEUE_SERVICES services past its arrival (like
        # demand), and the later reservation survives it.
        mc = MemoryController(latency=100, occupancy=20)
        mc.service(100_000)
        mc.post_writeback(0)
        assert mc.service(100_000) == 100_000 + 20 + 100

    def test_writeback_reserved_at_arrival_time(self):
        mc = MemoryController(latency=350, occupancy=20)
        mc.post_writeback(5_000)
        # The bandwidth is consumed at 5_000: demand arriving then
        # queues behind one writeback occupancy.
        assert mc.service(5_000) == 5_020 + 350

    def test_writebacks_consume_bandwidth_without_reply(self):
        mc = MemoryController(latency=350, occupancy=20)
        mc.post_writeback(0)
        assert mc.service(0) == 370  # demand waits behind the writeback
        assert mc.writebacks == 1

    def test_reset_stats(self):
        mc = MemoryController(latency=10, occupancy=1)
        mc.service(0)
        mc.post_writeback(0)
        mc.reset_stats()
        assert mc.requests == 0 and mc.writebacks == 0


class TestMemorySystem:
    def test_two_controllers(self):
        system = MemorySystem(SystemConfig())
        assert len(system.controllers) == 2

    def test_aggregate_counters(self):
        system = MemorySystem(SystemConfig())
        system.controller(0).service(0)
        system.controller(1).service(0)
        system.controller(1).post_writeback(0)
        assert system.demand_requests == 2
        assert system.writebacks == 1
