"""Simulation kernel semantics: caps, exhaustion, ordering, warmup."""

import pytest

from repro.sim.cpu import TraceItem, TraceKind
from repro.sim.engine import SimulationEngine

from tests.util import build, loads


def items(n, base=0x1000, gap=2):
    return loads(range(base, base + n), gap=gap)


class TestTraceHandling:
    def test_requires_one_trace_per_core(self):
        system = build("shared")
        with pytest.raises(ValueError):
            SimulationEngine(system, [iter([])])

    def test_exhausted_traces_end_run(self):
        system = build("shared")
        traces = [iter(items(10))] + [None] * 7
        result = SimulationEngine(system, traces).run()
        assert result.memory_accesses == 10

    def test_cap_limits_each_core(self):
        system = build("shared")
        traces = [iter(items(100, base=(c + 1) << 16)) for c in range(8)]
        result = SimulationEngine(system, traces).run(max_refs_per_core=5)
        assert result.memory_accesses == 40

    def test_idle_cores_contribute_nothing(self):
        system = build("shared")
        traces = [None] * 8
        traces[2] = iter(items(7))
        result = SimulationEngine(system, traces).run()
        assert result.per_core_instructions[3] == 0
        assert result.per_core_instructions[2] > 0


class TestInterleaving:
    def test_global_time_order_approximate(self):
        """A fast core must not starve a slow one: both finish."""
        system = build("shared")
        fast = loads(range(0x100, 0x100 + 50), gap=0)
        slow = [TraceItem(gap=50, block=0x9000 + i, kind=TraceKind.LOAD)
                for i in range(50)]
        traces = [iter(fast), iter(slow)] + [None] * 6
        result = SimulationEngine(system, traces).run()
        assert result.per_core_instructions[0] == 50
        assert result.per_core_instructions[1] == 50 * 51


class TestWarmup:
    def test_warmup_keeps_cache_state(self):
        system = build("shared")
        # 12 blocks fit the tiny 16-block L1 (3 per set).
        block_list = list(range(0x100, 0x10C)) * 11
        traces = [iter(loads(block_list))] + [None] * 7
        result = SimulationEngine(system, traces).run(
            max_refs_per_core=36, warmup_refs_per_core=96)
        # After eight warm-up laps everything hits in the L1.
        assert result.l1_misses == 0
        assert result.memory_accesses == 36

    def test_cycles_measured_from_reset(self):
        system = build("shared")
        traces = [iter(items(200))] + [None] * 7
        result = SimulationEngine(system, traces).run(
            max_refs_per_core=100, warmup_refs_per_core=100)
        full = build("shared")
        traces2 = [iter(items(200))] + [None] * 7
        total = SimulationEngine(full, traces2).run()
        assert 0 < result.cycles < total.cycles

    def test_invariant_hook_runs(self):
        system = build("shared")
        traces = [iter(items(20))] + [None] * 7
        SimulationEngine(system, traces).run(invariant_check_every=1)
