"""Workload registry (Table 1) and trace-generator properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.cpu import TraceKind
from repro.workloads.base import (
    OS_REGION_BASE,
    SHARED_REGION_BASE,
    STREAM_REGION_BASE,
    TraceGenerator,
    WorkloadSpec,
)
from repro.workloads.registry import WORKLOADS, get_workload, workload_names


class TestRegistry:
    def test_all_22_workloads_present(self):
        assert len(WORKLOADS) == 22

    def test_table1_names(self):
        # Table 1 rows, adapted naming for hybrids.
        expected_transactional = {"apache", "jbb", "oltp", "zeus"}
        expected_half = {"art-4", "gcc-4", "gzip-4", "mcf-4", "twolf-4"}
        expected_hybrid = {"art-gzip", "gcc-gzip", "gcc-twolf",
                           "mcf-gzip", "mcf-twolf"}
        expected_nas = {"BT", "CG", "FT", "IS", "LU", "MG", "SP", "UA"}
        names = set(WORKLOADS)
        for family in (expected_transactional, expected_half,
                       expected_hybrid, expected_nas):
            assert family <= names

    def test_family_filter(self):
        assert len(workload_names("transactional")) == 4
        assert len(workload_names("nas")) == 8
        assert len(workload_names("spec-half")) == 5
        assert len(workload_names("spec-hybrid")) == 5

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            get_workload("doom3")

    def test_half_rate_has_service_core(self):
        spec = get_workload("mcf-4")
        assert spec.active_cores == (0, 1, 2, 3, 4)
        assert 4 in spec.per_core

    def test_hybrid_splits_the_chip(self):
        spec = get_workload("art-gzip")
        assert spec.active_cores == tuple(range(8))
        assert set(spec.per_core) == {4, 5, 6, 7}

    def test_transactional_uses_all_cores_and_shares(self):
        for name in workload_names("transactional"):
            spec = get_workload(name)
            assert spec.active_cores == tuple(range(8))
            assert spec.shared_fraction > 0.25

    def test_nas_low_sharing(self):
        for name in workload_names("nas"):
            assert get_workload(name).shared_fraction <= 0.15


class TestScaling:
    def test_refs_scaling(self):
        spec = get_workload("apache").scaled(12345)
        assert spec.refs_per_core == 12345

    def test_refs_scaling_propagates_to_overrides(self):
        spec = get_workload("mcf-4")
        scaled = spec.scaled(spec.refs_per_core * 2)
        child = scaled.per_core[4]
        assert child.refs_per_core == spec.per_core[4].refs_per_core * 2

    def test_capacity_scaling(self):
        spec = get_workload("apache")
        small = spec.capacity_scaled(4)
        assert small.private_footprint_blocks == spec.private_footprint_blocks // 4
        assert small.shared_footprint_blocks == spec.shared_footprint_blocks // 4

    def test_capacity_scaling_propagates(self):
        spec = get_workload("art-gzip").capacity_scaled(4)
        child = spec.per_core[4]
        base = get_workload("art-gzip").per_core[4]
        assert child.private_footprint_blocks == base.private_footprint_blocks // 4

    def test_capacity_identity(self):
        spec = get_workload("apache")
        assert spec.capacity_scaled(1) is spec


def tiny_spec(**overrides):
    params = dict(name="t", family="synthetic", active_cores=(0, 1),
                  refs_per_core=2000, private_footprint_blocks=256,
                  shared_footprint_blocks=128, shared_fraction=0.3,
                  reuse_fraction=0.5, os_noise=0.02)
    params.update(overrides)
    return WorkloadSpec(**params)


class TestGenerator:
    def test_determinism(self):
        a = list(TraceGenerator(tiny_spec(), seed=5).core_trace(0))
        b = list(TraceGenerator(tiny_spec(), seed=5).core_trace(0))
        assert a == b

    def test_seed_changes_trace(self):
        a = list(TraceGenerator(tiny_spec(), seed=5).core_trace(0))
        b = list(TraceGenerator(tiny_spec(), seed=6).core_trace(0))
        assert a != b

    def test_trace_length(self):
        assert len(list(TraceGenerator(tiny_spec(), 1).core_trace(0))) == 2000

    def test_idle_cores_have_no_trace(self):
        traces = TraceGenerator(tiny_spec(), 1).traces(8)
        assert traces[0] is not None and traces[1] is not None
        assert all(t is None for t in traces[2:])

    def test_private_regions_disjoint_across_cores(self):
        gen = TraceGenerator(tiny_spec(shared_fraction=0.0, os_noise=0.0), 1)
        blocks0 = {i.block for i in gen.core_trace(0)}
        blocks1 = {i.block for i in gen.core_trace(1)}
        assert not (blocks0 & blocks1)

    def test_shared_region_is_common(self):
        gen = TraceGenerator(tiny_spec(shared_fraction=0.9), 1)
        shared0 = {i.block for i in gen.core_trace(0)
                   if SHARED_REGION_BASE <= i.block < OS_REGION_BASE}
        shared1 = {i.block for i in gen.core_trace(1)
                   if SHARED_REGION_BASE <= i.block < OS_REGION_BASE}
        assert shared0 & shared1

    def test_shared_fraction_approximate(self):
        spec = tiny_spec(shared_fraction=0.5, reuse_fraction=0.0,
                         os_noise=0.0, refs_per_core=4000)
        items = list(TraceGenerator(spec, 1).core_trace(0))
        shared = sum(1 for i in items
                     if SHARED_REGION_BASE <= i.block < OS_REGION_BASE)
        assert 0.4 < shared / len(items) < 0.6

    def test_write_fraction_approximate(self):
        spec = tiny_spec(write_fraction=0.3, shared_fraction=0.0,
                         os_noise=0.0, refs_per_core=4000)
        items = list(TraceGenerator(spec, 1).core_trace(0))
        writes = sum(1 for i in items if i.kind is TraceKind.STORE)
        assert 0.22 < writes / len(items) < 0.38

    def test_dep_fraction_generates_dep_loads(self):
        spec = tiny_spec(dep_fraction=0.5, write_fraction=0.0)
        items = list(TraceGenerator(spec, 1).core_trace(0))
        deps = sum(1 for i in items if i.kind is TraceKind.DEP_LOAD)
        assert deps > 0.3 * len(items)

    def test_stream_region_never_repeats_far(self):
        spec = tiny_spec(stream_fraction=1.0, reuse_fraction=0.0,
                         stream_advance=1.0, os_noise=0.0,
                         shared_fraction=0.0)
        items = list(TraceGenerator(spec, 1).core_trace(0))
        stream_blocks = [i.block for i in items
                         if i.block >= STREAM_REGION_BASE]
        assert len(set(stream_blocks)) == len(stream_blocks)

    def test_loop_pattern_cycles(self):
        spec = tiny_spec(loop_blocks=50, loop_fraction=1.0,
                         reuse_fraction=0.0, shared_fraction=0.0,
                         os_noise=0.0, refs_per_core=200)
        items = list(TraceGenerator(spec, 1).core_trace(0))
        loop_blocks = {i.block for i in items}
        assert len(loop_blocks) <= 51

    def test_footprint_respected(self):
        spec = tiny_spec(shared_fraction=0.0, os_noise=0.0,
                         stream_fraction=0.0,
                         private_footprint_blocks=100)
        blocks = {i.block for i in TraceGenerator(spec, 1).core_trace(0)}
        assert len(blocks) <= 100

    @settings(max_examples=15, deadline=None)
    @given(st.floats(min_value=0.0, max_value=0.9),
           st.floats(min_value=0.0, max_value=0.8))
    def test_generator_total_probability(self, shared, reuse):
        spec = tiny_spec(shared_fraction=shared, reuse_fraction=reuse,
                         refs_per_core=300)
        items = list(TraceGenerator(spec, 3).core_trace(0))
        assert len(items) == 300
        assert all(i.gap >= 0 for i in items)
