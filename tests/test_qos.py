"""QoS extension: per-bank protection strength (paper future work)."""

import pytest

from repro.core.qos import (
    QosClass,
    QosDuelController,
    QosEspNuca,
    QosPolicy,
    protection_summary,
)
from repro.sim.system import CmpSystem

from tests.util import access, tiny_config


def build_qos(classes=None, policy=None):
    config = tiny_config()
    arch = QosEspNuca(config, core_classes=classes, policy=policy)
    return CmpSystem(config, arch, check_tokens=True), arch


class TestConfiguration:
    def test_default_all_normal(self):
        _, arch = build_qos()
        assert all(arch.qos_of_core(c) is QosClass.NORMAL for c in range(8))

    def test_classes_applied_to_owned_banks(self):
        _, arch = build_qos({0: QosClass.HIGH, 7: QosClass.BACKGROUND})
        shifts = arch._bank_shifts()
        for bank in arch.amap.private_banks(0):
            assert shifts[bank] == QosPolicy().high_shift
        for bank in arch.amap.private_banks(7):
            assert shifts[bank] == QosPolicy().background_shift
        for bank in arch.amap.private_banks(3):
            assert shifts[bank] == arch.config.esp.degradation_shift

    def test_policy_override(self):
        policy = QosPolicy(high_shift=6, background_shift=1)
        _, arch = build_qos({0: QosClass.HIGH}, policy)
        assert arch._bank_shifts()[0] == 6

    def test_runtime_reclassification(self):
        _, arch = build_qos()
        arch.set_core_class(2, QosClass.HIGH)
        assert arch._bank_shifts()[arch.amap.private_banks(2)[0]] == \
            QosPolicy().high_shift

    def test_describe_lists_classes(self):
        _, arch = build_qos({1: QosClass.HIGH})
        assert "1:high" in arch.describe()


class TestControllerSemantics:
    def _drive(self, arch, bank_id, ref_hits, conv_hits, events=64):
        from repro.cache.bank import SetRole
        bank = arch.banks[bank_id]
        ref = next(s for s, r in bank.roles.items()
                   if r is SetRole.REFERENCE)
        conv = next(s for s, r in bank.roles.items()
                    if r is SetRole.CONVENTIONAL_SAMPLE)
        for _ in range(events):
            arch.duel.observe(bank, ref, ref_hits)
            arch.duel.observe(bank, conv, conv_hits)

    def test_high_priority_bank_expels_on_mild_degradation(self):
        """The same mild (~10%) first-class degradation must shrink the
        budget of a HIGH bank (d=8, tolerance ~0) and leave a
        BACKGROUND bank (d=2, tolerance 25%) growing."""
        _, arch = build_qos({0: QosClass.HIGH, 1: QosClass.BACKGROUND})
        hi_bank = arch.amap.private_banks(0)[0]
        lo_bank = arch.amap.private_banks(1)[0]
        for bank_id in (hi_bank, lo_bank):
            state = arch.duel.state_of(bank_id)
            state.nmax = 1  # leave headroom in both directions
            state.hr_reference.reset(initial=255)
            state.hr_conventional.reset(initial=230)  # ~10% degraded
            state.hr_explorer.reset(initial=230)
            arch.duel._evaluate(arch.banks[bank_id], state)
        hi = arch.duel.state_of(hi_bank)
        lo = arch.duel.state_of(lo_bank)
        assert hi.decreases == 1 and hi.nmax < lo.nmax
        assert lo.increases == 1

    def test_unclassified_banks_use_default_shift(self):
        _, arch = build_qos()
        assert isinstance(arch.duel, QosDuelController)
        # All-normal: behaves exactly like the base controller default.
        assert set(arch._bank_shifts().values()) == {
            arch.config.esp.degradation_shift}


class TestEndToEnd:
    def test_runs_clean_with_mixed_classes(self):
        system, arch = build_qos({0: QosClass.HIGH,
                                  4: QosClass.BACKGROUND})
        for i in range(120):
            access(system, i % 8, 0x2000 + (i * 13) % 64,
                   write=(i % 5 == 0), t=i * 4)
        system.check_invariants()

    def test_protection_summary_lists_classes(self):
        system, arch = build_qos({0: QosClass.HIGH,
                                  4: QosClass.BACKGROUND})
        lines = protection_summary(arch)
        text = "\n".join(lines)
        assert "high" in text and "background" in text and "normal" in text
