"""Trace persistence: save/load round trips and replay equivalence."""

import pytest

from repro.sim.cpu import TraceItem, TraceKind
from repro.workloads.base import TraceGenerator
from repro.workloads.registry import get_workload
from repro.workloads.tracefile import load_traces, save_traces, trace_info


def small_traces():
    spec = get_workload("gcc-4").capacity_scaled(8).scaled(150)
    return [list(t) if t is not None else None
            for t in TraceGenerator(spec, seed=9).traces(8)]


class TestRoundTrip:
    def test_save_load_identical(self, tmp_path):
        traces = small_traces()
        path = tmp_path / "t.trace.gz"
        save_traces(path, traces, workload="gcc-4", seed=9)
        loaded = load_traces(path)
        assert loaded == traces

    def test_idle_cores_preserved(self, tmp_path):
        traces = small_traces()
        path = tmp_path / "t.trace.gz"
        save_traces(path, traces)
        loaded = load_traces(path)
        for original, restored in zip(traces, loaded):
            assert (original is None) == (restored is None)

    def test_all_kinds_roundtrip(self, tmp_path):
        items = [TraceItem(3, 0xABC, TraceKind.LOAD),
                 TraceItem(0, 0xDEF, TraceKind.STORE),
                 TraceItem(7, 1 << 40, TraceKind.DEP_LOAD)]
        path = tmp_path / "k.trace.gz"
        save_traces(path, [items] + [None] * 7)
        assert load_traces(path)[0] == items

    def test_info_reads_header_only(self, tmp_path):
        path = tmp_path / "t.trace.gz"
        save_traces(path, small_traces(), workload="gcc-4", seed=9)
        info = trace_info(path)
        assert info == {"workload": "gcc-4", "seed": 9, "cores": 8}

    def test_rejects_foreign_files(self, tmp_path):
        import gzip
        path = tmp_path / "bogus.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("something else\n")
        with pytest.raises(ValueError):
            load_traces(path)


class TestReplayEquivalence:
    def test_replayed_trace_gives_identical_run(self, tmp_path):
        from repro.architectures.registry import make_architecture
        from repro.common.config import scaled_config
        from repro.sim.engine import SimulationEngine
        from repro.sim.system import CmpSystem

        config = scaled_config(8)
        traces = small_traces()
        path = tmp_path / "replay.trace.gz"
        save_traces(path, traces)

        def run(per_core):
            system = CmpSystem(config, make_architecture("esp-nuca", config))
            engine = SimulationEngine(
                system, [iter(t) if t is not None else None
                         for t in per_core])
            return engine.run()

        live = run(traces)
        replayed = run(load_traces(path))
        assert live.cycles == replayed.cycles
        assert live.supplier_count == replayed.supplier_count
