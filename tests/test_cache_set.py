"""CacheSet: lookup filters, occupancy, helping counter, LRU queries."""

import pytest

from repro.cache.block import BlockClass, CacheBlock
from repro.cache.cache_set import CacheSet


def block(addr, cls=BlockClass.SHARED, owner=-1, lru=0, tokens=1):
    entry = CacheBlock(block=addr, cls=cls, owner=owner, tokens=tokens)
    entry.lru = lru
    return entry


class TestFind:
    def test_finds_by_address(self):
        s = CacheSet(4)
        entry = block(0x10)
        s.install(0, entry)
        assert s.find(0x10) is entry
        assert s.find(0x11) is None

    def test_class_filter(self):
        s = CacheSet(4)
        s.install(0, block(0x10, BlockClass.PRIVATE, owner=2))
        assert s.find(0x10, classes=(BlockClass.SHARED,)) is None
        assert s.find(0x10, classes=(BlockClass.PRIVATE,)) is not None

    def test_owner_filter(self):
        s = CacheSet(4)
        s.install(0, block(0x10, BlockClass.PRIVATE, owner=2))
        assert s.find(0x10, owner=3) is None
        assert s.find(0x10, owner=2) is not None

    def test_same_block_two_classes(self):
        # A replica and a shared copy of the same block may coexist.
        s = CacheSet(4)
        s.install(0, block(0x10, BlockClass.SHARED))
        s.install(1, block(0x10, BlockClass.REPLICA, owner=1))
        assert s.find(0x10, classes=(BlockClass.REPLICA,)).cls is BlockClass.REPLICA
        assert s.find(0x10, classes=(BlockClass.SHARED,)).cls is BlockClass.SHARED


class TestHelpingCounter:
    def test_counts_install_and_remove(self):
        s = CacheSet(4)
        replica = block(0x1, BlockClass.REPLICA, owner=0)
        victim = block(0x2, BlockClass.VICTIM, owner=1)
        s.install(0, replica)
        s.install(1, victim)
        s.install(2, block(0x3, BlockClass.PRIVATE, owner=0))
        assert s.helping_count == 2
        s.remove(replica)
        assert s.helping_count == 1

    def test_overwrite_adjusts_counter(self):
        s = CacheSet(2)
        s.install(0, block(0x1, BlockClass.VICTIM, owner=0))
        s.install(0, block(0x2, BlockClass.PRIVATE, owner=0))
        assert s.helping_count == 0

    def test_reclassify_updates_counter(self):
        s = CacheSet(2)
        victim = block(0x1, BlockClass.VICTIM, owner=0)
        s.install(0, victim)
        s.reclassify(victim, BlockClass.SHARED)
        assert s.helping_count == 0
        assert victim.cls is BlockClass.SHARED

    def test_counter_round_trips(self):
        """install / reclassify-away / reclassify-back / remove leave
        the counter exactly where a recount would."""
        s = CacheSet(4)
        replica = block(0x1, BlockClass.REPLICA, owner=0)
        s.install(0, replica)
        s.install(1, block(0x2, BlockClass.SHARED))
        assert s.helping_count == 1
        s.reclassify(replica, BlockClass.PRIVATE)
        assert s.helping_count == 0
        s.reclassify(replica, BlockClass.VICTIM)
        assert s.helping_count == 1
        s.remove(replica)
        assert s.helping_count == 0
        assert s.helping_count == s.count(lambda b: b.is_helping)


class TestInstallGuards:
    def test_way_out_of_range(self):
        s = CacheSet(4)
        with pytest.raises(IndexError):
            s.install(4, block(0x1))
        with pytest.raises(IndexError):
            s.install(-1, block(0x1))

    def test_duplicate_resident_copy_rejected(self):
        s = CacheSet(4)
        s.install(0, block(0x10, BlockClass.REPLICA, owner=1))
        with pytest.raises(ValueError, match="duplicate"):
            s.install(1, block(0x10, BlockClass.REPLICA, owner=1))
        # The failed install must not have touched the counter.
        assert s.helping_count == 1

    def test_overwrite_same_key_in_place_allowed(self):
        # Replacing a copy with a fresh entry of the same
        # (block, class, owner) in the same way is legitimate.
        s = CacheSet(4)
        s.install(0, block(0x10, BlockClass.VICTIM, owner=2))
        s.install(0, block(0x10, BlockClass.VICTIM, owner=2))
        assert s.helping_count == 1

    def test_distinct_class_or_owner_not_duplicates(self):
        s = CacheSet(4)
        s.install(0, block(0x10, BlockClass.SHARED))
        s.install(1, block(0x10, BlockClass.REPLICA, owner=0))
        s.install(2, block(0x10, BlockClass.REPLICA, owner=1))
        assert s.helping_count == 2

    def test_reclassify_foreign_entry_rejected(self):
        s = CacheSet(4)
        s.install(0, block(0x10, BlockClass.VICTIM, owner=0))
        foreign = block(0x10, BlockClass.VICTIM, owner=0)
        with pytest.raises(ValueError):
            s.reclassify(foreign, BlockClass.SHARED)
        assert s.helping_count == 1


class TestLruQueries:
    def test_lru_block_overall(self):
        s = CacheSet(4)
        s.install(0, block(0x1, lru=5))
        s.install(1, block(0x2, lru=2))
        s.install(2, block(0x3, lru=9))
        assert s.lru_block().block == 0x2

    def test_lru_block_with_predicate(self):
        s = CacheSet(4)
        s.install(0, block(0x1, BlockClass.PRIVATE, owner=0, lru=1))
        s.install(1, block(0x2, BlockClass.REPLICA, owner=0, lru=2))
        s.install(2, block(0x3, BlockClass.VICTIM, owner=1, lru=3))
        assert s.lru_block(lambda b: b.is_helping).block == 0x2

    def test_lru_none_when_no_match(self):
        s = CacheSet(2)
        s.install(0, block(0x1, BlockClass.PRIVATE, owner=0))
        assert s.lru_block(lambda b: b.is_helping) is None


class TestOccupancy:
    def test_free_way(self):
        s = CacheSet(2)
        assert s.free_way() == 0
        s.install(0, block(0x1))
        assert s.free_way() == 1
        s.install(1, block(0x2))
        assert s.free_way() is None

    def test_find_way_raises_for_foreign_block(self):
        s = CacheSet(2)
        with pytest.raises(ValueError):
            s.find_way(block(0x99))

    def test_count(self):
        s = CacheSet(4)
        s.install(0, block(0x1, BlockClass.PRIVATE, owner=0))
        s.install(1, block(0x2, BlockClass.SHARED))
        assert s.count(lambda b: b.cls is BlockClass.PRIVATE) == 1
