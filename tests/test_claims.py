"""Claims registry: executable EXPERIMENTS.md verdicts."""

import pytest

from repro.harness.claims import (
    CLAIMS,
    Claim,
    format_results,
    load_reports_from_json,
    verify_claims,
)
from repro.harness.reporting import ExperimentReport


def fig8_report(esp=1.2, private=1.05, dnuca=1.04, asr=1.06):
    cols = ["apache", "jbb", "oltp", "zeus", "GMEAN"]
    mk = lambda v: [v] * 5
    return ExperimentReport("fig8", "t", columns=cols, series={
        "shared": mk(1.0), "private": mk(private), "d-nuca": mk(dnuca),
        "asr": mk(asr), "cc-avg": mk(1.1), "cc-best": mk(1.15),
        "cc-worst": mk(1.05), "esp-nuca": mk(esp)})


class TestRegistry:
    def test_every_figure_has_claims(self):
        figures = {c.experiment for c in CLAIMS}
        assert {"fig4", "fig5", "fig7", "fig8", "fig9", "fig10",
                "stability"} <= figures

    def test_claim_ids_unique(self):
        ids = [c.claim_id for c in CLAIMS]
        assert len(ids) == len(set(ids))


class TestVerification:
    def test_passing_claim(self):
        results = verify_claims({"fig8": fig8_report()},
                                [c for c in CLAIMS
                                 if c.claim_id == "fig8-esp-beats-shared"])
        assert results[0].verdict is True
        assert results[0].label == "REPRODUCED"

    def test_failing_claim(self):
        results = verify_claims({"fig8": fig8_report(esp=1.01)},
                                [c for c in CLAIMS
                                 if c.claim_id == "fig8-esp-beats-shared"])
        assert results[0].verdict is False

    def test_missing_report_is_not_run(self):
        results = verify_claims({}, CLAIMS[:1])
        assert results[0].verdict is None
        assert results[0].label == "NOT RUN"

    def test_broken_report_counts_as_failure(self):
        broken = ExperimentReport("fig8", "t", columns=["GMEAN"],
                                  series={})  # missing series
        results = verify_claims({"fig8": broken},
                                [c for c in CLAIMS
                                 if c.experiment == "fig8"])
        assert all(r.verdict is False for r in results)

    def test_format_results(self):
        text = format_results(verify_claims({"fig8": fig8_report()}))
        assert "REPRODUCED" in text and "NOT RUN" in text


class TestJsonLoading:
    def test_load_reports_from_directory(self, tmp_path):
        report = fig8_report()
        (tmp_path / "fig8.json").write_text(report.to_json())
        loaded = load_reports_from_json(tmp_path)
        assert "fig8" in loaded
        assert loaded["fig8"].series["esp-nuca"][-1] == pytest.approx(1.2)

    def test_end_to_end_with_recorded_run(self, tmp_path):
        """If the repository carries a recorded results_json, the
        claims engine must be able to read it."""
        import pathlib
        recorded = pathlib.Path(__file__).parent.parent / "results_json"
        if not recorded.exists():
            pytest.skip("no recorded run in the tree")
        reports = load_reports_from_json(recorded)
        results = verify_claims(reports)
        assert any(r.verdict is not None for r in results)
