"""Configuration and derived address geometry (Table 2 / Figure 1b)."""

from dataclasses import replace

import pytest

from repro.common.config import (
    DEFAULT_CONFIG,
    EspConfig,
    L1Config,
    L2Config,
    SystemConfig,
    scaled_config,
)


class TestTable2Defaults:
    def test_core_parameters(self):
        cfg = SystemConfig()
        assert cfg.num_cores == 8
        assert cfg.core.window_size == 64
        assert cfg.core.max_outstanding == 16
        assert cfg.core.issue_width == 4

    def test_l1_parameters(self):
        l1 = SystemConfig().l1
        assert l1.size == 32 * 1024
        assert l1.assoc == 4
        assert l1.access_latency == 3 and l1.tag_latency == 1
        assert l1.num_sets == 128

    def test_l2_parameters(self):
        l2 = SystemConfig().l2
        assert l2.size == 8 * 1024 * 1024
        assert l2.num_banks == 32
        assert l2.assoc == 16
        assert l2.bank_size == 256 * 1024
        assert l2.sets_per_bank == 256
        assert l2.access_latency == 5 and l2.tag_latency == 2

    def test_noc_parameters(self):
        noc = SystemConfig().noc
        assert noc.columns * noc.rows == 8
        assert noc.hop_latency == 5
        assert noc.banks_per_router == 4


class TestGeometry:
    def test_figure_1b_bit_fields(self):
        cfg = SystemConfig()
        assert cfg.byte_bits == 6      # 64B blocks
        assert cfg.bank_bits == 5      # 32 banks (n)
        assert cfg.core_bits == 3      # 8 cores (p)
        assert cfg.private_bank_bits == 2  # n - p
        assert cfg.index_bits == 8     # 256 sets per bank
        assert cfg.private_banks_per_core == 4

    def test_mismatched_block_sizes_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(l1=L1Config(block_size=32))

    def test_wrong_bank_count_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(l2=L2Config(num_banks=16))

    def test_non_power_of_two_banks_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(l2=L2Config(num_banks=24))


class TestEspConfig:
    def test_paper_constants_storable(self):
        esp = EspConfig(ema_bits=8, ema_shift=1, degradation_shift=3,
                        update_period=3)
        assert esp.ema_bits == 8

    def test_invalid_shift_rejected(self):
        with pytest.raises(ValueError):
            EspConfig(ema_bits=4, ema_shift=4)
        with pytest.raises(ValueError):
            EspConfig(degradation_shift=-1)

    def test_sampling_defaults(self):
        esp = SystemConfig().esp
        assert esp.reference_sets == 1
        assert esp.explorer_sets == 1
        assert esp.conventional_sample_sets == 2


class TestScaledConfig:
    def test_capacity_ratios_preserved(self):
        full = SystemConfig()
        small = scaled_config(4)
        assert small.l1.size * 4 == full.l1.size
        assert small.l2.size * 4 == full.l2.size
        assert small.l2.num_banks == full.l2.num_banks
        assert small.l2.assoc == full.l2.assoc
        # partition : pool ratio unchanged
        full_part = full.l2.sets_per_bank * full.l2.assoc * 4
        small_part = small.l2.sets_per_bank * small.l2.assoc * 4
        assert full_part == 4 * small_part

    def test_latencies_unchanged(self):
        small = scaled_config(8)
        assert small.l2.access_latency == 5
        assert small.noc.hop_latency == 5
        assert small.mem.latency == DEFAULT_CONFIG.mem.latency

    def test_identity_factor(self):
        assert scaled_config(1).l2.size == SystemConfig().l2.size

    def test_bad_factor_rejected(self):
        with pytest.raises(ValueError):
            scaled_config(3)
