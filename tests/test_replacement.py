"""Replacement policies: flat LRU, protected LRU (Section 3.2), static."""

from repro.cache.bank import CacheBank, SetRole
from repro.cache.block import BlockClass, CacheBlock
from repro.cache.replacement import FlatLru, ProtectedLru, StaticPartition


def entry(addr, cls=BlockClass.PRIVATE, owner=0, tokens=1):
    return CacheBlock(block=addr, cls=cls, owner=owner, tokens=tokens)


def filled_bank(policy, ways=4, nmax=None, roles=None):
    bank = CacheBank(0, num_sets=2, ways=ways, policy=policy)
    bank.nmax = nmax
    for index, role in (roles or {}).items():
        bank.assign_role(index, role)
    return bank


class TestFlatLru:
    def test_fills_free_ways_first(self):
        bank = filled_bank(FlatLru())
        for i in range(4):
            admitted, evicted = bank.allocate(0, entry(i))
            assert admitted and evicted is None

    def test_evicts_global_lru(self):
        bank = filled_bank(FlatLru())
        entries = [entry(i) for i in range(4)]
        for e in entries:
            bank.allocate(0, e)
        bank.touch(entries[0])  # 1 is now LRU
        _, evicted = bank.allocate(0, entry(99))
        assert evicted is entries[1]


class TestProtectedLru:
    def test_helping_refused_at_zero_budget(self):
        bank = filled_bank(ProtectedLru(), nmax=0)
        admitted, _ = bank.allocate(0, entry(1, BlockClass.REPLICA))
        assert not admitted
        assert bank.refusals == 1

    def test_helping_admitted_below_budget(self):
        bank = filled_bank(ProtectedLru(), nmax=2)
        admitted, _ = bank.allocate(0, entry(1, BlockClass.VICTIM, owner=3))
        assert admitted

    def test_helping_at_budget_evicts_helping_lru(self):
        bank = filled_bank(ProtectedLru(), nmax=2)
        helpers = [entry(i, BlockClass.REPLICA) for i in (1, 2)]
        for h in helpers:
            bank.allocate(0, h)
        bank.allocate(0, entry(3, BlockClass.PRIVATE))
        bank.allocate(0, entry(4, BlockClass.PRIVATE))
        bank.touch(helpers[0])
        _, evicted = bank.allocate(0, entry(5, BlockClass.VICTIM, owner=2))
        assert evicted is helpers[1]
        assert bank.sets[0].helping_count == 2

    def test_first_class_never_refused(self):
        bank = filled_bank(ProtectedLru(), nmax=0)
        for i in range(6):
            admitted, _ = bank.allocate(0, entry(i, BlockClass.PRIVATE))
            assert admitted

    def test_first_class_at_budget_evicts_helping_first(self):
        bank = filled_bank(ProtectedLru(), nmax=1)
        helper = entry(1, BlockClass.REPLICA)
        bank.allocate(0, helper)
        for i in (2, 3, 4):
            bank.allocate(0, entry(i, BlockClass.PRIVATE))
        bank.touch(helper)  # helper is MRU, yet still the victim
        _, evicted = bank.allocate(0, entry(9, BlockClass.PRIVATE))
        assert evicted is helper

    def test_below_budget_global_lru_may_evict_first_class(self):
        # n < nmax: Section 3.2 — the LRU block of the whole set goes,
        # which is how helping blocks win ways when there is slack.
        bank = filled_bank(ProtectedLru(), nmax=3)
        first = [entry(i, BlockClass.PRIVATE) for i in range(4)]
        for f in first:
            bank.allocate(0, f)
        for f in first[1:]:
            bank.touch(f)
        _, evicted = bank.allocate(0, entry(10, BlockClass.REPLICA))
        assert evicted is first[0]

    def test_reference_set_refuses_all_helping(self):
        bank = filled_bank(ProtectedLru(), nmax=4,
                           roles={0: SetRole.REFERENCE})
        admitted, _ = bank.allocate(0, entry(1, BlockClass.REPLICA))
        assert not admitted

    def test_explorer_set_allows_one_extra(self):
        bank = filled_bank(ProtectedLru(), nmax=1,
                           roles={0: SetRole.EXPLORER})
        assert bank.helping_limit(0) == 2
        assert bank.allocate(0, entry(1, BlockClass.REPLICA))[0]
        assert bank.allocate(0, entry(2, BlockClass.REPLICA))[0]
        # Third helping block displaces a helping one, not first-class.
        bank.allocate(0, entry(3, BlockClass.PRIVATE))
        bank.allocate(0, entry(4, BlockClass.PRIVATE))
        _, evicted = bank.allocate(0, entry(5, BlockClass.REPLICA))
        assert evicted is not None and evicted.is_helping

    def test_unbounded_when_nmax_none(self):
        bank = filled_bank(ProtectedLru(), nmax=None)
        for i in range(4):
            assert bank.allocate(0, entry(i, BlockClass.REPLICA))[0]

    def test_helping_at_budget_ignores_free_ways(self):
        # Section 3.2 bounds the ways helping blocks may occupy, not
        # how full the set is: at the budget, a helping incoming must
        # displace the LRU helping block even with free ways left.
        bank = filled_bank(ProtectedLru(), nmax=1)
        first = entry(1, BlockClass.REPLICA)
        bank.allocate(0, first)
        admitted, evicted = bank.allocate(0, entry(2, BlockClass.VICTIM,
                                                   owner=3))
        assert admitted and evicted is first
        assert bank.sets[0].helping_count == 1
        assert bank.sets[0].free_way() is not None

    def test_over_budget_first_class_converges_with_free_ways(self):
        # Regression: a set left over budget by an nmax decrease used
        # to keep its excess helping blocks for as long as free ways
        # lasted — first-class installs must shed helping LRU first.
        bank = filled_bank(ProtectedLru(), nmax=3)
        helpers = [entry(i, BlockClass.REPLICA) for i in (1, 2, 3)]
        for h in helpers:
            bank.allocate(0, h)
        bank.nmax = 1  # duel lowers the budget; set now holds 3 > 1
        bank.touch(helpers[1])
        bank.touch(helpers[2])
        admitted, evicted = bank.allocate(0, entry(9, BlockClass.PRIVATE))
        assert admitted and evicted is helpers[0]
        assert bank.sets[0].helping_count == 2
        assert bank.sets[0].free_way() is not None  # way not burned

    def test_over_budget_helping_never_raises_count(self):
        bank = filled_bank(ProtectedLru(), nmax=3)
        for i in (1, 2, 3):
            bank.allocate(0, entry(i, BlockClass.REPLICA))
        bank.nmax = 1
        admitted, evicted = bank.allocate(0, entry(9, BlockClass.REPLICA))
        assert admitted and evicted is not None and evicted.is_helping
        assert bank.sets[0].helping_count == 3  # unchanged, not 4


class TestStaticPartition:
    def test_respects_private_quota(self):
        bank = filled_bank(StaticPartition(private_ways=3))
        privates = [entry(i, BlockClass.PRIVATE) for i in range(3)]
        for p in privates:
            bank.allocate(0, p)
        # Fourth private evicts the private LRU, not the free way...
        _, evicted = bank.allocate(0, entry(10, BlockClass.PRIVATE))
        assert evicted is privates[0]

    def test_shared_side_uses_remaining_ways(self):
        bank = filled_bank(StaticPartition(private_ways=3))
        assert bank.allocate(0, entry(1, BlockClass.SHARED))[0]
        s2 = entry(2, BlockClass.SHARED)
        _, evicted = bank.allocate(0, s2)
        assert evicted is None or evicted.cls is BlockClass.SHARED

    def test_over_quota_other_side_evicted_when_full(self):
        # Force the shared side over its quota of 1 by installing
        # directly (as reclassification would), then verify a private
        # insertion reclaims the over-quota shared way.
        bank = filled_bank(StaticPartition(private_ways=3))
        shared = [entry(i, BlockClass.SHARED) for i in range(2)]
        bank.sets[0].install(0, shared[0])
        bank.sets[0].install(1, shared[1])
        bank.allocate(0, entry(10, BlockClass.PRIVATE))
        bank.allocate(0, entry(11, BlockClass.PRIVATE))
        _, evicted = bank.allocate(0, entry(12, BlockClass.PRIVATE))
        assert evicted is not None and evicted.cls is BlockClass.SHARED

    def test_shared_side_never_exceeds_quota_via_allocation(self):
        bank = filled_bank(StaticPartition(private_ways=3))
        bank.allocate(0, entry(1, BlockClass.SHARED))
        _, evicted = bank.allocate(0, entry(2, BlockClass.SHARED))
        assert evicted is not None and evicted.cls is BlockClass.SHARED
