"""Directed tests of the shared S-NUCA (Figure 2a protocol)."""

from repro.cache.block import BlockClass
from repro.sim.request import Supplier

from tests.util import access, build, shared_block, tiny_config


class TestReadPath:
    def test_first_access_offchip(self):
        system = build("shared")
        out = access(system, core=0, block=0x1234)
        assert out.supplier is Supplier.OFFCHIP
        # The fetching L1 got every token (silent upgrades later).
        line = system.l1s[0].lookup(0x1234)
        assert line.tokens == system.ledger.total_tokens

    def test_l1_hit_after_fill(self):
        system = build("shared")
        access(system, 0, 0x1234)
        out = access(system, 0, 0x1234)
        assert out.supplier is Supplier.L1_LOCAL
        assert out.complete == system.config.l1.access_latency

    def test_second_core_served_by_remote_l1(self):
        system = build("shared")
        access(system, 0, 0x1234)
        out = access(system, 5, 0x1234)
        assert out.supplier is Supplier.L1_REMOTE
        assert 0 in system.ledger.l1_holders(0x1234)
        assert 5 in system.ledger.l1_holders(0x1234)

    def test_l2_hit_at_home_bank(self):
        system = build("shared")
        amap = system.amap
        block = shared_block(amap, bank=9, index=1)
        access(system, 0, block)
        # Evict the line from L1 by filling its L1 set.
        conflicts = [block + (i + 1) * (1 << 20) for i in range(8)
                     if amap.l1_index(block + (i + 1) * (1 << 20),
                                      system.config.l1.num_sets)
                     == amap.l1_index(block, system.config.l1.num_sets)]
        for extra in conflicts[:4]:
            access(system, 0, extra)
        entry = system.architecture.banks[9].peek(
            amap.shared_index(block), block)
        assert entry is not None and entry.cls is BlockClass.SHARED
        out = access(system, 0, block)
        assert out.supplier in (Supplier.L2_SHARED, Supplier.L2_LOCAL)


class TestWritePath:
    def test_write_collects_all_tokens(self):
        system = build("shared")
        access(system, 0, 0x42)
        access(system, 3, 0x42)
        out = access(system, 3, 0x42, write=True)
        assert out.supplier is Supplier.L1_LOCAL  # write hit + upgrade
        assert system.l1s[0].lookup(0x42) is None  # invalidated
        line = system.l1s[3].lookup(0x42)
        assert line.tokens == system.ledger.total_tokens and line.dirty

    def test_write_miss_gets_exclusive(self):
        system = build("shared")
        access(system, 0, 0x42)
        out = access(system, 6, 0x42, write=True)
        assert out.supplier is Supplier.L1_REMOTE
        assert system.l1s[0].lookup(0x42) is None
        assert system.l1s[6].lookup(0x42).tokens == system.ledger.total_tokens


class TestEvictionRouting:
    def test_l1_eviction_lands_at_home_bank(self):
        system = build("shared")
        amap = system.amap
        block = shared_block(amap, bank=17, index=2)
        access(system, 0, block)
        # Conflict the L1 set to push the block out.
        l1_sets = system.config.l1.num_sets
        fillers = []
        candidate = block + 1
        while len(fillers) < 4:
            if amap.l1_index(candidate, l1_sets) == amap.l1_index(block, l1_sets):
                fillers.append(candidate)
            candidate += 1
        for f in fillers:
            access(system, 0, f)
        assert system.l1s[0].lookup(block) is None
        entry = system.architecture.banks[17].peek(
            amap.shared_index(block), block)
        assert entry is not None
        assert entry.tokens == system.ledger.total_tokens

    def test_dirty_eviction_stays_dirty(self):
        system = build("shared")
        amap = system.amap
        block = shared_block(amap, bank=3, index=0)
        access(system, 0, block, write=True)
        l1_sets = system.config.l1.num_sets
        fillers, candidate = [], block + 1
        while len(fillers) < 4:
            if amap.l1_index(candidate, l1_sets) == amap.l1_index(block, l1_sets):
                fillers.append(candidate)
            candidate += 1
        for f in fillers:
            access(system, 0, f)
        entry = system.architecture.banks[3].peek(amap.shared_index(block), block)
        assert entry is not None and entry.dirty
