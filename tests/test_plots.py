"""ASCII chart rendering."""

import pytest

from repro.harness.plots import bar_chart, report_chart, stacked_chart
from repro.harness.reporting import ExperimentReport


class TestBarChart:
    def test_longest_bar_fills_width(self):
        chart = bar_chart(["a", "b"], [2.0, 1.0], width=10)
        lines = chart.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_values_printed(self):
        chart = bar_chart(["x"], [1.234], precision=2)
        assert "1.23" in chart

    def test_baseline_marker_present(self):
        chart = bar_chart(["a", "b"], [2.0, 0.5], width=20, baseline=1.0)
        assert "|" in chart or "+" in chart

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_zero_values_ok(self):
        chart = bar_chart(["z"], [0.0])
        assert "0.000" in chart


class TestReportChart:
    def test_renders_gmean_by_default(self):
        report = ExperimentReport(
            "fig8", "t", columns=["w", "GMEAN"],
            series={"shared": [1.0, 1.0], "esp-nuca": [1.2, 1.2]})
        chart = report_chart(report)
        assert "GMEAN" in chart
        assert "esp-nuca" in chart

    def test_explicit_column(self):
        report = ExperimentReport(
            "fig8", "t", columns=["w", "GMEAN"],
            series={"shared": [1.0, 9.0]})
        chart = report_chart(report, column="w")
        assert "— w" in chart


class TestStackedChart:
    def test_components_rendered_with_distinct_glyphs(self):
        chart = stacked_chart(
            {"shared": [10.0, 20.0], "esp": [12.0, 5.0]},
            component_names=["onchip", "offchip"], width=30)
        assert "▓" in chart and "█" in chart
        assert "onchip" in chart  # legend

    def test_totals_shown(self):
        chart = stacked_chart({"a": [1.0, 2.0]}, ["x", "y"], precision=1)
        assert "3.0" in chart
