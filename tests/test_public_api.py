"""Top-level public API: curated exports, no import cycles."""

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_readme_snippet_works(self):
        """The README's programmatic example, end to end (tiny)."""
        config = repro.scaled_config(8)
        system = repro.CmpSystem(
            config, repro.make_architecture("esp-nuca", config))
        spec = repro.get_workload("oltp").capacity_scaled(8).scaled(300)
        engine = repro.SimulationEngine(
            system, repro.TraceGenerator(spec, seed=1).traces(8))
        result = engine.run(warmup_refs_per_core=100)
        assert result.performance > 0
        assert result.average_access_time > 0

    def test_experiment_registry_exposed(self):
        assert "fig8" in repro.EXPERIMENTS
        assert callable(repro.run_experiment)

    def test_workload_registry_exposed(self):
        assert len(repro.WORKLOADS) == 22
        assert "esp-nuca" in repro.architecture_names()
