"""HTTP gateway: store migrations, auth/admission primitives, the REST
API end to end (real tiny-fidelity simulations), crash recovery, and
hostile-client hardening.

The acceptance contract pinned here:

* the SQLite store migrates forward in versioned steps (a v1 database
  upgrades in place; a newer database is refused, never corrupted);
* API keys authenticate tenants, cross-tenant access is an
  indistinguishable 404, and quota/rate rejects are typed 429s;
* a backlog stored as ``queued``/``running`` is recovered on startup
  and completes with results byte-identical to direct serial runs;
* stored results survive even when the results table is missing rows —
  the run cache backstops them;
* the route table and the served OpenAPI document stay in sync;
* malformed or oversized HTTP input gets a typed 4xx and never kills
  the daemon.
"""

import json
import socket
import threading

import pytest

from repro.gateway import (GatewayClient, GatewayConfig, GatewayError,
                           GatewayThread, JobStore, StoreError, TokenBucket,
                           generate_key, hash_key)
from repro.gateway import http as ghttp
from repro.gateway.auth import validate_tenant
from repro.gateway.store import available_migrations
from repro.harness.executor import Executor
from repro.harness.runcache import RunCache
from repro.harness.runner import RunSettings, grid_points

QUICK = RunSettings(capacity_factor=8, refs_per_core=400,
                    warmup_refs_per_core=100, num_seeds=1)
SETTINGS_WIRE = {"refs_per_core": QUICK.refs_per_core,
                 "warmup_refs_per_core": QUICK.warmup_refs_per_core,
                 "capacity_factor": QUICK.capacity_factor}


class GatedExecutor(Executor):
    """Real executor that can hold batches at a gate so tests can pin
    jobs in flight while quota/cancel assertions run."""

    def __init__(self, *args, gate=None, **kwargs):
        super().__init__(*args, **kwargs)
        self._gate = gate

    def run(self, points):
        if self._gate is not None:
            assert self._gate.wait(timeout=60), "test gate never released"
        return super().run(points)


def canonical(payload):
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def quick_points(archs, workloads, seeds):
    from repro.common.config import scaled_config

    return grid_points(scaled_config(QUICK.capacity_factor), QUICK,
                       archs, workloads, seeds)


def reference_payloads(archs, workloads, seeds):
    """Direct serial executor run of the same grid, no caches."""
    executor = Executor(jobs=1, cache=RunCache(enabled=False))
    return [r.to_dict() for r in executor.run(
        quick_points(archs, workloads, seeds))]


def gateway(db, executor=None, cache_dir=None, **config):
    if executor is None:
        cache = (RunCache(root=str(cache_dir)) if cache_dir
                 else RunCache(enabled=False))
        executor = Executor(jobs=1, cache=cache)
    config.setdefault("bind", ("tcp", "127.0.0.1", 0))
    config.setdefault("db_path", str(db))
    return GatewayThread(GatewayConfig(**config), executor=executor,
                         settings=QUICK)


def mint(db, name, **quotas):
    """Create a tenant in a (closed-afterwards) store; returns the key."""
    with JobStore.open(str(db)) as store:
        _, key = store.add_tenant(name, **quotas)
    return key


# -- migrations ---------------------------------------------------------------

class TestMigrations:
    def test_shipped_migrations_are_a_sequence(self):
        shipped = available_migrations()
        assert [v for v, _ in shipped] == list(range(1, len(shipped) + 1))
        assert shipped[0][1] == "0001_initial.sql"

    def test_fresh_database_migrates_to_head(self, tmp_path):
        with JobStore(str(tmp_path / "a.sqlite")) as store:
            assert store.version() == 0
            applied = store.migrate()
            assert applied == [name for _, name in available_migrations()]
            assert store.version() == len(applied)
            assert store.migrate() == []  # idempotent

    def test_partial_upgrade_preserves_rows(self, tmp_path):
        """A database built at v1, with data, upgrades in place: the
        remaining migrations run and the old rows gain the new columns
        (``jobs.tenant`` arrives in 0002)."""
        path = str(tmp_path / "old.sqlite")
        with JobStore(path) as store:
            assert store.migrate(upto=1) == ["0001_initial.sql"]
            assert store.version() == 1
            with store._lock:
                store._conn.execute(
                    "INSERT INTO jobs (state, priority, request, "
                    "created_at, updated_at) VALUES "
                    "('queued', 0, '{}', 1.0, 1.0)")
                store._conn.commit()
        with JobStore(path) as store:
            assert [v for v, _ in store.pending_migrations()] == \
                list(range(2, len(available_migrations()) + 1))
            store.migrate()
            row = store.get_job(1)
            assert row["state"] == "queued"
            assert row["tenant"] is None  # new column, backfilled NULL
            store.add_tenant("later")  # 0002's table exists too

    def test_newer_database_is_refused(self, tmp_path):
        """An old binary (fewer shipped migrations) must refuse a newer
        database instead of guessing at its schema."""
        import shutil

        from repro.gateway.store import MIGRATIONS_DIR

        path = str(tmp_path / "new.sqlite")
        JobStore.open(path).close()  # at head (>= 3 migrations)
        old_build = tmp_path / "old-migrations"
        old_build.mkdir()
        shutil.copy(f"{MIGRATIONS_DIR}/0001_initial.sql", old_build)
        store = JobStore(path, migrations=str(old_build))
        try:
            with pytest.raises(StoreError, match="newer"):
                store.pending_migrations()
            with pytest.raises(StoreError, match="newer"):
                store.migrate()
        finally:
            store.close()

    def test_gapped_migration_files_are_rejected(self, tmp_path):
        gapped = tmp_path / "migrations"
        gapped.mkdir()
        (gapped / "0001_initial.sql").write_text("CREATE TABLE a (x);")
        (gapped / "0003_oops.sql").write_text("CREATE TABLE b (x);")
        with pytest.raises(StoreError, match="1..N"):
            available_migrations(str(gapped))

    def test_failed_migration_rolls_back_and_is_not_recorded(self, tmp_path):
        broken = tmp_path / "migrations"
        broken.mkdir()
        (broken / "0001_bad.sql").write_text("THIS IS NOT SQL;")
        store = JobStore(str(tmp_path / "b.sqlite"),
                         migrations=str(broken))
        try:
            with pytest.raises(StoreError, match="0001_bad.sql"):
                store.migrate()
            assert store.version() == 0
        finally:
            store.close()


# -- auth primitives ----------------------------------------------------------

class TestAuth:
    def test_tenant_name_contract(self):
        for good in ("a", "alice", "team-7", "x_1", "a" * 32):
            assert validate_tenant(good) == good
        for bad in ("", "Alice", "a.b", "-lead", "a" * 33, 7, None):
            with pytest.raises((ValueError, TypeError)):
                validate_tenant(bad)

    def test_keys_are_prefixed_random_and_hash_stably(self):
        key = generate_key()
        assert key.startswith("esp_") and len(key) > 20
        assert key != generate_key()
        assert hash_key(key) == hash_key(key)
        assert len(hash_key(key)) == 64  # sha256 hex
        assert key not in hash_key(key)

    def test_token_bucket_burst_then_refill(self):
        now = [0.0]
        bucket = TokenBucket(capacity=2, refill=0.5, clock=lambda: now[0])
        assert bucket.take() == (True, 0.0)
        assert bucket.take() == (True, 0.0)
        ok, retry = bucket.take()
        assert not ok and retry == pytest.approx(2.0)  # 1 token / 0.5 tps
        now[0] += 2.0
        assert bucket.take() == (True, 0.0)
        # refill caps at capacity: a long sleep buys one burst, not many
        now[0] += 1000.0
        assert bucket.tokens == pytest.approx(2.0)

    def test_token_bucket_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(capacity=0, refill=1.0)
        with pytest.raises(ValueError):
            TokenBucket(capacity=5, refill=0.0)


# -- store behavior -----------------------------------------------------------

class TestStore:
    def test_tenant_key_round_trip(self, tmp_path):
        with JobStore.open(str(tmp_path / "t.sqlite")) as store:
            row, key = store.add_tenant("alice", max_jobs=7)
            assert row["max_jobs"] == 7
            assert store.find_tenant_by_key(key)["name"] == "alice"
            assert store.find_tenant_by_key("esp_wrong") is None
            assert key not in str(store.get_tenant("alice"))  # only hash
            with pytest.raises(StoreError, match="already exists"):
                store.add_tenant("alice")

    def test_job_rows_and_tenant_scoped_listing(self, tmp_path):
        with JobStore.open(str(tmp_path / "j.sqlite")) as store:
            points = [("k1", "esp-nuca", "apache", 7),
                      ("k2", "shared", "apache", 7)]
            a = store.create_job({"architectures": ["x"]}, 0, "alice", points)
            b = store.create_job({}, 5, "bob", points[:1])
            anon = store.create_job({}, 0, None, points[:1])
            assert [p["point_key"] for p in store.job_points(a)] == \
                ["k1", "k2"]
            assert [r["id"] for r in store.list_jobs("alice")] == [a]
            assert [r["id"] for r in store.list_jobs("bob")] == [b]
            assert [r["id"] for r in store.list_jobs(None)] == [anon]
            assert [r["id"] for r in store.list_jobs(any_tenant=True)] == \
                [anon, b, a]  # newest first
            assert [r["id"] for r in store.unfinished_jobs()] == [a, b, anon]
            store.set_job_state(b, "done")
            store.set_job_state(a, "failed", "boom")
            assert store.counts_by_state() == \
                {"done": 1, "failed": 1, "queued": 1}
            assert store.get_job(a)["error"] == "boom"
            store.delete_job(anon)
            assert store.get_job(anon) is None
            assert store.job_points(anon) == []

    def test_results_upsert_and_chunked_lookup(self, tmp_path):
        with JobStore.open(str(tmp_path / "r.sqlite")) as store:
            many = {f"key{i}": {"i": i} for i in range(503)}
            store.record_results(many)
            store.record_results({"key0": {"i": 0}})  # idempotent upsert
            assert store.result_count() == 503
            got = store.result_payloads(list(many) + ["absent"])
            assert got == many  # >500 keys exercises the IN-chunking
            assert "absent" not in got


# -- the REST API, end to end -------------------------------------------------

class TestGatewayHttp:
    def test_submit_watch_results_list_cached_resubmit(self, tmp_path):
        key = mint(tmp_path / "g.sqlite", "alice",
                   rate_capacity=100, rate_refill=50)
        with gateway(tmp_path / "g.sqlite",
                     cache_dir=tmp_path / "cache") as handle:
            with GatewayClient(handle.base_url, api_key=key) as client:
                assert client.health()["ok"] is True
                reply = client.submit(["esp-nuca", "shared"], ["apache"],
                                      seeds=[7], settings=SETTINGS_WIRE)
                job = reply["job"]
                assert job.startswith("g")
                events = list(client.events(job))
                assert events[-1]["event"] == "end"
                assert events[-1]["state"] == "done"
                results = client.results(job)["results"]
                assert [canonical(r) for r in results] == \
                    [canonical(r) for r in reference_payloads(
                        ["esp-nuca", "shared"], ["apache"], [7])]
                # identical grid again: served from cache, results inline
                again = client.submit(["esp-nuca", "shared"], ["apache"],
                                      seeds=[7], settings=SETTINGS_WIRE)
                assert again["state"] == "done"
                assert again["cached"] == 2
                assert canonical(again["results"]) == canonical(results)
                listing = client.jobs()
                assert [j["job"] for j in listing] == [again["job"], job]
                assert {j["state"] for j in listing} == {"done"}
                status = client.status()
                assert status["gateway"]["admits"] == 2
                assert status["store"]["results"] == 2
                snap = client.job(job, points=True)
                assert snap["state"] == "done" and "points" in snap

    def test_results_before_done_is_409_and_cancel_drops_job(self, tmp_path):
        gate = threading.Event()
        db = tmp_path / "c.sqlite"
        key = mint(db, "alice", rate_capacity=100, rate_refill=50)
        executor = GatedExecutor(jobs=1, cache=RunCache(enabled=False),
                                 gate=gate)
        try:
            with gateway(db, executor, workers=1, batch=1) as handle:
                with GatewayClient(handle.base_url, api_key=key) as client:
                    blocker = client.submit(["shared"], ["apache"], seeds=[1],
                                            settings=SETTINGS_WIRE)["job"]
                    victim = client.submit(["private"], ["apache"], seeds=[2],
                                           settings=SETTINGS_WIRE)["job"]
                    with pytest.raises(GatewayError) as exc:
                        client.results(victim)
                    assert exc.value.status == 409
                    assert exc.value.code == "not-done"
                    assert client.cancel(victim)["state"] == "cancelled"
                    gate.set()
                    assert client.wait(blocker)["state"] == "done"
                    # the tracker persisted both terminal states
                    assert client.status()["store"]["jobs"] == \
                        {"done": 1, "cancelled": 1}
        finally:
            gate.set()

    def test_auth_required_invalid_and_cross_tenant_404(self, tmp_path):
        db = tmp_path / "a.sqlite"
        key = mint(db, "alice", rate_capacity=100, rate_refill=50)
        other = mint(db, "bob", rate_capacity=100, rate_refill=50)
        with gateway(db, cache_dir=tmp_path / "cache") as handle:
            alice = GatewayClient(handle.base_url, api_key=key)
            job = alice.submit(["shared"], ["apache"], seeds=[3],
                               settings=SETTINGS_WIRE)["job"]
            alice.wait(job)
            with pytest.raises(GatewayError) as exc:
                GatewayClient(handle.base_url).status()
            assert (exc.value.status, exc.value.code) == \
                (401, "auth-required")
            with pytest.raises(GatewayError) as exc:
                GatewayClient(handle.base_url, api_key="esp_bogus").status()
            assert (exc.value.status, exc.value.code) == (403, "auth-invalid")
            bob = GatewayClient(handle.base_url, api_key=other)
            # bob can't see, fetch, or cancel alice's job — and the 404
            # is the same one an absent id gets (no existence oracle)
            for poke in (lambda: bob.job(job), lambda: bob.results(job),
                         lambda: bob.cancel(job), lambda: bob.job("g999")):
                with pytest.raises(GatewayError) as exc:
                    poke()
                assert (exc.value.status, exc.value.code) == \
                    (404, "unknown-job")
            assert bob.jobs() == []
            assert [j["job"] for j in alice.jobs()] == [job]

    def test_quota_jobs_quota_points_and_rate_limit(self, tmp_path):
        gate = threading.Event()
        db = tmp_path / "q.sqlite"
        jobs_key = mint(db, "narrow", max_jobs=1, max_points=64,
                        rate_capacity=100, rate_refill=50)
        points_key = mint(db, "tiny", max_jobs=8, max_points=2,
                          rate_capacity=100, rate_refill=50)
        rate_key = mint(db, "bursty", max_jobs=8, max_points=64,
                        rate_capacity=1, rate_refill=0.001)
        executor = GatedExecutor(jobs=1, cache=RunCache(enabled=False),
                                 gate=gate)
        try:
            with gateway(db, executor, workers=1, batch=1) as handle:
                url = handle.base_url
                narrow = GatewayClient(url, api_key=jobs_key)
                held = narrow.submit(["shared"], ["apache"], seeds=[1],
                                     settings=SETTINGS_WIRE)["job"]
                with pytest.raises(GatewayError) as exc:
                    narrow.submit(["shared"], ["apache"], seeds=[2],
                                  settings=SETTINGS_WIRE)
                assert (exc.value.status, exc.value.code) == \
                    (429, "quota-jobs")

                tiny = GatewayClient(url, api_key=points_key)
                with pytest.raises(GatewayError) as exc:
                    tiny.submit(["shared", "private", "esp-nuca"],
                                ["apache"], seeds=[1],
                                settings=SETTINGS_WIRE)
                assert (exc.value.status, exc.value.code) == \
                    (429, "quota-points")

                bursty = GatewayClient(url, api_key=rate_key)
                bursty.submit(["shared"], ["apache"], seeds=[1],
                              settings=SETTINGS_WIRE)
                with pytest.raises(GatewayError) as exc:
                    bursty.submit(["shared"], ["apache"], seeds=[1],
                                  settings=SETTINGS_WIRE)
                assert (exc.value.status, exc.value.code) == \
                    (429, "rate-limited")
                assert exc.value.retry_after >= 1
                gate.set()
                narrow.wait(held)
                # quota released once the job finished
                narrow.submit(["shared"], ["apache"], seeds=[2],
                              settings=SETTINGS_WIRE)
                rejects = narrow.status()["gateway"]["rejects"]
                assert rejects["quota_jobs"] == 1
                assert rejects["quota_points"] == 1
                assert rejects["rate_limited"] == 1
                tenants = narrow.status()["gateway"]["tenants"]
                assert tenants["bursty"]["rate_hits"] == 1
        finally:
            gate.set()

    def test_bad_grid_is_400_and_bad_method_405(self, tmp_path):
        with gateway(tmp_path / "b.sqlite",
                     allow_anonymous=True) as handle:
            with GatewayClient(handle.base_url) as client:
                with pytest.raises(GatewayError) as exc:
                    client.submit(["no-such-arch"], ["apache"], seeds=[1])
                assert (exc.value.status, exc.value.code) == \
                    (400, "bad-request")
                with pytest.raises(GatewayError) as exc:
                    client.request("POST", "/healthz", {})
                assert exc.value.status == 405

    def test_routes_match_openapi_spec(self, tmp_path):
        """Every path+method the OpenAPI document describes is actually
        served (nothing answers the routeless 404), and the route table
        has not grown past the document."""
        with gateway(tmp_path / "o.sqlite", cache_dir=tmp_path / "cache",
                     allow_anonymous=True) as handle:
            with GatewayClient(handle.base_url) as client:
                spec = client.openapi()
                documented = {(path, method.upper())
                              for path, ops in spec["paths"].items()
                              for method in ops}
                assert documented == {
                    ("/healthz", "GET"), ("/readyz", "GET"),
                    ("/metrics", "GET"), ("/openapi.json", "GET"),
                    ("/v1/status", "GET"),
                    ("/v1/jobs", "GET"), ("/v1/jobs", "POST"),
                    ("/v1/jobs/{id}", "GET"), ("/v1/jobs/{id}", "DELETE"),
                    ("/v1/jobs/{id}/results", "GET"),
                    ("/v1/jobs/{id}/events", "GET"),
                }
                job = client.submit(["shared"], ["apache"], seeds=[5],
                                    settings=SETTINGS_WIRE)["job"]
                client.wait(job)
                for path, method in sorted(documented):
                    url = path.replace("{id}", job)
                    body = ({"architectures": ["shared"],
                             "workloads": ["apache"], "seeds": [5],
                             "settings": SETTINGS_WIRE}
                            if method == "POST" else None)
                    reply = client.request(method, url, body)
                    assert "error" not in reply, (path, method, reply)
                with pytest.raises(GatewayError) as exc:
                    client.request("GET", "/v1/nothing-here")
                assert (exc.value.status, exc.value.code) == \
                    (404, "not-found")


# -- crash recovery -----------------------------------------------------------

class TestRecovery:
    def _store_backlog(self, db, grids):
        """Persist ``queued`` jobs exactly as a pre-crash gateway would
        have (canonical request JSON + grid-order point rows)."""
        pks = []
        with JobStore.open(str(db)) as store:
            for archs, workloads, seeds in grids:
                request = {"architectures": archs, "workloads": workloads,
                           "seeds": seeds, "settings": SETTINGS_WIRE}
                points = quick_points(archs, workloads, seeds)
                pks.append(store.create_job(
                    request, 0, None,
                    [(p.key, p.name, p.workload, p.seed) for p in points]))
        return pks

    def test_stored_backlog_recovers_byte_identical(self, tmp_path):
        db = tmp_path / "rec.sqlite"
        grids = [(["esp-nuca"], ["apache"], [31]),
                 (["shared", "private"], ["apache"], [32])]
        pks = self._store_backlog(db, grids)
        with gateway(db, cache_dir=tmp_path / "cache",
                     allow_anonymous=True) as handle:
            with GatewayClient(handle.base_url) as client:
                for pk, (archs, workloads, seeds) in zip(pks, grids):
                    snap = client.wait(f"g{pk}")
                    assert snap["state"] == "done"
                    got = client.results(f"g{pk}")["results"]
                    want = reference_payloads(archs, workloads, seeds)
                    assert canonical(got) == canonical(want)
                status = client.status()
                assert status["gateway"]["recovered"] == len(pks)
                assert status["recovering"] is False
                assert status["store"]["jobs"] == {"done": len(pks)}

    def test_unrecoverable_request_is_failed_not_retried_forever(
            self, tmp_path):
        db = tmp_path / "bad.sqlite"
        with JobStore.open(str(db)) as store:
            pk = store.create_job(
                {"architectures": ["removed-arch"], "workloads": ["apache"]},
                0, None, [("k", "removed-arch", "apache", 1)])
        with gateway(db, allow_anonymous=True) as handle:
            with GatewayClient(handle.base_url) as client:
                snap = client.wait(f"g{pk}")
                assert snap["state"] == "failed"
                assert "unrecoverable" in snap["errors"]["job"]

    def test_terminal_results_backstopped_by_run_cache(self, tmp_path):
        """A crash between the run-cache write and the store commit
        leaves a done job with no results rows; the results endpoint
        must serve them from the cache instead of 500ing."""
        db1, db2 = tmp_path / "one.sqlite", tmp_path / "two.sqlite"
        cache_dir = tmp_path / "cache"
        key = mint(db1, "alice", rate_capacity=100, rate_refill=50)
        with gateway(db1, cache_dir=cache_dir) as handle:
            with GatewayClient(handle.base_url, api_key=key) as client:
                job = client.submit(["esp-nuca"], ["apache"], seeds=[41],
                                    settings=SETTINGS_WIRE)["job"]
                client.wait(job)
                results = client.results(job)["results"]
        # A second store that believes the job is done but holds no
        # result rows (the under-reporting crash window).
        points = quick_points(["esp-nuca"], ["apache"], [41])
        with JobStore.open(str(db2)) as store:
            pk = store.create_job(
                {"architectures": ["esp-nuca"], "workloads": ["apache"],
                 "seeds": [41], "settings": SETTINGS_WIRE}, 0, None,
                [(p.key, p.name, p.workload, p.seed) for p in points])
            store.set_job_state(pk, "done")
            assert store.result_count() == 0
        with gateway(db2, cache_dir=cache_dir,
                     allow_anonymous=True) as handle:
            with GatewayClient(handle.base_url) as client:
                got = client.results(f"g{pk}")
                assert got["state"] == "done"
                assert canonical(got["results"]) == canonical(results)
                # the SSE stream of a stored-terminal job ends at once
                events = list(client.events(f"g{pk}"))
                assert len(events) == 1
                assert events[0]["event"] == "end"
                assert events[0]["stored"] is True


# -- hostile and broken HTTP clients ------------------------------------------

class TestHttpHardening:
    def _raw(self, handle):
        _, host, port = handle.address
        sock = socket.create_connection((host, port), timeout=60)
        return sock

    def _response(self, sock, payload):
        sock.sendall(payload)
        stream = sock.makefile("rb")
        status = stream.readline().decode()
        body = b""
        length = 0
        for line in iter(stream.readline, b"\r\n"):
            if not line:
                break
            name, _, value = line.decode().partition(":")
            if name.lower() == "content-length":
                length = int(value)
        if length:
            body = stream.read(length)
        return status, (json.loads(body) if body else {})

    def _still_serving(self, handle):
        with GatewayClient(handle.base_url) as client:
            reply = client.submit(["shared"], ["apache"], seeds=[91],
                                  settings=SETTINGS_WIRE)
            assert GatewayClient(handle.base_url).wait(
                reply["job"])["state"] == "done"

    def test_malformed_json_body_is_400(self, tmp_path):
        with gateway(tmp_path / "h.sqlite", allow_anonymous=True) as handle:
            sock = self._raw(handle)
            try:
                body = b"{this is not json"
                status, obj = self._response(
                    sock,
                    b"POST /v1/jobs HTTP/1.1\r\nHost: x\r\n"
                    b"Content-Type: application/json\r\n"
                    b"Content-Length: %d\r\n\r\n%s" % (len(body), body))
                assert " 400 " in status
                assert obj["error"]["code"] == "bad-json"
            finally:
                sock.close()
            self._still_serving(handle)

    def test_oversized_request_line_is_431_and_closed(self, tmp_path):
        with gateway(tmp_path / "h.sqlite", allow_anonymous=True) as handle:
            sock = self._raw(handle)
            try:
                path = b"/" + b"a" * (ghttp.MAX_REQUEST_LINE + 64)
                sock.sendall(b"GET " + path + b" HTTP/1.1\r\n\r\n")
                stream = sock.makefile("rb")
                status = stream.readline().decode()
                assert " 431 " in status
                assert stream.read() != b"" and stream.read() == b""
            finally:
                sock.close()
            self._still_serving(handle)

    def test_oversized_body_is_413_without_reading_it(self, tmp_path):
        with gateway(tmp_path / "h.sqlite", allow_anonymous=True) as handle:
            sock = self._raw(handle)
            try:
                status, obj = self._response(
                    sock,
                    b"POST /v1/jobs HTTP/1.1\r\nHost: x\r\n"
                    b"Content-Length: %d\r\n\r\n"
                    % (ghttp.MAX_BODY_BYTES + 1))
                assert " 413 " in status
                assert obj["error"]["code"] == "body-too-large"
            finally:
                sock.close()
            self._still_serving(handle)

    def test_disconnect_mid_sse_leaves_job_and_daemon_alive(self, tmp_path):
        gate = threading.Event()
        executor = GatedExecutor(jobs=1, cache=RunCache(enabled=False),
                                 gate=gate)
        try:
            with gateway(tmp_path / "h.sqlite", executor,
                         allow_anonymous=True, workers=1,
                         batch=1) as handle:
                client = GatewayClient(handle.base_url)
                job = client.submit(["shared"], ["apache"], seeds=[92],
                                    settings=SETTINGS_WIRE)["job"]
                sock = self._raw(handle)
                sock.sendall(b"GET /v1/jobs/" + job.encode() +
                             b"/events HTTP/1.1\r\nHost: x\r\n\r\n")
                # first progress frame arrives, then the watcher vanishes
                stream = sock.makefile("rb")
                while b"data: " not in stream.readline():
                    pass
                sock.close()
                gate.set()
                assert client.wait(job)["state"] == "done"
                self._still_serving(handle)
        finally:
            gate.set()
