"""Latency-relationship tests: the paper's protocol arguments in
Section 2.3, expressed as inequalities between measured access times."""

from repro.sim.request import Supplier

from tests.util import access, build

from tests.test_arch_private import evict_from_l1


def l2_hit_latency(system, core, block):
    """Access a block resident only in L2; return its latency."""
    out = access(system, core, block)
    return out.complete


class TestSpNucaIndirection:
    def test_private_hit_faster_than_snuca_shared_hit(self):
        """'SP-NUCA finds the block in a nearer bank and answers it
        faster, while S-NUCA needs to reach the shared L2 bank.'"""
        # A block whose shared-map home is far from core 0.
        sp = build("sp-nuca")
        sn = build("shared")
        block = 0x900
        while sn.architecture.is_local_bank(
                0, sn.amap.shared_bank(block)):
            block += 1
        for system in (sp, sn):
            access(system, 0, block)
            evict_from_l1(system, 0, block)
        t_sp = access(sp, 0, block).complete
        t_sn = access(sn, 0, block).complete
        assert t_sp < t_sn

    def test_shared_data_pays_the_private_indirection(self):
        """'This additional step will slightly increase ... L2 hit
        latency of accesses to shared data' — an SP-NUCA shared-bank
        hit costs at least the private-bank tag check more than the
        S-NUCA hit to the same bank."""
        sp = build("sp-nuca")
        sn = build("shared")
        block = 0x900
        while sn.architecture.is_local_bank(
                0, sn.amap.shared_bank(block)):
            block += 1
        for system in (sp, sn):
            access(system, 3, block)     # arrival
            access(system, 0, block)     # demote (sp) / share
            evict_from_l1(system, 0, block)
            evict_from_l1(system, 3, block)
        t_sp = access(sp, 0, block).complete
        t_sn = access(sn, 0, block).complete
        tag = sp.config.l2.tag_latency
        assert t_sp >= t_sn + tag

    def test_offchip_dispatch_is_parallel_with_shared_probe(self):
        """Figure 2b step 2: SP-NUCA dispatches memory from the private
        bank, so a cold miss is no slower than S-NUCA's serialized
        home-bank-then-memory path."""
        sp = build("sp-nuca")
        sn = build("shared")
        block = 0xAB0
        while sn.architecture.is_local_bank(
                0, sn.amap.shared_bank(block)):
            block += 1
        t_sp = access(sp, 0, block).complete
        t_sn = access(sn, 0, block).complete
        assert t_sp <= t_sn + sp.config.l2.tag_latency


class TestDistanceMonotonicity:
    def test_remote_supplier_latency_exceeds_local(self):
        system = build("private")
        block = 0x5000
        access(system, 2, block)
        evict_from_l1(system, 2, block)
        local = access(system, 2, block).complete - 0
        # Re-install in L2 and read from the farthest core.
        evict_from_l1(system, 2, block)
        out = access(system, 5, block, t=10_000)
        assert out.supplier in (Supplier.L2_REMOTE, Supplier.L1_REMOTE)
        assert out.complete - 10_000 > local

    def test_offchip_dwarfs_onchip(self):
        system = build("shared")
        cold = access(system, 0, 0xF000).complete
        warm = access(system, 0, 0xF000, t=cold + 10).complete - (cold + 10)
        assert cold > system.config.mem.latency
        assert warm <= system.config.l1.access_latency