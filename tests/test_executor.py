"""Executor and persistent run cache: parallel == serial, cache hits,
versioned invalidation, validated environment knobs."""

import dataclasses
import os

import pytest

from repro.common.config import scaled_config
from repro.core.esp_nuca import EspNuca
from repro.harness.executor import Executor, RunPoint, default_jobs, env_int
from repro.harness.runcache import (RunCache, cache_key, payload_to_result,
                                    result_to_payload)
from repro.harness.runcache import main as cache_main
from repro.harness.runner import ExperimentRunner, RunSettings

QUICK = RunSettings(capacity_factor=8, refs_per_core=400,
                    warmup_refs_per_core=100, num_seeds=2)
GRID_ARCHS = ["shared", "private", "esp-nuca"]
GRID_WORKLOADS = ["apache", "gcc-4"]


def make_runner(cache_dir, jobs, settings=QUICK):
    cache = (RunCache(root=str(cache_dir)) if cache_dir is not None
             else RunCache(enabled=False))
    return ExperimentRunner(settings, executor=Executor(jobs=jobs,
                                                        cache=cache))


@pytest.fixture(scope="module")
def serial_grid():
    """The reference results: serial path, no persistent cache."""
    runner = make_runner(None, 1)
    runner.matrix(GRID_ARCHS, GRID_WORKLOADS)
    return runner


class TestParallelEqualsSerial:
    def test_results_identical_fieldwise(self, serial_grid, tmp_path):
        parallel = make_runner(tmp_path / "cache", 2)
        parallel.matrix(GRID_ARCHS, GRID_WORKLOADS)
        for arch in GRID_ARCHS:
            for wl in GRID_WORKLOADS:
                for seed in serial_grid.seeds:
                    a = serial_grid.run_one(arch, wl, seed)
                    b = parallel.run_one(arch, wl, seed)
                    assert a == b, (arch, wl, seed)

    def test_unpicklable_factory_falls_back_in_parent(self, serial_grid,
                                                      tmp_path):
        runner = make_runner(tmp_path / "cache", 2)
        agg = runner.aggregate_custom("esp[lambda]", runner.config,
                                      lambda c: EspNuca(c), "apache")
        reference = make_runner(None, 1).aggregate("esp-nuca", "apache")
        assert [r.cycles for r in agg.runs] == \
            [r.cycles for r in reference.runs]

    def test_jobs_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "1")
        assert default_jobs() == 1
        assert Executor().jobs == 1
        monkeypatch.delenv("REPRO_JOBS")
        assert default_jobs() == (os.cpu_count() or 1)

    def test_jobs_must_be_positive(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            Executor()


class TestPersistentCache:
    def test_second_run_all_hits(self, tmp_path):
        first = make_runner(tmp_path / "cache", 1)
        first.matrix(GRID_ARCHS, GRID_WORKLOADS)
        points = len(GRID_ARCHS) * len(GRID_WORKLOADS) * QUICK.num_seeds
        assert first.executor.cache.writes == points

        second = make_runner(tmp_path / "cache", 1)
        second.matrix(GRID_ARCHS, GRID_WORKLOADS)
        assert second.executor.cache.misses == 0
        assert second.executor.cache.hits == points
        for arch in GRID_ARCHS:
            for wl in GRID_WORKLOADS:
                for seed in first.seeds:
                    assert first.run_one(arch, wl, seed) == \
                        second.run_one(arch, wl, seed)

    def test_settings_change_invalidates(self, tmp_path):
        runner = make_runner(tmp_path / "cache", 1)
        runner.run_one("shared", "apache", runner.seeds[0])
        longer = dataclasses.replace(QUICK, refs_per_core=500)
        rerun = make_runner(tmp_path / "cache", 1, settings=longer)
        rerun.run_one("shared", "apache", rerun.seeds[0])
        assert rerun.executor.cache.hits == 0
        assert rerun.executor.cache.misses == 1

    def test_config_change_invalidates(self):
        base = scaled_config(8)
        other = dataclasses.replace(
            base, mem=dataclasses.replace(base.mem, latency=351))
        assert cache_key(base, QUICK, "shared", "apache", 1) != \
            cache_key(other, QUICK, "shared", "apache", 1)

    def test_duplicate_points_simulated_once(self, tmp_path):
        executor = Executor(jobs=1, cache=RunCache(root=str(tmp_path)))
        point = RunPoint(name="shared", workload="apache", seed=7,
                         config=scaled_config(8), settings=QUICK,
                         arch="shared")
        results = executor.run([point, point, point])
        assert executor.cache.writes == 1
        assert results[0] == results[1] == results[2]

    def test_payload_round_trip(self, tmp_path):
        result = make_runner(None, 1).run_one("shared", "apache", 3)
        assert payload_to_result(result_to_payload(result)) == result

    def test_stale_payload_is_a_miss(self):
        result = make_runner(None, 1).run_one("shared", "apache", 3)
        payload = result_to_payload(result)
        payload.pop("cycles")  # field set no longer matches SimResult
        assert payload_to_result(payload) is None

    def test_disabled_cache_never_touches_disk(self, tmp_path):
        cache_dir = tmp_path / "never"
        runner = ExperimentRunner(QUICK, executor=Executor(
            jobs=1, cache=RunCache(root=str(cache_dir), enabled=False)))
        runner.run_one("shared", "apache", runner.seeds[0])
        assert not cache_dir.exists()

    def test_cli_stats_and_clear(self, tmp_path, capsys):
        runner = make_runner(tmp_path / "cache", 1)
        runner.run_one("shared", "apache", runner.seeds[0])
        assert cache_main(["stats", "--dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "entries: 1" in out
        assert cache_main(["clear", "--dir", str(tmp_path / "cache")]) == 0
        assert "cleared 1" in capsys.readouterr().out
        assert not (tmp_path / "cache").exists()


class TestCorruptEntries:
    """Real damage on disk — every flavor of bad payload reads as a
    miss (the ``except (OSError, ValueError)`` and schema-check paths
    in :meth:`RunCache.get`), and re-simulation heals the entry."""

    def _seeded_cache(self, tmp_path):
        """A cache holding one real entry; returns (cache, key, result)."""
        cache = RunCache(root=str(tmp_path / "cache"))
        runner = ExperimentRunner(QUICK, executor=Executor(jobs=1,
                                                           cache=cache))
        seed = runner.seeds[0]
        result = runner.run_one("shared", "apache", seed)
        key = cache_key(runner.config, QUICK, "shared", "apache", seed)
        assert cache.get(key) == result  # sanity: entry is readable
        return cache, key, result

    @pytest.mark.parametrize("damage", [
        pytest.param(b"", id="empty-file"),
        pytest.param(b'{"architecture": "shared", "cyc', id="truncated"),
        pytest.param(b"\x00\xffnot json at all\x80", id="binary-garbage"),
        pytest.param(b'"hello"', id="json-non-object"),
        pytest.param(b'{"foo": 1}', id="wrong-schema"),
    ])
    def test_damaged_entry_is_a_miss(self, tmp_path, damage):
        cache, key, _ = self._seeded_cache(tmp_path)
        with open(cache.entry_path(key), "wb") as handle:
            handle.write(damage)
        misses_before = cache.misses
        assert cache.get(key) is None
        assert cache.misses == misses_before + 1

    def test_resimulation_heals_damaged_entry(self, tmp_path):
        cache, key, result = self._seeded_cache(tmp_path)
        with open(cache.entry_path(key), "wb") as handle:
            handle.write(b'{"half a payl')
        fresh = ExperimentRunner(QUICK, executor=Executor(
            jobs=1, cache=RunCache(root=cache.root)))
        healed = fresh.run_one("shared", "apache", fresh.seeds[0])
        assert healed == result
        assert fresh.executor.cache.misses == 1
        assert fresh.executor.cache.writes == 1
        assert cache.get(key) == result

    def test_unreadable_entry_is_a_miss(self, tmp_path):
        cache, key, _ = self._seeded_cache(tmp_path)
        path = cache.entry_path(key)
        os.chmod(path, 0o000)
        try:
            if os.access(path, os.R_OK):  # running as root: chmod no-op
                pytest.skip("permissions not enforced for this user")
            assert cache.get(key) is None
        finally:
            os.chmod(path, 0o644)


class TestEnvValidation:
    def test_malformed_value_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_REFS", "twenty")
        with pytest.raises(ValueError, match="REPRO_REFS.*integer"):
            RunSettings.from_env()

    def test_negative_value_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_WARMUP", "-5")
        with pytest.raises(ValueError, match="REPRO_WARMUP.*>= 0"):
            RunSettings.from_env()

    def test_zero_seeds_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEEDS", "0")
        with pytest.raises(ValueError, match="REPRO_SEEDS.*>= 1"):
            RunSettings.from_env()

    def test_blank_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "  ")
        assert RunSettings.from_env().capacity_factor == 8

    def test_env_int_passes_good_values(self, monkeypatch):
        monkeypatch.setenv("REPRO_REFS", " 123 ")
        assert env_int("REPRO_REFS", 7, minimum=1) == 123
