"""Unit tests for the hierarchical statistics registry."""

import json

import pytest

from repro.common.statsreg import (HIST_KEY, Counter, Gauge, Histogram,
                                   Scope, StatsRegistry, flatten,
                                   histogram_count, histogram_total,
                                   is_histogram, snapshot_get)


class TestPrimitives:
    def test_counter_inc_and_reset(self):
        c = Counter()
        c.value += 3
        c.inc()
        c.inc(2)
        assert c.value == 6 and c.snapshot() == 6
        c.reset()
        assert c.value == 0

    def test_gauge_is_a_level_not_a_sum(self):
        g = Gauge()
        g.set(7)
        g.set(2.5)
        assert g.snapshot() == 2.5
        g.reset()
        assert g.value == 0

    def test_histogram_bucket_is_bit_length(self):
        h = Histogram()
        for value in (0, 1, 2, 3, 4, 100):
            h.record(value)
        snap = h.snapshot()[HIST_KEY]
        assert snap["count"] == 6
        assert snap["total"] == 110
        assert snap["buckets"]["0"] == 1       # the zero
        assert snap["buckets"]["1"] == 1       # 1
        assert snap["buckets"]["2"] == 2       # 2, 3
        assert snap["buckets"]["3"] == 1       # 4
        assert snap["buckets"]["7"] == 1       # 100 in [64, 128)
        assert h.mean == pytest.approx(110 / 6)

    def test_histogram_saturates_huge_values(self):
        h = Histogram()
        h.record(1 << 200)
        snap = h.snapshot()[HIST_KEY]
        assert sum(snap["buckets"].values()) == 1

    def test_histogram_reset(self):
        h = Histogram()
        h.record(9)
        h.reset()
        assert h.count == 0 and h.total == 0
        assert h.snapshot()[HIST_KEY]["buckets"] == {}


class TestScope:
    def test_stat_creation_is_idempotent_by_name(self):
        s = Scope()
        assert s.counter("x") is s.counter("x")
        assert s.gauge("g") is s.gauge("g")
        assert s.histogram("h") is s.histogram("h")

    def test_name_collisions_rejected(self):
        s = Scope()
        s.counter("x")
        with pytest.raises(ValueError):
            s.gauge("x")  # same name, different kind
        with pytest.raises(ValueError):
            s.scope("x")  # stat name cannot become a scope
        s.scope("child")
        with pytest.raises(ValueError):
            s.counter("child")

    def test_invalid_names_rejected(self):
        s = Scope()
        with pytest.raises(ValueError):
            s.counter("a.b")
        with pytest.raises(ValueError):
            s.scope("")
        with pytest.raises(ValueError):
            s.mount("a.b", Scope())

    def test_mount_duplicate_requires_replace(self):
        root = Scope()
        first = Scope()
        root.mount("duel", first)
        with pytest.raises(ValueError):
            root.mount("duel", Scope())
        second = Scope()
        root.mount("duel", second, replace=True)
        assert root.get("duel") is second

    def test_dotted_get(self):
        root = StatsRegistry()
        root.scope("l2").scope("bank0").counter("misses").value += 3
        assert root.get("l2.bank0.misses").value == 3
        assert isinstance(root.get("l2.bank0"), Scope)
        with pytest.raises(KeyError):
            root.get("l2.bank1.misses")
        with pytest.raises(KeyError):
            root.get("l2.bank0.misses.deeper")

    def test_walk_yields_dotted_paths(self):
        root = Scope()
        root.counter("top")
        root.scope("a").scope("b").counter("leaf")
        assert [path for path, _ in root.walk()] == ["top", "a.b.leaf"]

    def test_reset_is_recursive(self):
        root = Scope()
        root.counter("top").value = 5
        child = root.scope("child")
        child.gauge("g").set(9)
        child.histogram("h").record(4)
        root.reset()
        assert all(stat.snapshot() in (0, 0.0) or
                   histogram_count(stat.snapshot()) == 0
                   for _, stat in root.walk())

    def test_mounted_scope_shares_objects(self):
        component = Scope()
        hits = component.counter("hits")
        registry = StatsRegistry()
        registry.mount("l1", component)
        hits.value += 2
        assert registry.get("l1.hits").value == 2
        registry.reset()
        assert hits.value == 0


class TestSnapshots:
    def _tree(self):
        root = StatsRegistry()
        root.scope("l2").scope("bank0").counter("misses").value = 4
        root.scope("l2").scope("bank0").gauge("nmax").set(3)
        root.scope("noc").histogram("latency").record(12)
        return root

    def test_to_dict_shape(self):
        snap = self._tree().to_dict()
        assert snap["l2"]["bank0"]["misses"] == 4
        assert snapshot_get(snap, "l2.bank0.nmax") == 3
        hist = snapshot_get(snap, "noc.latency")
        assert is_histogram(hist)
        assert histogram_count(hist) == 1 and histogram_total(hist) == 12

    def test_snapshot_is_json_lossless(self):
        snap = self._tree().to_dict()
        assert json.loads(json.dumps(snap)) == snap

    def test_flatten(self):
        flat = flatten(self._tree().to_dict())
        assert flat["l2.bank0.misses"] == 4
        assert flat["l2.bank0.nmax"] == 3
        assert is_histogram(flat["noc.latency"])

    def test_snapshot_get_missing_path(self):
        with pytest.raises(KeyError):
            snapshot_get(self._tree().to_dict(), "l2.bank9")
