"""lint-docs: documentation stays honest or tier-1 fails.

Two checks, run as ordinary tests so the tier-1 entry point
(``pytest -x -q``) covers them:

* every fenced ``python`` code block in ``docs/*.md`` and README.md
  at least compiles (docs with syntax errors are worse than no docs);
* every relative markdown link in any tracked ``*.md`` resolves to an
  existing file (renames and deletions must update their references).
"""

import glob
import os
import re

import pytest

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: docs whose code blocks must compile (the worked examples).
CODE_DOCS = sorted(glob.glob(os.path.join(ROOT, "docs", "*.md"))) + \
    [os.path.join(ROOT, "README.md")]

#: all markdown subject to the dead-link check. SNIPPETS.md holds
#: verbatim excerpts of *other* repositories, so its links are exempt.
LINK_DOCS = sorted(
    path
    for pattern in ("*.md", os.path.join("docs", "*.md"))
    for path in glob.glob(os.path.join(ROOT, pattern))
    if os.path.basename(path) != "SNIPPETS.md")

_FENCE = re.compile(r"```python[ \t]*\n(.*?)^```", re.DOTALL | re.MULTILINE)
_LINK = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)\)")


def _read(path):
    with open(path, encoding="utf-8") as handle:
        return handle.read()


@pytest.mark.parametrize("path", CODE_DOCS,
                         ids=[os.path.relpath(p, ROOT) for p in CODE_DOCS])
def test_python_blocks_compile(path):
    for i, block in enumerate(_FENCE.findall(_read(path))):
        try:
            compile(block, f"{os.path.relpath(path, ROOT)}#block{i}", "exec")
        except SyntaxError as exc:
            pytest.fail(f"fenced python block {i} of "
                        f"{os.path.relpath(path, ROOT)} does not compile: "
                        f"{exc}")


def test_relative_links_resolve():
    dead = []
    for path in LINK_DOCS:
        base = os.path.dirname(path)
        for target in _LINK.findall(_read(path)):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = os.path.normpath(
                os.path.join(base, target.split("#", 1)[0]))
            if not os.path.exists(resolved):
                dead.append(f"{os.path.relpath(path, ROOT)} -> {target}")
    assert not dead, "dead relative links:\n  " + "\n  ".join(dead)
