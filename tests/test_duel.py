"""Set dueling and the nmax controller (Sections 3.2-3.3)."""

import pytest

from repro.cache.bank import CacheBank, SetRole
from repro.common.config import EspConfig
from repro.core.duel import DuelController, sampled_set_indices


def make(config=None, ways=16, num_sets=64):
    config = config or EspConfig()
    controller = DuelController(config, ways)
    bank = CacheBank(0, num_sets=num_sets, ways=ways)
    state = controller.attach(bank)
    return controller, bank, state


class TestSampledSets:
    def test_role_counts_match_config(self):
        roles = sampled_set_indices(64, EspConfig())
        values = list(roles.values())
        assert values.count(SetRole.REFERENCE) == 1
        assert values.count(SetRole.EXPLORER) == 1
        assert values.count(SetRole.CONVENTIONAL_SAMPLE) == 2

    def test_roles_spread_and_distinct(self):
        roles = sampled_set_indices(64, EspConfig())
        assert len(roles) == 4
        assert all(0 <= s < 64 for s in roles)

    def test_too_many_monitor_sets_rejected(self):
        with pytest.raises(ValueError):
            sampled_set_indices(2, EspConfig())

    def test_placement_varies_across_banks(self):
        # Regression: every bank used to monitor the same set indices,
        # so any workload striding over set index biased every monitor
        # the same way. Placement must rotate per bank.
        config = EspConfig()
        placements = {frozenset(sampled_set_indices(64, config, bank_id=b))
                      for b in range(32)}
        assert len(placements) > 1
        # Reference sets alone must not be globally aligned either.
        refs = {next(s for s, r in
                     sampled_set_indices(64, config, bank_id=b).items()
                     if r is SetRole.REFERENCE)
                for b in range(32)}
        assert len(refs) > 1

    def test_placement_deterministic_per_bank(self):
        config = EspConfig()
        assert sampled_set_indices(64, config, bank_id=7) \
            == sampled_set_indices(64, config, bank_id=7)

    def test_attach_uses_bank_id(self):
        controller = DuelController(EspConfig(), ways=16)
        banks = [CacheBank(b, 64, 16) for b in (0, 1)]
        for bank in banks:
            controller.attach(bank)
        assert set(banks[0].roles) != set(banks[1].roles)


class TestAttachment:
    def test_bank_wired(self):
        controller, bank, state = make()
        assert bank.nmax == state.nmax
        assert bank.monitor is not None
        assert any(r is SetRole.REFERENCE for r in bank.roles.values())

    def test_initial_nmax_respects_cap(self):
        config = EspConfig(nmax_initial=99)
        controller, bank, state = make(config, ways=8)
        assert state.nmax == 7  # capped at ways - 1


def drive(bank, controller, role, hits, count):
    """Feed `count` monitored events of one role."""
    index = next(s for s, r in bank.roles.items() if r is role)
    for _ in range(count):
        controller.observe(bank, index, hits)


class TestEquationThree:
    def test_degraded_conventional_decrements(self):
        config = EspConfig(update_period=1)
        controller, bank, state = make(config)
        start = state.nmax
        # Reference hits, conventional misses -> helping blocks hurt.
        drive(bank, controller, SetRole.REFERENCE, True, 30)
        drive(bank, controller, SetRole.CONVENTIONAL_SAMPLE, False, 30)
        assert state.nmax < start
        assert bank.nmax == state.nmax

    def test_healthy_explorer_increments(self):
        config = EspConfig(update_period=1)
        controller, bank, state = make(config)
        start = state.nmax
        drive(bank, controller, SetRole.REFERENCE, True, 20)
        drive(bank, controller, SetRole.CONVENTIONAL_SAMPLE, True, 20)
        drive(bank, controller, SetRole.EXPLORER, True, 20)
        assert state.nmax > start

    def test_all_zero_rates_do_not_collapse(self):
        # An idle bank hosting only helping blocks: every first-class
        # rate is 0; the budget must not shrink (tie is not harm).
        config = EspConfig(update_period=1)
        controller, bank, state = make(config)
        start = state.nmax
        for role in (SetRole.REFERENCE, SetRole.CONVENTIONAL_SAMPLE,
                     SetRole.EXPLORER):
            drive(bank, controller, role, False, 40)
        assert state.nmax >= start

    def test_nmax_bounded(self):
        config = EspConfig(update_period=1)
        controller, bank, state = make(config, ways=16)
        drive(bank, controller, SetRole.REFERENCE, True, 100)
        drive(bank, controller, SetRole.EXPLORER, True, 200)
        assert state.nmax <= 15
        drive(bank, controller, SetRole.CONVENTIONAL_SAMPLE, False, 400)
        drive(bank, controller, SetRole.REFERENCE, True, 400)
        assert state.nmax >= 0

    def test_update_period_batches_decisions(self):
        config = EspConfig(update_period=50)
        controller, bank, state = make(config)
        drive(bank, controller, SetRole.REFERENCE, True, 30)
        assert state.increases == 0 and state.decreases == 0
        drive(bank, controller, SetRole.REFERENCE, True, 25)
        assert state.increases + state.decreases >= 1


class TestReporting:
    def test_average_nmax(self):
        config = EspConfig()
        controller = DuelController(config, ways=16)
        for bank_id in range(4):
            controller.attach(CacheBank(bank_id, 64, 16))
        assert controller.average_nmax() == pytest.approx(config.nmax_initial)

    def test_history_recording(self):
        config = EspConfig(update_period=1)
        controller, bank, state = make(config)
        controller.record_history = True
        drive(bank, controller, SetRole.REFERENCE, True, 10)
        assert state.history
