"""Deterministic named RNG substreams."""

from repro.common.rng import perturbed_seeds, substream


class TestSubstream:
    def test_deterministic(self):
        a = substream(42, "workload/core0")
        b = substream(42, "workload/core0")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_name_independence(self):
        a = substream(42, "alpha")
        b = substream(42, "beta")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_seed_independence(self):
        a = substream(1, "alpha")
        b = substream(2, "alpha")
        assert a.random() != b.random()


class TestPerturbedSeeds:
    def test_deterministic_and_distinct(self):
        seeds = perturbed_seeds(42, 8)
        assert seeds == perturbed_seeds(42, 8)
        assert len(set(seeds)) == 8

    def test_prefix_stability(self):
        # Adding runs must not change earlier seeds (comparability).
        assert perturbed_seeds(7, 3) == perturbed_seeds(7, 5)[:3]
