"""Cross-module integration: every architecture end-to-end on real
workload traces with invariant checking, determinism, and the directed
capacity scenarios behind the paper's headline shapes."""

import pytest

from repro.architectures.registry import architecture_names, make_architecture
from repro.common.config import scaled_config
from repro.sim.engine import SimulationEngine
from repro.sim.request import Supplier
from repro.sim.system import CmpSystem
from repro.workloads.base import TraceGenerator
from repro.workloads.registry import get_workload

from repro.workloads.synthetic import single_core_traces

from tests.util import build, loads, run_trace

SMALL_REFS = 1200


def run_workload(arch_name, workload="apache", seed=1, check=True,
                 config=None):
    config = config or scaled_config(8)
    system = CmpSystem(config, make_architecture(arch_name, config),
                       check_tokens=check)
    spec = get_workload(workload).capacity_scaled(8).scaled(SMALL_REFS)
    engine = SimulationEngine(system, TraceGenerator(spec, seed).traces(
        config.num_cores))
    result = engine.run(invariant_check_every=2000 if check else 0)
    if check:
        system.check_invariants()
    return system, result


@pytest.mark.parametrize("arch", architecture_names())
def test_every_architecture_runs_clean(arch):
    system, result = run_workload(arch)
    assert result.memory_accesses == SMALL_REFS * 8
    assert result.cycles > 0
    assert result.performance > 0
    total = sum(result.supplier_count.values())
    assert total == result.memory_accesses


@pytest.mark.parametrize("arch", ["shared", "private", "esp-nuca", "d-nuca"])
def test_determinism(arch):
    _, a = run_workload(arch, check=False)
    _, b = run_workload(arch, check=False)
    assert a.cycles == b.cycles
    assert a.supplier_count == b.supplier_count
    assert a.offchip_demand == b.offchip_demand


def test_seeds_differ():
    _, a = run_workload("shared", seed=1, check=False)
    _, b = run_workload("shared", seed=2, check=False)
    assert a.cycles != b.cycles


class TestAccountingConsistency:
    def test_latency_components_sum(self):
        _, result = run_workload("esp-nuca")
        assert sum(result.supplier_cycles.values()) > 0
        assert result.average_access_time > 0
        recomposed = sum(result.access_time_component(s) for s in Supplier)
        assert recomposed == pytest.approx(result.average_access_time)

    def test_l1_counters_match_supplier_counts(self):
        _, result = run_workload("shared")
        assert result.l1_hits == result.supplier_count[Supplier.L1_LOCAL]
        assert result.l1_misses == result.memory_accesses - result.l1_hits

    def test_offchip_supplier_means_memory_was_used(self):
        _, result = run_workload("private")
        assert result.offchip_demand >= result.supplier_count[Supplier.OFFCHIP]


class TestPaperShapes:
    """The qualitative orderings the paper's figures rest on, in
    miniature (single seed, short runs — directions only)."""

    def test_single_thread_prefers_shared_capacity(self):
        """One thread looping over more than its private partition:
        a shared organization must beat the private one (Section 3.1's
        motivating limit case), and ESP-NUCA must recover most of the
        gap through victims."""
        config = scaled_config(8)
        partition_blocks = (config.l2.sets_per_bank * config.l2.assoc
                            * config.private_banks_per_core)
        footprint = int(partition_blocks * 2.5)
        blocks = list(range(1 << 20, (1 << 20) + footprint))
        perf = {}
        for arch in ("shared", "private", "esp-nuca"):
            system = CmpSystem(config, make_architecture(arch, config))
            trace = loads(blocks * 3, gap=2)
            result = run_trace(system, single_core_traces(8, 0, iter(trace)))
            perf[arch] = result.performance
        assert perf["shared"] > perf["private"] * 1.05
        assert perf["esp-nuca"] > perf["private"]

    def test_shared_data_locality_favours_private_side(self):
        """All cores hammering a small shared region: private-style
        replication beats remote shared banks on latency."""
        config = scaled_config(8)
        hot = [b for b in range(1 << 12, (1 << 12) + 64)]
        perf = {}
        for arch in ("shared", "private"):
            system = CmpSystem(config, make_architecture(arch, config))
            traces = [iter(loads(hot * 40, gap=2)) for _ in range(8)]
            result = run_trace(system, traces)
            perf[arch] = result.performance
        assert perf["private"] > perf["shared"]


class TestWarmup:
    def test_warmup_excluded_from_stats(self):
        config = scaled_config(8)
        system = CmpSystem(config, make_architecture("shared", config))
        spec = get_workload("gcc-4").capacity_scaled(8).scaled(2000)
        engine = SimulationEngine(
            system, TraceGenerator(spec, 1).traces(config.num_cores))
        result = engine.run(max_refs_per_core=1000,
                            warmup_refs_per_core=1000)
        # The OS-service core's short trace ends during warm-up, so the
        # measured phase sees the four application cores only.
        assert result.memory_accesses == 1000 * 4
        assert result.cycles > 0
