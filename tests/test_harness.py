"""Harness: runner caching/pairing, experiment report structure, CLI."""

import pytest

from repro.harness.cli import main as cli_main
from repro.harness.experiments import EXPERIMENTS, run_experiment
from repro.harness.reporting import ExperimentReport, format_table
from repro.harness.runner import ExperimentRunner, RunSettings

QUICK = RunSettings(capacity_factor=8, refs_per_core=500,
                    warmup_refs_per_core=200, num_seeds=2)


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(QUICK)


class TestRunner:
    def test_run_cached(self, runner):
        a = runner.run_one("shared", "apache", runner.seeds[0])
        b = runner.run_one("shared", "apache", runner.seeds[0])
        assert a is b

    def test_traces_paired_across_architectures(self, runner):
        a = runner.run_one("shared", "apache", runner.seeds[0])
        b = runner.run_one("private", "apache", runner.seeds[0])
        assert a.memory_accesses == b.memory_accesses

    def test_aggregate_counts_seeds(self, runner):
        agg = runner.aggregate("shared", "apache")
        assert len(agg.runs) == 2
        assert agg.performance > 0

    def test_custom_runs_cached_by_name(self, runner):
        from repro.core.esp_nuca import EspNuca
        a = runner.run_custom("esp[x]", runner.config,
                              lambda c: EspNuca(c), "apache",
                              runner.seeds[0])
        b = runner.run_custom("esp[x]", runner.config,
                              lambda c: EspNuca(c), "apache",
                              runner.seeds[0])
        assert a is b

    def test_settings_quick(self):
        quick = RunSettings().quick()
        assert quick.num_seeds == 1
        assert quick.refs_per_core < RunSettings().refs_per_core


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "v"], [["a", 1.5], ["bb", 2.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "1.500" in text and "2.250" in text

    def test_report_value_lookup(self):
        report = ExperimentReport("figX", "t", columns=["w1", "w2"],
                                  series={"arch": [1.0, 2.0]})
        assert report.value("arch", "w2") == 2.0

    def test_report_format_contains_notes(self):
        report = ExperimentReport("figX", "t", columns=["w"],
                                  series={"a": [1.0]}, notes=["hello"])
        assert "hello" in report.format()


class TestExperiments:
    def test_registry_covers_all_figures(self):
        assert {"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
                "stability", "ablation"} <= set(EXPERIMENTS)

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_fig8_structure(self, runner):
        report = run_experiment("fig8", runner)
        assert report.columns[-1] == "GMEAN"
        assert set(report.series) == {"shared", "private", "d-nuca", "asr",
                                      "cc-avg", "cc-best", "cc-worst",
                                      "esp-nuca"}
        assert all(v == pytest.approx(1.0) for v in report.series["shared"])
        for values in report.series.values():
            assert len(values) == len(report.columns)

    def test_cc_best_at_least_avg(self, runner):
        report = run_experiment("fig8", runner)
        for best, avg, worst in zip(report.series["cc-best"],
                                    report.series["cc-avg"],
                                    report.series["cc-worst"]):
            assert worst <= avg <= best

    def test_fig6_has_decomposition_tables(self, runner):
        report = run_experiment("fig6", runner)
        assert "apache" in report.extra
        assert "off-chip" in report.columns


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig8" in out and "apache" in out

    def test_single_run(self, capsys):
        rc = cli_main(["run", "--arch", "shared", "--workload", "gcc-4",
                       "--seeds", "1", "--refs", "300", "--warmup", "100"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "performance" in out

    def test_experiment_dispatch(self, capsys):
        rc = cli_main(["fig4", "--seeds", "1", "--refs", "200",
                       "--warmup", "50"])
        assert rc == 0
        assert "fig4" in capsys.readouterr().out

    def test_json_export(self, capsys, tmp_path):
        rc = cli_main(["fig5", "--seeds", "1", "--refs", "200",
                       "--warmup", "50", "--json", str(tmp_path)])
        assert rc == 0
        exported = (tmp_path / "fig5.json").read_text()
        from repro.harness.reporting import ExperimentReport
        report = ExperimentReport.from_json(exported)
        assert report.experiment == "fig5"
        assert "esp-nuca" in report.series

    def test_chart_flag(self, capsys):
        rc = cli_main(["fig4", "--seeds", "1", "--refs", "200",
                       "--warmup", "50", "--chart"])
        assert rc == 0
        assert "█" in capsys.readouterr().out

    def test_overhead_subcommand(self, capsys):
        assert cli_main(["overhead"]) == 0
        assert "Section 5.2" in capsys.readouterr().out

    def test_trace_subcommand(self, capsys, tmp_path):
        out = str(tmp_path / "w.trace.gz")
        rc = cli_main(["trace", "--workload", "gzip-4", "--refs", "100",
                       "--warmup", "0", "--seeds", "1", "--out", out])
        assert rc == 0
        from repro.workloads.tracefile import trace_info
        assert trace_info(out)["workload"] == "gzip-4"
