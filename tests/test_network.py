"""Mesh timing model: latency, serialization, bounded queueing."""

from repro.common.config import SystemConfig
from repro.noc.message import FLITS, MessageKind
from repro.noc.network import Network


def fresh_network(contention: bool = True) -> Network:
    return Network(SystemConfig(), model_contention=contention)


class TestUncontendedLatency:
    def test_latency_is_hops_times_hop_latency(self):
        net = fresh_network(contention=False)
        assert net.arrival(MessageKind.REQUEST, 0, 3, 100) == 100 + 3 * 5
        assert net.arrival(MessageKind.REQUEST, 0, 7, 0) == 4 * 5

    def test_same_router_is_free(self):
        net = fresh_network()
        assert net.arrival(MessageKind.REQUEST, 2, 2, 50) == 50

    def test_latency_helper(self):
        net = fresh_network()
        assert net.latency(0, 7) == 20


class TestContention:
    def test_back_to_back_data_serializes(self):
        net = fresh_network()
        first = net.arrival(MessageKind.RESPONSE_DATA, 0, 1, 0)
        second = net.arrival(MessageKind.RESPONSE_DATA, 0, 1, 0)
        assert first == 5
        # Second waits for the 5-flit occupancy of the first.
        assert second == 5 + FLITS[MessageKind.RESPONSE_DATA]

    def test_disjoint_links_do_not_interact(self):
        net = fresh_network()
        net.arrival(MessageKind.RESPONSE_DATA, 0, 1, 0)
        assert net.arrival(MessageKind.RESPONSE_DATA, 4, 5, 0) == 5

    def test_queueing_is_bounded(self):
        # A reservation stamped far in the future must not block an
        # earlier-stamped message for more than the cap.
        net = fresh_network()
        net.arrival(MessageKind.RESPONSE_DATA, 0, 1, 10_000)
        early = net.arrival(MessageKind.REQUEST, 0, 1, 0)
        cap = 4 * FLITS[MessageKind.REQUEST]
        assert early <= 5 + cap

    def test_queueing_accounted(self):
        net = fresh_network()
        net.arrival(MessageKind.RESPONSE_DATA, 0, 1, 0)
        net.arrival(MessageKind.RESPONSE_DATA, 0, 1, 0)
        assert net.total_queueing > 0

    def test_out_of_order_wait_charged_exactly_at_cap(self):
        # Reservations are stamped in reference order, not time order: a
        # future-stamped message must charge an earlier-stamped one at
        # most ``cap = 4 * flits``, and its own reservation must survive.
        net = fresh_network()
        net.arrival(MessageKind.RESPONSE_DATA, 0, 1, 100_000)
        cap = 4 * FLITS[MessageKind.REQUEST]
        assert net.arrival(MessageKind.REQUEST, 0, 1, 0) == cap + 5
        assert net.total_queueing == cap
        # The 100_005 reservation was kept, not overwritten by the
        # early message: traffic near it still queues behind it.
        assert net.arrival(MessageKind.REQUEST, 0, 1, 100_004) == 100_010


class TestStatistics:
    def test_message_and_flit_counters(self):
        net = fresh_network()
        net.arrival(MessageKind.REQUEST, 0, 2, 0)
        assert net.messages_sent == 1
        assert net.total_hops == 2
        assert net.flits_sent == 2  # 1 flit x 2 hops

    def test_zero_hop_message_costs_no_flits(self):
        # src == dst traverses no links: the message is counted but no
        # link flits are charged (regression: flits * max(hops, 1)).
        net = fresh_network()
        net.arrival(MessageKind.RESPONSE_DATA, 2, 2, 50)
        assert net.messages_sent == 1
        assert net.total_hops == 0
        assert net.flits_sent == 0

    def test_reset(self):
        net = fresh_network()
        net.arrival(MessageKind.REQUEST, 0, 2, 0)
        net.reset_stats()
        assert net.messages_sent == 0
        assert net.total_queueing == 0
        assert net.kind_counts[MessageKind.REQUEST] == 0

    def test_per_kind_counters(self):
        net = fresh_network()
        net.arrival(MessageKind.REQUEST, 0, 2, 0)
        net.arrival(MessageKind.REQUEST, 0, 2, 0)
        net.arrival(MessageKind.RESPONSE_DATA, 2, 0, 0)
        assert net.kind_counts[MessageKind.REQUEST] == 2
        assert net.kind_counts[MessageKind.RESPONSE_DATA] == 1

    def test_sp_indirection_costs_traffic(self):
        """Section 2.3: SP-NUCA's private-bank indirection 'will
        slightly increase on-chip traffic' for shared data."""
        from tests.util import access, build
        from tests.test_arch_private import evict_from_l1

        def shared_traffic(arch_name):
            system = build(arch_name, check_tokens=False)
            block = 0x911
            while system.architecture.is_local_bank(
                    0, system.amap.shared_bank(block)):
                block += 1
            access(system, 3, block)
            access(system, 0, block)
            evict_from_l1(system, 0, block)
            evict_from_l1(system, 3, block)
            before = system.network.messages_sent
            access(system, 0, block)  # shared-bank L2 hit
            return system.network.messages_sent - before

        assert shared_traffic("sp-nuca") >= shared_traffic("shared")

    def test_deliver_fills_message(self):
        net = fresh_network()
        msg = net.deliver(MessageKind.REQUEST, 0, 3, 7)
        assert msg.hops == 3
        assert msg.arrive >= 7 + 15
