"""Simulation service: protocol, coalescing, backpressure, streaming,
drain — integration-tested against real (tiny-fidelity) simulations.

The acceptance contract pinned here:

* concurrent clients submitting overlapping grids get results
  byte-identical to direct executor/runner runs;
* duplicate in-flight submissions coalesce (executor sees fewer points
  than were requested);
* a full queue rejects with the typed ``queue-full`` error instead of
  blocking;
* repeat submissions are answered from the persistent run cache without
  touching a worker;
* ``drain`` completes with zero orphaned workers (asyncio tasks *and*
  OS threads).
"""

import json
import os
import shutil
import signal
import time
import tempfile
import threading

import pytest

from repro.harness.executor import Executor
from repro.harness.runcache import RunCache
from repro.harness.runner import RunSettings, grid_points
from repro.service import (QueueFullError, ServiceClient, ServiceConfig,
                           ServiceError, ServiceThread, payloads_to_results)
from repro.service import protocol as proto

QUICK = RunSettings(capacity_factor=8, refs_per_core=400,
                    warmup_refs_per_core=100, num_seeds=2)
SEEDS = [7, 11]
ARCHS = ["shared", "private", "esp-nuca"]
WORKLOADS = ["apache", "gcc-4"]
SETTINGS_WIRE = {"refs_per_core": QUICK.refs_per_core,
                 "warmup_refs_per_core": QUICK.warmup_refs_per_core,
                 "capacity_factor": QUICK.capacity_factor}

CLIENT_TIMEOUT = 120.0


class CountingExecutor(Executor):
    """Real executor that records traffic and can hold batches at a gate
    (to pin work in-flight while assertions run)."""

    def __init__(self, *args, gate=None, **kwargs):
        super().__init__(*args, **kwargs)
        self.calls = 0
        self.points_seen = 0
        self.point_log = []
        self._gate = gate
        self._lock = threading.Lock()

    def run(self, points):
        with self._lock:
            self.calls += 1
            self.points_seen += len(points)
            self.point_log.extend((p.name, p.workload, p.seed)
                                  for p in points)
        if self._gate is not None:
            assert self._gate.wait(timeout=60), "test gate never released"
        return super().run(points)


def gated_point_batch(payload):
    """Fabric runner for the crash-recovery test: marks which worker
    process started the job, then holds it until the release file
    appears (so the test can kill a worker mid-batch at a known point).
    Module-level so it pickles under any start method."""
    from repro.harness.fabric import run_point_batch

    gate_dir = os.environ.get("REPRO_TEST_FABRIC_GATE")
    if gate_dir:
        marker = os.path.join(
            gate_dir, f"started-{os.getpid()}-{time.time_ns()}")
        with open(marker, "w", encoding="utf-8"):
            pass
        release = os.path.join(gate_dir, "release")
        while not os.path.exists(release):
            time.sleep(0.01)
    return run_point_batch(payload)


class GatedFabricExecutor(Executor):
    """Executor whose fabric workers run the gated job runner."""

    def _ensure_pool(self):
        from repro.harness import fabric

        with self._pool_lock:
            if self._pool is None:
                self._pool = fabric.WorkerPool(
                    self.jobs, runner=gated_point_batch)
            return self._pool


@pytest.fixture
def sock_dir():
    """A short-lived directory with a short path (unix socket paths are
    length-limited; pytest's tmp_path can exceed it)."""
    path = tempfile.mkdtemp(prefix="espsvc-")
    yield path
    shutil.rmtree(path, ignore_errors=True)


def service(sock_dir, executor, cache_dir=None, **config):
    if executor is None:
        cache = (RunCache(root=cache_dir) if cache_dir
                 else RunCache(enabled=False))
        executor = CountingExecutor(jobs=1, cache=cache)
    config.setdefault("bind", ("unix", f"{sock_dir}/svc.sock"))
    return ServiceThread(ServiceConfig(**config), executor=executor,
                         settings=QUICK)


def connect(handle):
    address = handle.address
    spec = (f"unix:{address[1]}" if address[0] == "unix"
            else f"{address[1]}:{address[2]}")
    return ServiceClient.connect(spec, timeout=CLIENT_TIMEOUT)


def canonical(payload):
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def reference_payloads(archs, workloads, seeds):
    """Direct serial executor run of the same grid, no caches."""
    from repro.common.config import scaled_config

    executor = Executor(jobs=1, cache=RunCache(enabled=False))
    points = grid_points(scaled_config(QUICK.capacity_factor), QUICK,
                         archs, workloads, seeds)
    return [r.to_dict() for r in executor.run(points)]


# -- protocol unit tests ------------------------------------------------------

class TestProtocol:
    def test_encode_decode_round_trip(self):
        message = {"cmd": "submit", "architectures": ["esp-nuca"],
                   "priority": 3}
        assert proto.decode(proto.encode(message).strip()) == message

    def test_decode_rejects_non_object(self):
        with pytest.raises(proto.ProtocolError):
            proto.decode(b"[1, 2, 3]")
        with pytest.raises(proto.ProtocolError):
            proto.decode(b"not json at all")

    def test_unknown_command_rejected(self):
        with pytest.raises(proto.ProtocolError, match="unknown cmd"):
            proto.validate_request({"cmd": "reboot"})

    def test_newer_protocol_version_rejected(self):
        with pytest.raises(proto.ProtocolError, match="version"):
            proto.validate_request(
                {"cmd": "ping", "version": proto.PROTOCOL_VERSION + 1})

    def test_check_int_rejects_bool_and_below_minimum(self):
        with pytest.raises(proto.ProtocolError):
            proto.check_int({"n": True}, "n", 1, 0)
        with pytest.raises(proto.ProtocolError):
            proto.check_int({"n": -1}, "n", 1, 0)
        assert proto.check_int({}, "n", 5, 0) == 5

    def test_parse_address_forms(self):
        assert proto.parse_address("unix:/tmp/x.sock") == \
            ("unix", "/tmp/x.sock")
        assert proto.parse_address("example.org:1234") == \
            ("tcp", "example.org", 1234)
        assert proto.parse_address(":9000") == ("tcp", "127.0.0.1", 9000)
        with pytest.raises(ValueError):
            proto.parse_address("host:not-a-port")
        with pytest.raises(ValueError):
            proto.parse_address("unix:")


# -- scheduler unit tests -----------------------------------------------------

class TestScheduler:
    def _points(self, n):
        from repro.common.config import scaled_config

        config = scaled_config(QUICK.capacity_factor)
        return [(p.key, p) for p in grid_points(
            config, QUICK, ARCHS, WORKLOADS, range(n))][:n]

    def test_admission_is_all_or_nothing(self):
        import asyncio

        from repro.service.queue import Scheduler

        async def scenario():
            scheduler = Scheduler(limit=3)
            pts = self._points(5)
            tasks, coalesced = scheduler.admit(pts[:2])
            assert len(tasks) == 2 and coalesced == 0
            with pytest.raises(QueueFullError):
                scheduler.admit(pts[2:5])  # needs 3 slots, 1 free
            assert scheduler.backlog == 2  # untouched by the reject
            # resubmitting the same keys coalesces without using slots
            tasks2, coalesced2 = scheduler.admit(pts[:2])
            assert coalesced2 == 2
            assert tasks2.keys() == tasks.keys()
            assert scheduler.backlog == 2

        asyncio.run(scenario())

    def test_batch_pop_respects_priority_then_order(self):
        import asyncio

        from repro.service.queue import Scheduler

        async def scenario():
            scheduler = Scheduler(limit=10)
            pts = self._points(4)
            scheduler.admit(pts[:2], priority=0)
            scheduler.admit(pts[2:4], priority=5)
            batch = await scheduler.next_batch(10)
            assert [t.key for t in batch] == \
                [k for k, _ in pts[2:4] + pts[:2]]

        asyncio.run(scenario())

    def test_release_drops_unwanted_queued_tasks(self):
        import asyncio

        from repro.service.queue import Scheduler

        async def scenario():
            scheduler = Scheduler(limit=10)
            pts = self._points(1)
            tasks, _ = scheduler.admit(pts)
            task = next(iter(tasks.values()))
            scheduler.release(task)
            assert scheduler.backlog == 0
            assert scheduler.inflight == 0
            scheduler.close()
            assert await scheduler.next_batch(10) is None

        asyncio.run(scenario())


# -- integration: concurrent clients ------------------------------------------

class TestConcurrentClients:
    def test_overlapping_grids_byte_identical_and_coalesced(self, sock_dir):
        """N=8 concurrent clients, overlapping grids, gate held so every
        duplicate is genuinely in-flight when it coalesces."""
        gate = threading.Event()
        executor = CountingExecutor(jobs=1, cache=RunCache(enabled=False),
                                    gate=gate)
        # Overlapping subsets: every client shares points with others.
        grids = [(ARCHS[i % 2:], WORKLOADS) for i in range(8)]
        requested = sum(len(a) * len(w) * len(SEEDS) for a, w in grids)
        collected = [None] * len(grids)

        with service(sock_dir, executor, workers=2, batch=4,
                     queue_limit=64) as handle:
            def run_client(i, archs, workloads):
                with connect(handle) as client:
                    reply = client.submit(archs, workloads, seeds=SEEDS,
                                          settings=SETTINGS_WIRE, wait=False)
                    end = None
                    for event in client.watch(reply["job"]):
                        end = event
                    assert end["event"] == "end" and end["state"] == "done"
                    collected[i] = end["results"]

            threads = [threading.Thread(target=run_client, args=(i, a, w))
                       for i, (a, w) in enumerate(grids)]
            for thread in threads:
                thread.start()
            # Everything submitted before any simulation completes.
            with connect(handle) as admin:
                deadline = 60
                while True:
                    status = admin.status()
                    pts = status["points"]
                    if pts["requested"] >= requested:
                        break
                    deadline -= 1
                    assert deadline > 0, f"submissions missing: {pts}"
                    time.sleep(0.05)
                assert pts["coalesced"] > 0
            gate.set()
            for thread in threads:
                thread.join(timeout=120)
                assert not thread.is_alive()

        # Coalescing: the executor saw each unique point once.
        unique = len({(a, w, s) for archs, wls in grids
                      for a in archs for w in wls for s in SEEDS})
        assert executor.points_seen == unique
        assert unique < requested

        # Byte-identical to a direct serial executor run of each grid.
        for (archs, workloads), results in zip(grids, collected):
            reference = reference_payloads(archs, workloads, SEEDS)
            assert [canonical(r) for r in results] == \
                [canonical(r) for r in reference]

    def test_tcp_transport(self, sock_dir):
        executor = CountingExecutor(jobs=1, cache=RunCache(enabled=False))
        with service(sock_dir, executor,
                     bind=("tcp", "127.0.0.1", 0)) as handle:
            with connect(handle) as client:
                assert client.ping()["pong"] is True
                reply = client.submit(["shared"], ["apache"], seeds=[7],
                                      settings=SETTINGS_WIRE, wait=True)
                assert reply["state"] == "done"
                result = payloads_to_results(reply["results"])[0]
                assert result.architecture == "shared"
                assert result.cycles > 0


# -- integration: cache fast path ---------------------------------------------

class TestCacheFastPath:
    def test_repeat_submission_never_reaches_a_worker(self, sock_dir):
        cache_dir = f"{sock_dir}/cache"
        executor = CountingExecutor(jobs=1, cache=RunCache(root=cache_dir))
        with service(sock_dir, executor) as handle:
            with connect(handle) as client:
                first = client.submit(["shared", "esp-nuca"], ["apache"],
                                      seeds=SEEDS, settings=SETTINGS_WIRE,
                                      wait=True)
                assert first["state"] == "done"
                executed = executor.points_seen
                assert executed == 4
                second = client.submit(["shared", "esp-nuca"], ["apache"],
                                       seeds=SEEDS, settings=SETTINGS_WIRE,
                                       wait=True)
                assert second["state"] == "done"
                assert second["cached"] == 4
                assert executor.points_seen == executed  # no worker touched
                assert [canonical(r) for r in second["results"]] == \
                    [canonical(r) for r in first["results"]]

    def test_cache_survives_service_restart(self, sock_dir):
        cache_dir = f"{sock_dir}/cache"
        with service(sock_dir, None, cache_dir=cache_dir) as handle:
            with connect(handle) as client:
                first = client.submit(["shared"], ["apache"], seeds=[7],
                                      settings=SETTINGS_WIRE, wait=True)
        executor = CountingExecutor(jobs=1, cache=RunCache(root=cache_dir))
        with service(sock_dir, executor) as handle:
            with connect(handle) as client:
                again = client.submit(["shared"], ["apache"], seeds=[7],
                                      settings=SETTINGS_WIRE, wait=True)
                assert again["cached"] == 1
                assert executor.calls == 0
                assert canonical(again["results"][0]) == \
                    canonical(first["results"][0])


# -- integration: backpressure and limits -------------------------------------

class TestBackpressure:
    def test_full_queue_rejects_with_typed_error(self, sock_dir):
        gate = threading.Event()
        executor = CountingExecutor(jobs=1, cache=RunCache(enabled=False),
                                    gate=gate)
        try:
            with service(sock_dir, executor, workers=1, batch=1,
                         queue_limit=2) as handle:
                with connect(handle) as client:
                    blocker = client.submit(["shared"], ["apache"],
                                            seeds=[1], wait=False,
                                            settings=SETTINGS_WIRE)
                    # Wait until the blocker occupies the worker, so the
                    # backlog below is exactly deterministic.
                    deadline = 100
                    while True:
                        snap = client.status(blocker["job"])
                        if snap["counts"]["running"] == 1:
                            break
                        deadline -= 1
                        assert deadline > 0
                        time.sleep(0.05)
                    client.submit(["shared"], ["apache"], seeds=[2],
                                  wait=False, settings=SETTINGS_WIRE)
                    client.submit(["shared"], ["apache"], seeds=[3],
                                  wait=False, settings=SETTINGS_WIRE)
                    with pytest.raises(ServiceError) as exc:
                        client.submit(["shared"], ["apache"], seeds=[4],
                                      wait=False, settings=SETTINGS_WIRE)
                    assert exc.value.code == "queue-full"
                    # The reject left the queue intact; coalescing onto
                    # queued work still succeeds (needs no new slot).
                    joined = client.submit(["shared"], ["apache"], seeds=[3],
                                           wait=False,
                                           settings=SETTINGS_WIRE)
                    assert joined["coalesced"] == 1
                    gate.set()
        finally:
            gate.set()

    def test_per_client_job_limit(self, sock_dir):
        gate = threading.Event()
        executor = CountingExecutor(jobs=1, cache=RunCache(enabled=False),
                                    gate=gate)
        try:
            with service(sock_dir, executor, workers=1, batch=1,
                         client_jobs=2, queue_limit=64) as handle:
                with connect(handle) as client:
                    for seed in (1, 2):
                        client.submit(["shared"], ["apache"], seeds=[seed],
                                      wait=False, settings=SETTINGS_WIRE)
                    with pytest.raises(ServiceError) as exc:
                        client.submit(["shared"], ["apache"], seeds=[3],
                                      wait=False, settings=SETTINGS_WIRE)
                    assert exc.value.code == "client-limit"
                    # A second connection has its own allowance.
                    with connect(handle) as other:
                        other.submit(["shared"], ["apache"], seeds=[3],
                                     wait=False, settings=SETTINGS_WIRE)
                    gate.set()
        finally:
            gate.set()

    def test_bad_requests_are_typed(self, sock_dir):
        with service(sock_dir, None) as handle:
            with connect(handle) as client:
                with pytest.raises(ServiceError) as exc:
                    client.submit(["no-such-arch"], ["apache"], seeds=[1])
                assert exc.value.code == "bad-request"
                with pytest.raises(ServiceError) as exc:
                    client.status(job="j999")
                assert exc.value.code == "unknown-job"
                with pytest.raises(ServiceError) as exc:
                    client.request({"cmd": "submit",
                                    "architectures": ["shared"],
                                    "workloads": ["apache"],
                                    "settings": {"bogus_knob": 3}})
                assert exc.value.code == "bad-request"


# -- integration: watch, cancel, drain ----------------------------------------

class TestLifecycle:
    def test_watch_streams_progress_then_results(self, sock_dir):
        with service(sock_dir, None) as handle:
            with connect(handle) as client:
                reply = client.submit(["shared", "private"], ["apache"],
                                      seeds=[7], settings=SETTINGS_WIRE,
                                      wait=False)
                events = list(client.watch(reply["job"]))
        assert events[-1]["event"] == "end"
        assert all(e["event"] == "progress" for e in events[:-1])
        done_counts = [e["counts"]["done"] for e in events[:-1]]
        assert done_counts == sorted(done_counts)  # monotonic progress
        results = events[-1]["results"]
        assert len(results) == 2
        # Results carry the full hierarchical registry snapshot.
        for payload in results:
            assert payload["stats"].get("l2")
            assert payload["stats"].get("noc")

    def test_cancel_drops_queued_points(self, sock_dir):
        gate = threading.Event()
        executor = CountingExecutor(jobs=1, cache=RunCache(enabled=False),
                                    gate=gate)
        try:
            with service(sock_dir, executor, workers=1, batch=1,
                         queue_limit=64) as handle:
                with connect(handle) as client:
                    blocker = client.submit(["shared"], ["apache"],
                                            seeds=[1], wait=False,
                                            settings=SETTINGS_WIRE)
                    victim = client.submit(["private"], ["apache"],
                                           seeds=[2], wait=False,
                                           settings=SETTINGS_WIRE)
                    cancelled = client.cancel(victim["job"])
                    assert cancelled["state"] == "cancelled"
                    gate.set()
                    end = list(client.watch(blocker["job"]))[-1]
                    assert end["state"] == "done"
                    drained = client.drain()
            assert drained["workers_alive"] == 0
            # The cancelled point never ran.
            assert ("private", "apache", 2) not in executor.point_log
        finally:
            gate.set()

    def test_drain_completes_with_zero_orphaned_workers(self, sock_dir):
        executor = CountingExecutor(jobs=1, cache=RunCache(enabled=False))
        with service(sock_dir, executor, workers=3) as handle:
            with connect(handle) as client:
                client.submit(["shared"], ["apache"], seeds=[5],
                              wait=True, settings=SETTINGS_WIRE)
                drained = client.drain()
            assert drained["drained"] is True
            assert drained["workers_alive"] == 0
            assert drained["executed_points"] == 1
            assert "cache" in drained
        # No simulation threads survive the drain.
        assert not [t for t in threading.enumerate()
                    if t.name.startswith("esp-nuca-sim")]

    def test_worker_crash_mid_batch_requeued_once_and_drains(
            self, sock_dir, tmp_path, monkeypatch):
        """Kill a simulation worker process mid-batch: the fabric
        requeues its job exactly once, the job completes on a
        surviving/replacement worker with correct results, and the
        drain barrier still resolves everything."""
        gate_dir = str(tmp_path / "gate")
        os.makedirs(gate_dir)
        monkeypatch.setenv("REPRO_TEST_FABRIC_GATE", gate_dir)

        def markers():
            return sorted(name for name in os.listdir(gate_dir)
                          if name.startswith("started-"))

        def wait_for(count, timeout=60):
            deadline = time.monotonic() + timeout
            while time.monotonic() < deadline:
                if len(markers()) >= count:
                    return True
                time.sleep(0.02)
            return False

        executor = GatedFabricExecutor(jobs=2, cache=RunCache(enabled=False))
        with service(sock_dir, executor, workers=1, batch=4) as handle:
            with connect(handle) as client:
                job = client.submit(["shared", "private"], ["apache"],
                                    seeds=[7], wait=False,
                                    settings=SETTINGS_WIRE)["job"]
                # two points -> two fabric jobs, one per worker process
                assert wait_for(2), "both workers should start a job"
                pids = {int(name.split("-")[1]) for name in markers()}
                assert len(pids) == 2
                status = client.status()
                assert status["procs"] == 2
                assert status["procs_busy"] == 2
                victim = min(pids)
                os.kill(victim, signal.SIGKILL)
                assert wait_for(3), "crashed job should restart"
                with open(os.path.join(gate_dir, "release"), "w",
                          encoding="utf-8"):
                    pass
                end = list(client.watch(job))[-1]
                assert end["state"] == "done"
                # byte-identical to a direct serial run despite the crash
                assert ([canonical(p) for p in end["results"]]
                        == [canonical(p) for p in reference_payloads(
                            ["shared", "private"], ["apache"], [7])])
                stats = executor.fabric_stats()
                assert stats["requeued"] == 1
                assert stats["crashed"] == 1
                drained = client.drain()
            assert drained["workers_alive"] == 0
        # the drain barrier tore the fabric down with the daemon
        assert executor.fabric_stats() is None

    def test_submissions_while_draining_get_typed_error(self, sock_dir):
        gate = threading.Event()
        executor = CountingExecutor(jobs=1, cache=RunCache(enabled=False),
                                    gate=gate)
        try:
            with service(sock_dir, executor, workers=1, batch=1) as handle:
                with connect(handle) as client:
                    client.submit(["shared"], ["apache"], seeds=[1],
                                  wait=False, settings=SETTINGS_WIRE)
                    drain_reply = {}
                    drainer = connect(handle)
                    thread = threading.Thread(
                        target=lambda: drain_reply.update(drainer.drain()))
                    thread.start()
                    deadline = 100
                    while not client.ping()["draining"]:
                        deadline -= 1
                        assert deadline > 0
                        time.sleep(0.05)
                    with pytest.raises(ServiceError) as exc:
                        client.submit(["shared"], ["apache"], seeds=[9],
                                      wait=False, settings=SETTINGS_WIRE)
                    assert exc.value.code == "draining"
                    gate.set()
                    thread.join(timeout=60)
                    drainer.close()
                    assert drain_reply.get("drained") is True
        finally:
            gate.set()


# -- event tracing + live gauges ----------------------------------------------

class TestTracingAndGauges:
    def test_snapshots_carry_queue_and_worker_gauges(self, sock_dir):
        with service(sock_dir, None, workers=1, batch=1) as handle:
            with connect(handle) as client:
                reply = client.submit(["shared"], ["apache"], seeds=[3],
                                      wait=True, settings=SETTINGS_WIRE)
                gauges = reply["gauges"]
                assert set(gauges) >= {"queue_backlog", "queue_inflight",
                                       "queue_limit", "workers_busy",
                                       "workers", "procs_busy", "procs"}
                assert gauges["queue_backlog"] == 0  # job is done
                assert gauges["workers"] == 1
                assert gauges["procs"] == 1  # simulation processes
                status = client.status()
                assert status["workers_busy"] == 0
                assert status["procs_busy"] == 0
                assert status["procs"] == 1
                # jobs=1 is the serial fallback: the fabric never starts
                assert status["fabric"] is None

    def test_watch_stream_includes_gauges(self, sock_dir):
        with service(sock_dir, None, workers=1, batch=1) as handle:
            with connect(handle) as client:
                job = client.submit(["shared"], ["apache"], seeds=[4],
                                    wait=False,
                                    settings=SETTINGS_WIRE)["job"]
                progress = [e for e in client.watch(job)
                            if e.get("event") == "progress"]
                assert progress
                assert all("gauges" in e for e in progress)

    def test_traced_submit_exports_valid_chrome_trace(self, sock_dir,
                                                      tmp_path, monkeypatch):
        from repro.obs import trace as obs
        from repro.obs.export import (events_of_category, span_names,
                                      validate_chrome)

        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "traces"))
        with service(sock_dir, None, workers=1, batch=1) as handle:
            with connect(handle) as client:
                reply = client.submit(["esp-nuca"], ["apache"], seeds=[5],
                                      wait=True, trace=True,
                                      settings=SETTINGS_WIRE)
                assert reply["state"] == "done"
                assert reply["trace"] is True
                assert reply.get("trace_error") is None
                path = reply["trace_path"]
        # The tracer was uninstalled when the job finished.
        assert obs.active() is obs.NULL_TRACER
        payload = json.loads(open(path).read())
        assert validate_chrome(payload) == []
        # Lifecycle spans + gauges counters on the service track.
        service_events = events_of_category(payload, "service")
        assert {e["name"] for e in service_events} >= \
            {"job admitted", "queue depth", "busy workers"}
        lifecycle = [e["name"] for e in service_events if e["ph"] == "X"]
        assert "running" in lifecycle
        # Sim-clock events from the worker's simulation made it in.
        assert events_of_category(payload, "l2")
        assert any(name.startswith("run esp-nuca/")
                   for name in span_names(payload))

    def test_one_traced_job_at_a_time(self, sock_dir, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "traces"))
        gate = threading.Event()
        executor = CountingExecutor(jobs=1, cache=RunCache(enabled=False),
                                    gate=gate)
        try:
            with service(sock_dir, executor, workers=1, batch=1) as handle:
                with connect(handle) as client:
                    first = client.submit(["shared"], ["apache"], seeds=[6],
                                          wait=False, trace=True,
                                          settings=SETTINGS_WIRE)
                    with pytest.raises(ServiceError) as exc:
                        client.submit(["shared"], ["apache"], seeds=[8],
                                      wait=False, trace=True,
                                      settings=SETTINGS_WIRE)
                    assert exc.value.code == "bad-request"
                    gate.set()
                    end = list(client.watch(first["job"]))[-1]
                    assert end["event"] == "end"
                    assert end["trace_path"]
                    # The slot is free again for a new traced job.
                    again = client.submit(["shared"], ["apache"], seeds=[9],
                                          wait=True, trace=True,
                                          settings=SETTINGS_WIRE)
                    assert again["trace_path"]
        finally:
            gate.set()


# -- protocol hardening: hostile and broken clients ---------------------------

class TestProtocolHardening:
    """A hostile or broken client must get a typed error (where a reply
    is still possible) and must never wedge a worker or kill the daemon:
    every test ends by proving a fresh connection still does real work."""

    def _raw_connect(self, handle):
        import socket

        address = handle.address
        if address[0] == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.connect(address[1])
        else:
            sock = socket.create_connection((address[1], address[2]))
        sock.settimeout(CLIENT_TIMEOUT)
        return sock

    def _still_serving(self, handle):
        with connect(handle) as client:
            assert client.ping()["pong"] is True
            reply = client.submit(["shared"], ["apache"], seeds=[77],
                                  wait=True, settings=SETTINGS_WIRE)
            assert reply["state"] == "done"

    def test_malformed_json_line_gets_typed_error(self, sock_dir):
        with service(sock_dir, None) as handle:
            sock = self._raw_connect(handle)
            try:
                sock.sendall(b'{"cmd": "submit", not json}\n')
                reply = json.loads(sock.makefile("rb").readline())
                assert reply["ok"] is False
                assert reply["error"]["code"] == "bad-request"
            finally:
                sock.close()
            self._still_serving(handle)

    def test_oversized_request_line_rejected_not_buffered(self, sock_dir):
        with service(sock_dir, None) as handle:
            sock = self._raw_connect(handle)
            try:
                # No newline anywhere: the server must give up once the
                # line exceeds MAX_LINE_BYTES instead of buffering
                # forever, reply with a typed error, and drop the
                # connection.
                blob = b" " * (proto.MAX_LINE_BYTES + 64)
                sock.sendall(blob)
                stream = sock.makefile("rb")
                reply = json.loads(stream.readline())
                assert reply["ok"] is False
                assert reply["error"]["code"] == "bad-request"
                assert "too long" in reply["error"]["message"]
                assert stream.readline() == b""  # server closed it
            finally:
                sock.close()
            self._still_serving(handle)

    def test_abrupt_disconnect_mid_watch_leaves_job_running(self, sock_dir):
        gate = threading.Event()
        executor = CountingExecutor(jobs=1, cache=RunCache(enabled=False),
                                    gate=gate)
        try:
            with service(sock_dir, executor, workers=1, batch=1) as handle:
                with connect(handle) as client:
                    job = client.submit(["shared"], ["apache"], seeds=[21],
                                        wait=False,
                                        settings=SETTINGS_WIRE)["job"]
                # A raw watcher that vanishes mid-stream (first snapshot
                # arrives, then the socket dies without a goodbye).
                sock = self._raw_connect(handle)
                stream = sock.makefile("rb")
                sock.sendall(json.dumps(
                    {"cmd": "watch", "job": job}).encode() + b"\n")
                first = json.loads(stream.readline())
                assert first["event"] == "progress"
                sock.close()  # abrupt: no unsubscribe, mid-subscription
                gate.set()
                # The job is unaffected and a healthy client still sees
                # it complete with results.
                with connect(handle) as client:
                    end = list(client.watch(job))[-1]
                    assert end["event"] == "end"
                    assert end["state"] == "done"
                    assert len(end["results"]) == 1
                self._still_serving(handle)
        finally:
            gate.set()
