"""Shadow-tag dynamic partitioning (the Figure 4 costly baseline)."""

from repro.cache.bank import CacheBank
from repro.cache.block import BlockClass, CacheBlock
from repro.cache.shadow import ShadowTagPartition


def entry(addr, cls, owner=0):
    return CacheBlock(block=addr, cls=cls, owner=owner, tokens=1)


def make_bank(ways=4):
    policy = ShadowTagPartition(ways=ways, shadow_depth=4)
    return CacheBank(0, num_sets=2, ways=ways, policy=policy), policy


class TestLearning:
    def test_private_shadow_hit_grows_private_target(self):
        bank, policy = make_bank()
        state = policy._state(0, 0)
        start = state.target_private
        # Evict a private block, then miss on it again.
        for i in range(4):
            bank.allocate(0, entry(i, BlockClass.PRIVATE))
        _, evicted = bank.allocate(0, entry(10, BlockClass.PRIVATE))
        assert evicted is not None
        policy.observe_miss(0, 0, evicted.block, BlockClass.PRIVATE)
        assert state.target_private == start + 1

    def test_shared_shadow_hit_shrinks_private_target(self):
        bank, policy = make_bank()
        state = policy._state(0, 0)
        start = state.target_private
        for i in range(4):
            bank.allocate(0, entry(i, BlockClass.SHARED, owner=-1))
        _, evicted = bank.allocate(0, entry(20, BlockClass.SHARED, owner=-1))
        policy.observe_miss(0, 0, evicted.block, BlockClass.SHARED)
        assert state.target_private == start - 1

    def test_unknown_miss_changes_nothing(self):
        bank, policy = make_bank()
        state = policy._state(0, 0)
        start = state.target_private
        policy.observe_miss(0, 0, 0x999, BlockClass.PRIVATE)
        assert state.target_private == start

    def test_targets_bounded(self):
        bank, policy = make_bank()
        state = policy._state(0, 0)
        state.target_private = 3
        state.private_tags.extend(range(100, 108))
        for b in range(100, 108):
            policy.observe_miss(0, 0, b, BlockClass.PRIVATE)
        assert state.target_private <= 3  # ways - 1


class TestReplacementBias:
    def test_evicts_from_over_target_class(self):
        bank, policy = make_bank()
        state = policy._state(0, 0)
        state.target_private = 1
        for i in range(3):
            bank.allocate(0, entry(i, BlockClass.PRIVATE))
        bank.allocate(0, entry(10, BlockClass.SHARED, owner=-1))
        _, evicted = bank.allocate(0, entry(11, BlockClass.SHARED, owner=-1))
        assert evicted.cls is BlockClass.PRIVATE  # private over target

    def test_per_set_state_isolation(self):
        bank, policy = make_bank()
        a = policy._state(0, 0)
        b = policy._state(0, 1)
        a.target_private = 1
        assert b.target_private != 1 or a is not b
