"""Metrics: aggregation, normalization, decomposition, SimResult math."""

import pytest

from repro.metrics.decomposition import COMPONENT_ORDER, decompose, total_access_time
from repro.metrics.performance import AggregateResult, normalize_map, variance_of
from repro.sim.request import Supplier
from repro.sim.results import SimResult


def result(cycles=1000, instructions=2000, accesses=100, **suppliers):
    r = SimResult(architecture="x", workload="w", cycles=cycles,
                  instructions=instructions)
    for name, (count, total) in suppliers.items():
        s = Supplier[name]
        r.supplier_count[s] = count
        r.supplier_cycles[s] = total
        r.memory_accesses += count
    while r.memory_accesses < accesses:
        r.record_access(Supplier.L1_LOCAL, 3)
    return r


class TestSimResult:
    def test_performance_is_ipc(self):
        r = result(cycles=1000, instructions=2500)
        assert r.performance == 2.5
        assert r.ipc == r.performance

    def test_empty_run_rejected(self):
        with pytest.raises(ValueError):
            _ = SimResult().performance

    def test_average_access_time(self):
        r = SimResult()
        r.record_access(Supplier.L1_LOCAL, 3)
        r.record_access(Supplier.OFFCHIP, 397)
        assert r.average_access_time == 200.0

    def test_component_decomposition_sums(self):
        r = SimResult()
        r.record_access(Supplier.L1_LOCAL, 3)
        r.record_access(Supplier.L2_SHARED, 37)
        r.record_access(Supplier.OFFCHIP, 400)
        total = sum(r.access_time_component(s) for s in Supplier)
        assert total == pytest.approx(r.average_access_time)

    def test_onchip_latency_excludes_offchip(self):
        r = SimResult()
        r.record_access(Supplier.L1_LOCAL, 4)
        r.record_access(Supplier.L2_SHARED, 36)
        r.record_access(Supplier.OFFCHIP, 1000)
        assert r.onchip_latency == 20.0

    def test_offchip_per_kilo_access(self):
        r = SimResult()
        for _ in range(99):
            r.record_access(Supplier.L1_LOCAL, 3)
        r.record_access(Supplier.OFFCHIP, 400)
        r.offchip_demand = 1
        assert r.offchip_accesses_per_kilo_access == pytest.approx(10.0)

    def test_l2_miss_rate(self):
        r = SimResult(l2_demand_lookups=100, l2_hits=80)
        assert r.l2_miss_rate == pytest.approx(0.2)


class TestAggregateResult:
    def test_mean_over_runs(self):
        agg = AggregateResult("a", "w")
        agg.add(result(cycles=1000, instructions=1000))
        agg.add(result(cycles=1000, instructions=3000))
        assert agg.performance == 2.0

    def test_ci_zero_for_single_run(self):
        agg = AggregateResult("a", "w")
        agg.add(result())
        assert agg.performance_ci95 == 0.0

    def test_normalized_to(self):
        a = AggregateResult("a", "w")
        a.add(result(cycles=500, instructions=1000))
        b = AggregateResult("b", "w")
        b.add(result(cycles=1000, instructions=1000))
        assert a.normalized_to(b) == 2.0


class TestHelpers:
    def test_normalize_map(self):
        base = AggregateResult("shared", "w")
        base.add(result(cycles=1000, instructions=1000))
        fast = AggregateResult("esp", "w")
        fast.add(result(cycles=500, instructions=1000))
        norm = normalize_map({"shared": base, "esp": fast}, "shared")
        assert norm == {"shared": 1.0, "esp": 2.0}

    def test_variance_of(self):
        assert variance_of([1.0, 1.0, 1.0]) == 0.0
        assert variance_of([0.0, 2.0]) == 1.0

    def test_decompose_orders_components(self):
        agg = AggregateResult("a", "w")
        agg.add(result())
        comps = decompose(agg)
        assert list(comps) == COMPONENT_ORDER
        assert total_access_time(comps) == pytest.approx(
            agg.average_access_time)
