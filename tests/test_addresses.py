"""Bit-exact shared/private address interpretation (Figure 1b)."""

import pytest
from hypothesis import given, strategies as st

from repro.common.addresses import AddressMap
from repro.common.config import SystemConfig

AMAP = AddressMap(SystemConfig())
BLOCKS = st.integers(min_value=0, max_value=(1 << 42) - 1)
CORES = st.integers(min_value=0, max_value=7)


class TestSharedInterpretation:
    def test_bank_is_low_bits(self):
        assert AMAP.shared_bank(0b10111) == 0b10111
        assert AMAP.shared_bank((1 << 20) | 5) == 5

    def test_index_above_bank_bits(self):
        block = (3 << 5) | 1  # index 3, bank 1
        assert AMAP.shared_index(block) == 3
        assert AMAP.shared_bank(block) == 1

    def test_tag_above_index(self):
        block = (7 << 13) | (3 << 5) | 1
        assert AMAP.shared_tag(block) == 7

    @given(BLOCKS)
    def test_shared_fields_reassemble(self, block):
        reassembled = (AMAP.shared_tag(block) << 13) \
            | (AMAP.shared_index(block) << 5) | AMAP.shared_bank(block)
        assert reassembled == block


class TestPrivateInterpretation:
    def test_private_banks_partition_the_array(self):
        seen = []
        for core in range(8):
            banks = AMAP.private_banks(core)
            assert len(banks) == 4
            seen.extend(banks)
        assert sorted(seen) == list(range(32))

    def test_owner_of_bank_inverts_private_banks(self):
        for core in range(8):
            for bank in AMAP.private_banks(core):
                assert AMAP.owner_of_bank(bank) == core

    @given(BLOCKS, CORES)
    def test_private_bank_in_core_partition(self, block, core):
        assert AMAP.private_bank(block, core) in AMAP.private_banks(core)

    @given(BLOCKS, CORES)
    def test_private_fields_reassemble(self, block, core):
        local = AMAP.private_bank(block, core) - core * 4
        reassembled = (AMAP.private_tag(block) << 10) \
            | (AMAP.private_index(block) << 2) | local
        assert reassembled == block

    @given(BLOCKS)
    def test_private_tag_is_p_bits_bigger(self, block):
        # Section 2.1: the private tag is p bits longer than the shared.
        assert AMAP.private_tag(block) >> 3 == AMAP.shared_tag(block) >> 0 \
            or AMAP.private_tag(block).bit_length() \
            <= AMAP.shared_tag(block).bit_length() + 3

    @given(BLOCKS)
    def test_same_block_generally_differs_between_maps(self, block):
        # The two interpretations are distinct functions; they may
        # coincide for particular blocks but must agree on identity.
        assert AMAP.shared_bank(block) < 32
        assert AMAP.private_index(block) < 256


class TestBlockAddressing:
    def test_block_address_strips_byte_offset(self):
        assert AMAP.block_address(0x1FFF) == 0x1FFF >> 6

    @given(BLOCKS)
    def test_block_base_roundtrip(self, block):
        assert AMAP.block_address(AMAP.block_base(block)) == block

    def test_l1_index_modulo(self):
        assert AMAP.l1_index(130, 128) == 2
