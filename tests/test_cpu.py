"""Core timing model: issue width, MLP limit, window limit, dep loads."""

from repro.common.config import CoreConfig
from repro.sim.cpu import CoreModel, TraceKind


def core(window=64, mlp=16, width=4):
    return CoreModel(0, CoreConfig(window_size=window, max_outstanding=mlp,
                                   issue_width=width))


class TestGapTiming:
    def test_issue_width_ipc(self):
        c = core(width=4)
        c.advance_gap(8)
        assert c.clock == 2
        assert c.instructions == 8

    def test_ceiling_division(self):
        c = core(width=4)
        c.advance_gap(5)
        assert c.clock == 2

    def test_zero_gap_free(self):
        c = core()
        c.advance_gap(0)
        assert c.clock == 0 and c.instructions == 0


class TestMlpLimit:
    def test_loads_overlap_up_to_limit(self):
        c = core(mlp=2, window=1000)
        c.complete_memory(TraceKind.LOAD, 100)
        c.complete_memory(TraceKind.LOAD, 100)
        assert c.clock == 0  # both in flight, no stall yet
        c.complete_memory(TraceKind.LOAD, 150)
        # Third load needed a slot: stalled until one completed at 100.
        assert c.clock == 100

    def test_slots_freed_by_completion(self):
        c = core(mlp=1, window=1000)
        c.complete_memory(TraceKind.LOAD, 10)
        c.advance_gap(80)  # clock reaches 20, load completed
        c.complete_memory(TraceKind.LOAD, 30)
        assert c.outstanding == 1


class TestWindowLimit:
    def test_window_blocks_run_ahead(self):
        c = core(window=4, mlp=16)
        c.complete_memory(TraceKind.LOAD, 1000)  # instr 1
        c.advance_gap(10)  # would run 10 instructions ahead
        assert c.clock >= 1000  # stalled on the window

    def test_within_window_no_stall(self):
        c = core(window=64, mlp=16)
        c.complete_memory(TraceKind.LOAD, 1000)
        c.advance_gap(10)
        assert c.clock < 1000


class TestDependentLoads:
    def test_dep_load_serializes(self):
        c = core()
        c.complete_memory(TraceKind.DEP_LOAD, 500)
        assert c.clock == 500
        assert c.outstanding == 0

    def test_regular_load_does_not(self):
        c = core()
        c.complete_memory(TraceKind.LOAD, 500)
        assert c.clock == 0


class TestDrain:
    def test_drain_waits_for_all(self):
        c = core()
        c.complete_memory(TraceKind.LOAD, 123)
        c.complete_memory(TraceKind.STORE, 456)
        c.drain()
        assert c.clock == 456
        assert c.outstanding == 0

    def test_stall_cycles_accounted(self):
        c = core(mlp=1)
        c.complete_memory(TraceKind.LOAD, 100)
        c.complete_memory(TraceKind.LOAD, 200)
        assert c.stall_cycles >= 100
