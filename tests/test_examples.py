"""Examples: compile and structural checks (full runs are minutes-long;
the CI-level check is that they parse, import and expose main())."""

import ast
import importlib.util
import pathlib

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))


def test_at_least_four_examples_exist():
    assert len(EXAMPLES) >= 4
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_parses_and_has_main(path):
    tree = ast.parse(path.read_text())
    functions = {node.name for node in ast.walk(tree)
                 if isinstance(node, ast.FunctionDef)}
    assert "main" in functions
    # Every example is documented.
    assert ast.get_docstring(tree)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_imports_cleanly(path):
    """Import the module without executing main() (guarded by
    __name__ == '__main__')."""
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert callable(module.main)
