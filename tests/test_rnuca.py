"""R-NUCA-lite: page-grained classification on the SP-NUCA machinery."""

import pytest

from repro.architectures.rnuca import PageBitDirectory, RNucaLite
from repro.core.private_bit import Classification
from repro.sim.system import CmpSystem

from tests.util import access, tiny_config

from tests.test_arch_private import evict_from_l1


def build_rnuca(page_blocks=4):
    config = tiny_config()
    arch = RNucaLite(config, page_blocks=page_blocks)
    return CmpSystem(config, arch, check_tokens=True), arch


class TestPageDirectory:
    def test_page_size_validation(self):
        with pytest.raises(ValueError):
            PageBitDirectory(page_blocks=3)

    def test_blocks_of_a_page_share_classification(self):
        d = PageBitDirectory(page_blocks=4)
        d.on_arrival(0x100, core=2)
        assert d.classify(0x101) is Classification.PRIVATE
        assert d.owner(0x103) == 2
        assert d.classify(0x104) is Classification.ABSENT  # next page

    def test_second_block_arrival_keeps_page_owner(self):
        d = PageBitDirectory(page_blocks=4)
        d.on_arrival(0x100, core=2)
        d.on_arrival(0x101, core=2)  # same page: no error, same owner
        assert d.owner(0x100) == 2

    def test_one_shared_touch_demotes_the_whole_page(self):
        d = PageBitDirectory(page_blocks=4)
        d.on_arrival(0x100, core=2)
        assert d.note_access(0x102, core=5)
        assert d.classify(0x101) is Classification.SHARED

    def test_page_survives_until_last_block_leaves(self):
        d = PageBitDirectory(page_blocks=4)
        d.on_arrival(0x100, 2)
        d.on_arrival(0x101, 2)
        d.on_left_chip(0x100)
        assert d.classify(0x103) is Classification.PRIVATE
        d.on_left_chip(0x101)
        assert d.classify(0x103) is Classification.ABSENT


class TestArchitecture:
    def test_same_page_blocks_stay_private_for_owner(self):
        system, arch = build_rnuca()
        access(system, 3, 0x200)
        access(system, 3, 0x201)
        assert arch.classifier.classify(0x201) is Classification.PRIVATE

    def test_foreign_touch_demotes_sibling_blocks(self):
        """The coarse-grain cost: one shared block drags its page."""
        system, arch = build_rnuca()
        access(system, 3, 0x200)
        access(system, 3, 0x201)
        access(system, 6, 0x200)  # demotes the page
        assert arch.classifier.classify(0x201) is Classification.SHARED
        # Core 3's writeback of the *untouched-by-others* sibling now
        # goes to the shared bank.
        evict_from_l1(system, 3, 0x201)
        sb = system.amap.shared_bank(0x201)
        entry = arch.banks[sb].peek(system.amap.shared_index(0x201), 0x201)
        assert entry is not None

    def test_runs_clean_end_to_end(self):
        system, arch = build_rnuca()
        for i in range(150):
            access(system, i % 8, 0x300 + (i * 7) % 96,
                   write=(i % 6 == 0), t=i * 3)
        system.check_invariants()

    def test_no_helping_blocks(self):
        from repro.cache.block import BlockClass
        system, arch = build_rnuca()
        for i in range(100):
            access(system, i % 4, 0x400 + i, t=i * 2)
        for bank in arch.banks:
            for cache_set in bank.sets:
                assert all(not e.is_helping
                           for e in cache_set.valid_blocks())
