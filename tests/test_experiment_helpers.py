"""Unit coverage of the experiment-module helpers (no simulation)."""

import pytest

from repro.harness import experiments as ex
from repro.metrics.performance import AggregateResult
from repro.sim.results import SimResult


class FakeRunner:
    """Serves canned performance values instead of simulating."""

    def __init__(self, perf):
        self._perf = perf  # {(arch, workload): value}

    def aggregate(self, arch, workload):
        agg = AggregateResult(arch, workload)
        result = SimResult(architecture=arch, workload=workload,
                           cycles=1000,
                           instructions=int(1000 * self._perf[(arch, workload)]))
        agg.add(result)
        return agg


class TestNormalizationHelpers:
    def test_normalized_series(self):
        runner = FakeRunner({("shared", "w"): 1.0, ("esp-nuca", "w"): 1.3})
        values = ex._normalized(runner, "esp-nuca", "shared", ["w"])
        assert values == [pytest.approx(1.3)]

    def test_with_gmean_appends(self):
        values = ex._with_gmean([1.0, 4.0])
        assert values[-1] == pytest.approx(2.0)
        assert len(values) == 3

    def test_cc_aggregation(self):
        perf = {("shared", "w"): 1.0}
        for name, v in zip(ex.CC_VARIANTS, (0.8, 1.0, 1.2, 1.4)):
            perf[(name, "w")] = v
        cc = ex._cc_normalized(FakeRunner(perf), "shared", ["w"])
        assert cc["cc-avg"] == [pytest.approx(1.1)]
        assert cc["cc-best"] == [pytest.approx(1.4)]
        assert cc["cc-worst"] == [pytest.approx(0.8)]


class TestWorkloadLists:
    def test_figure_axes_cover_table1(self):
        assert len(ex.TRANSACTIONAL) == 4
        assert len(ex.NAS) == 8
        assert len(ex.MULTIPROGRAMMED) == 10
        assert len(ex.FIG45_WORKLOADS) == 12

    def test_main_families(self):
        assert "esp-nuca" in ex.MAIN_FAMILIES
        assert "cc-avg" in ex.MAIN_FAMILIES
