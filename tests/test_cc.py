"""Directed tests of Cooperative Caching: spilling, 1-chance
forwarding, replication-aware replacement, CCE indirection."""

from repro.architectures.cc import CooperativeCaching
from repro.cache.block import BlockClass
from repro.sim.request import Supplier
from repro.sim.system import CmpSystem

from tests.util import access, build, tiny_config

from tests.test_arch_private import evict_from_l1


def build_cc(cooperation):
    config = tiny_config()
    arch = CooperativeCaching(config, cooperation=cooperation)
    return CmpSystem(config, arch, check_tokens=True), arch


def overflow_partition(system, core, count, start_tag=1):
    """Fill one private set of ``core`` past associativity."""
    amap = system.amap
    blocks, tag = [], start_tag
    while len(blocks) < count:
        candidate = (tag << 5) | 0b00100
        if (amap.private_index(candidate) == 1
                and amap.private_bank(candidate, core)
                == amap.private_banks(core)[0]):
            blocks.append(candidate)
        tag += 1
    for b in blocks:
        access(system, core, b)
        evict_from_l1(system, core, b)
    return blocks


class TestSpilling:
    def test_no_spill_at_probability_zero(self):
        system, arch = build_cc(0.0)
        overflow_partition(system, 0, system.config.l2.assoc + 3)
        assert arch.spills == 0

    def test_spill_at_probability_one(self):
        system, arch = build_cc(1.0)
        blocks = overflow_partition(system, 0, system.config.l2.assoc + 3)
        assert arch.spills >= 1
        spilled = [h for b in blocks for h in system.ledger.l2_holdings(b)
                   if h.entry.meta.get("spilled")]
        assert spilled
        for holding in spilled:
            host = system.amap.owner_of_bank(holding.bank_id)
            assert host != 0
            assert holding.entry.cls is BlockClass.VICTIM
            assert holding.entry.owner == 0

    def test_owner_finds_spilled_block_remotely(self):
        system, arch = build_cc(1.0)
        blocks = overflow_partition(system, 0, system.config.l2.assoc + 3)
        spilled_blocks = [b for b in blocks
                          for h in system.ledger.l2_holdings(b)
                          if h.entry.meta.get("spilled")]
        out = access(system, 0, spilled_blocks[0])
        assert out.supplier is Supplier.L2_REMOTE
        assert arch.spill_hits >= 1

    def test_one_chance_forwarding(self):
        """A spilled block is never re-spilled (N = 1)."""
        system, arch = build_cc(1.0)
        from repro.cache.block import CacheBlock
        entry = CacheBlock(block=0x4420, cls=BlockClass.VICTIM, owner=0,
                           tokens=4)
        entry.meta["spilled"] = True
        system.ledger.take_from_memory(0x4420, 4)
        spills_before = arch.spills
        arch.on_l2_eviction(8, 0, entry, tokens=4, cascade=False)
        assert arch.spills == spills_before
        # Tokens returned to memory (block fully off chip).
        assert not system.ledger.on_chip(0x4420)

    def test_invalid_probability_rejected(self):
        import pytest
        with pytest.raises(ValueError):
            CooperativeCaching(tiny_config(), cooperation=1.5)


class TestNaming:
    def test_variant_names(self):
        assert CooperativeCaching(tiny_config(), 0.0).name == "cc00"
        assert CooperativeCaching(tiny_config(), 0.3).name == "cc30"
        assert CooperativeCaching(tiny_config(), 1.0).name == "cc100"


class TestReplicationAwareReplacement:
    def test_replicated_block_evicted_before_singlets(self):
        system, arch = build_cc(0.0)
        amap = system.amap
        # One replicated block (copy also in core 1's partition via the
        # sharing path) plus singlets filling the set.
        shared_block = None
        tag = 1
        while shared_block is None:
            candidate = (tag << 5) | 0b00100
            if (amap.private_index(candidate) == 1
                    and amap.private_bank(candidate, 0)
                    == amap.private_banks(0)[0]):
                shared_block = candidate
            tag += 1
        access(system, 0, shared_block)
        evict_from_l1(system, 0, shared_block)
        access(system, 1, shared_block)       # cache-to-cache read
        evict_from_l1(system, 1, shared_block)  # replicated in tile 1
        # Now fill core 0's same set with singlets; replicated block
        # must be the preferred victim even when recently used.
        access(system, 0, shared_block)  # make it MRU again
        evict_from_l1(system, 0, shared_block)
        blocks = overflow_partition(system, 0, system.config.l2.assoc,
                                    start_tag=100)
        bank0 = amap.private_banks(0)[0]
        assert arch.banks[bank0].peek(1, shared_block) is None


class TestCceIndirection:
    def test_remote_supply_pays_directory_penalty(self):
        system, arch = build_cc(0.0)
        block = 0x5100
        access(system, 0, block)
        evict_from_l1(system, 0, block)
        plain = build("private")
        access(plain, 0, block)
        evict_from_l1(plain, 0, block)
        t_cc = access(system, 7, block).complete
        t_plain = access(plain, 7, block).complete
        assert t_cc >= t_plain + 2 * system.config.noc.hop_latency
