"""The worker fabric and the shard-aware run cache.

Pins the tentpole contract of the process-based execution substrate:

* a :class:`WorkerPool` really fans jobs out over distinct OS
  processes, and the executor's fabric path returns results
  byte-identical to the serial path;
* a worker killed mid-job is detected, replaced, and its job requeued
  **exactly once** — a second crash fails the job with
  :class:`WorkerCrashError` instead of retrying forever; deterministic
  runner exceptions are never requeued;
* the shard map reproduces the historical ``key[:2]`` directory layout
  at the default shard count (no silent cache invalidation), validates
  its knobs, and the read-through :class:`ShardIndex` lets one process
  discover entries another process committed;
* two processes writing the same key concurrently never produce torn
  reads or leftover ``.tmp.<pid>`` files (satellite: concurrent cache
  writers).
"""

import glob
import hashlib
import os
import signal
import time

import pytest

from repro.common.config import scaled_config
from repro.harness.cli import main as cli_main
from repro.harness.executor import Executor, RunPoint, simulate_point
from repro.harness.fabric import (RemoteJobError, WorkerCrashError,
                                  WorkerPool, default_workers, mp_context,
                                  run_point_batch)
from repro.harness.runcache import (DEFAULT_SHARDS, MAX_SHARDS, RunCache,
                                    cache_generation, cache_key,
                                    default_shards, shard_chars, shard_name,
                                    shard_of)
from repro.harness.runner import ExperimentRunner, RunSettings
from repro.obs import trace as obs

QUICK = RunSettings(capacity_factor=8, refs_per_core=400,
                    warmup_refs_per_core=100, num_seeds=2)

POOL_TIMEOUT = 60


def _wait_for(predicate, timeout=POOL_TIMEOUT, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


# -- module-level runners (must be picklable under spawn) ---------------------

def echo_runner(payload):
    return {"value": payload["value"] * 2, "pid": os.getpid()}


def boom_runner(payload):
    if payload.get("boom"):
        raise ValueError(f"deterministic failure {payload['value']}")
    return payload["value"]


def gate_runner(payload):
    """Write a pid marker, then hold the job until the release file
    appears — lets the test pin which worker runs what, and kill it at
    a known point."""
    gate_dir = payload["dir"]
    marker = os.path.join(gate_dir, f"started-{os.getpid()}-{time.time_ns()}")
    with open(marker, "w", encoding="utf-8"):
        pass
    release = os.path.join(gate_dir, payload.get("release", "release"))
    while not os.path.exists(release):
        time.sleep(0.01)
    return {"value": payload["value"], "pid": os.getpid()}


def _markers(gate_dir):
    out = []
    for name in sorted(os.listdir(gate_dir)):
        if name.startswith("started-"):
            out.append((int(name.split("-")[1]), name))
    return out


def hammer_put(root, key, result, rounds):
    """Concurrent-writer child: re-commit the same (key, result) pair
    as fast as possible."""
    cache = RunCache(root=root)
    for _ in range(rounds):
        cache.put(key, result)


# -- the worker pool ----------------------------------------------------------

class TestWorkerPool:
    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError, match="workers must be >= 1"):
            WorkerPool(0, runner=echo_runner)

    def test_batch_runs_in_worker_processes(self):
        pool = WorkerPool(2, runner=echo_runner)
        try:
            outcomes = pool.run_batch([{"value": v} for v in (1, 2, 3)])
            assert [value["value"] for value, _ in outcomes] == [2, 4, 6]
            for value, reported_pid in outcomes:
                assert value["pid"] == reported_pid
                assert reported_pid != os.getpid()
            stats = pool.stats()
            assert stats["completed"] == 3
            assert sum(stats["completed_by_pid"].values()) == 3
        finally:
            pool.close()

    def test_two_workers_run_concurrently_distinct_pids(self, tmp_path):
        """Both jobs gate open simultaneously => two distinct worker
        processes were executing at the same time (the deterministic
        form of the distinct-PID acceptance criterion)."""
        gate = str(tmp_path)
        pool = WorkerPool(2, runner=gate_runner)
        try:
            futures = [pool.submit({"dir": gate, "value": v})
                       for v in (1, 2)]
            assert _wait_for(lambda: len(_markers(gate)) == 2), \
                "both workers should pick up a job"
            pids = {pid for pid, _ in _markers(gate)}
            assert len(pids) == 2
            assert pool.busy == 2
            with open(os.path.join(gate, "release"), "w",
                      encoding="utf-8"):
                pass
            values = [f.result(timeout=POOL_TIMEOUT) for f in futures]
            assert {v["pid"] for v, _ in values} == pids
        finally:
            pool.close()

    def test_remote_exception_propagates_and_is_not_requeued(self):
        pool = WorkerPool(1, runner=boom_runner)
        try:
            with pytest.raises(RemoteJobError,
                               match="deterministic failure 9"):
                pool.run_batch([{"value": 1}, {"value": 9, "boom": True}])
            # deterministic failures burn no requeue budget and leave
            # the pool healthy
            stats = pool.stats()
            assert stats["requeued"] == 0
            assert stats["crashed"] == 0
            assert pool.run_batch([{"value": 5}]) == [(5, stats["alive"][0])]
        finally:
            pool.close()

    def test_crashed_worker_job_requeued_once_and_completes(self, tmp_path):
        gate = str(tmp_path)
        pool = WorkerPool(2, runner=gate_runner)
        try:
            future = pool.submit({"dir": gate, "value": 42})
            assert _wait_for(lambda: _markers(gate))
            first_pid = _markers(gate)[0][0]
            os.kill(first_pid, signal.SIGKILL)
            # the requeued attempt lands on a surviving/replacement
            # worker and writes a second marker
            assert _wait_for(lambda: len(_markers(gate)) == 2), \
                "crashed job should be requeued and restarted"
            with open(os.path.join(gate, "release"), "w",
                      encoding="utf-8"):
                pass
            value, pid = future.result(timeout=POOL_TIMEOUT)
            assert value["value"] == 42
            assert pid != first_pid
            stats = pool.stats()
            assert stats["requeued"] == 1
            assert stats["crashed"] == 1
            # the pool healed back to full strength
            assert _wait_for(lambda: len(pool.pids()) == 2)
        finally:
            pool.close()

    def test_second_crash_fails_the_job(self, tmp_path):
        gate = str(tmp_path)
        pool = WorkerPool(1, runner=gate_runner)
        try:
            future = pool.submit({"dir": gate, "value": 7})
            for attempt in (1, 2):
                assert _wait_for(lambda: len(_markers(gate)) == attempt), \
                    f"attempt {attempt} never started"
                os.kill(_markers(gate)[-1][0], signal.SIGKILL)
            with pytest.raises(WorkerCrashError, match="requeue-once"):
                future.result(timeout=POOL_TIMEOUT)
            assert pool.stats()["requeued"] == 1  # once, not twice
        finally:
            pool.close()

    def test_close_is_idempotent_and_rejects_new_work(self):
        pool = WorkerPool(1, runner=echo_runner)
        assert pool.run_batch([{"value": 1}])[0][0]["value"] == 2
        pool.close()
        pool.close()
        assert pool.pids() == []
        with pytest.raises(RuntimeError, match="closed"):
            pool.submit({"value": 2})

    def test_heartbeats_observed(self):
        pool = WorkerPool(1, runner=echo_runner, heartbeat=0.05)
        try:
            assert _wait_for(lambda: pool.stats()["heartbeat_age_s"])
            ages = pool.stats()["heartbeat_age_s"]
            assert set(ages) == set(pool.pids())
        finally:
            pool.close()


class TestDefaultWorkers:
    """Satellite: REPRO_WORKERS through the same env_int validation as
    REPRO_JOBS."""

    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_workers() == 3

    def test_malformed_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError, match="REPRO_WORKERS.*integer"):
            default_workers()

    def test_zero_and_negative_rejected(self, monkeypatch):
        for bad in ("0", "-2"):
            monkeypatch.setenv("REPRO_WORKERS", bad)
            with pytest.raises(ValueError, match="REPRO_WORKERS.*>= 1"):
                default_workers()

    def test_falls_back_to_jobs(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert default_workers() == 5

    def test_serve_workers_zero_is_a_clear_error(self, capsys):
        assert cli_main(["serve", "--workers", "0"]) == 2
        err = capsys.readouterr().err
        assert "--workers must be >= 1" in err


# -- the shard map ------------------------------------------------------------

def _fake_key(n):
    return hashlib.sha256(f"key-{n}".encode()).hexdigest()


class TestShardMap:
    def test_default_layout_matches_historical_key_prefix(self):
        cache = RunCache(root="unused", shards=DEFAULT_SHARDS)
        for n in range(64):
            key = _fake_key(n)
            assert cache.shard_dir(key) == key[:2]

    def test_shard_function_is_stable_and_in_range(self):
        for shards in (1, 2, 16, 256, 4096, MAX_SHARDS):
            seen = set()
            for n in range(128):
                idx = shard_of(_fake_key(n), shards)
                assert 0 <= idx < shards
                seen.add(idx)
                name = shard_name(idx, shards)
                assert len(name) == shard_chars(shards)
                assert int(name, 16) == idx
            if shards > 1:
                assert len(seen) > 1  # keys actually spread

    def test_shard_chars_never_below_two(self):
        assert shard_chars(1) == 2
        assert shard_chars(16) == 2
        assert shard_chars(256) == 2
        assert shard_chars(257) == 3
        assert shard_chars(4096) == 3

    def test_custom_shard_count_round_trips(self, tmp_path):
        cache = RunCache(root=str(tmp_path), shards=16)
        result = _quick_result(cache)
        key = _fake_key(1)
        cache.put(key, result)
        assert cache.get(key) == result
        shard = cache.shard_dir(key)
        assert len(shard) == 2
        assert os.path.isfile(os.path.join(
            str(tmp_path), cache_generation(), shard, f"{key}.json"))

    def test_invalid_shard_counts_rejected(self, tmp_path, monkeypatch):
        with pytest.raises(ValueError, match="shards"):
            RunCache(root=str(tmp_path), shards=0)
        with pytest.raises(ValueError, match="shards"):
            RunCache(root=str(tmp_path), shards=MAX_SHARDS + 1)
        monkeypatch.setenv("REPRO_CACHE_SHARDS", "lots")
        with pytest.raises(ValueError, match="REPRO_CACHE_SHARDS.*integer"):
            default_shards()
        monkeypatch.setenv("REPRO_CACHE_SHARDS", "0")
        with pytest.raises(ValueError, match="REPRO_CACHE_SHARDS.*>= 1"):
            default_shards()
        monkeypatch.setenv("REPRO_CACHE_SHARDS", str(MAX_SHARDS + 1))
        with pytest.raises(ValueError, match="REPRO_CACHE_SHARDS"):
            default_shards()

    def test_stats_report_shard_map(self, tmp_path):
        cache = RunCache(root=str(tmp_path))
        result = _quick_result(cache)
        for n in range(4):
            cache.put(_fake_key(n), result)
        stats = cache.stats()
        assert stats["shards"]["configured"] == DEFAULT_SHARDS
        populated = cache.shard_stats()
        assert stats["shards"]["populated"] == len(populated)
        assert sum(populated.values()) == 4
        hottest = stats["shards"]["hottest"]
        assert populated[hottest["shard"]] == hottest["entries"]

    def test_spec_round_trip(self, tmp_path):
        cache = RunCache(root=str(tmp_path), shards=32)
        rebuilt = RunCache.from_spec(cache.spec())
        assert rebuilt.root == cache.root
        assert rebuilt.shards == 32
        disabled = RunCache(enabled=False)
        assert disabled.spec() is None
        assert RunCache.from_spec(None).enabled is False


_RESULT_MEMO = {}


def _quick_result(cache_for_key=None):
    """One real SimResult (memoized — the content doesn't matter, the
    bytes do)."""
    if "r" not in _RESULT_MEMO:
        executor = Executor(jobs=1, cache=RunCache(enabled=False))
        runner = ExperimentRunner(QUICK, executor=executor)
        _RESULT_MEMO["r"] = runner.run_one("shared", "apache",
                                           runner.seeds[0])
    return _RESULT_MEMO["r"]


class TestReadThroughIndex:
    def test_cross_instance_discovery(self, tmp_path):
        """A second cache instance (stand-in for a second process — the
        index is filesystem-backed) sees keys the first committed."""
        writer = RunCache(root=str(tmp_path))
        reader = RunCache(root=str(tmp_path))
        key = _fake_key(3)
        assert reader.probably_has(key) is False
        writer.put(key, _quick_result())
        assert reader.probably_has(key) is True
        assert reader.get(key) == _quick_result()

    def test_own_writes_visible_without_rescan(self, tmp_path):
        cache = RunCache(root=str(tmp_path))
        key = _fake_key(4)
        assert cache.probably_has(key) is False  # primes the scan
        cache.put(key, _quick_result())
        assert cache.probably_has(key) is True

    def test_disabled_cache_never_probably_has(self, tmp_path):
        cache = RunCache(root=str(tmp_path), enabled=False)
        assert cache.probably_has(_fake_key(5)) is False

    def test_worker_batch_serves_from_cache_instead_of_simulating(
            self, tmp_path):
        """Cross-process coalescing: run_point_batch (the worker entry)
        answers a committed key from disk. The point's workload does not
        exist, so any attempt to actually simulate would raise."""
        cache = RunCache(root=str(tmp_path))
        poisoned = RunPoint(name="shared", workload="no-such-workload",
                            seed=1, config=scaled_config(8), settings=QUICK,
                            arch="shared")
        key = poisoned.key
        cache.put(key, _quick_result())
        with pytest.raises(KeyError):
            simulate_point(poisoned)  # sanity: simulating would fail
        results = run_point_batch({"points": [(key, poisoned)],
                                   "cache": cache.spec()})
        assert results == [_quick_result()]


class TestConcurrentWriters:
    """Satellite: two processes put() the same key simultaneously."""

    def test_no_torn_reads_no_leftover_tmp_files(self, tmp_path):
        root = str(tmp_path)
        cache = RunCache(root=root)
        key = _fake_key(6)
        result = _quick_result()
        ctx = mp_context()
        rounds = 40
        writers = [ctx.Process(target=hammer_put,
                               args=(root, key, result, rounds))
                   for _ in range(2)]
        for w in writers:
            w.start()
        # hammer get() while both writers race on the same entry
        observed = 0
        deadline = time.monotonic() + POOL_TIMEOUT
        while any(w.is_alive() for w in writers):
            assert time.monotonic() < deadline, "writers wedged"
            got = cache.get(key)
            if got is not None:
                assert got == result  # never torn, never partial
                observed += 1
        for w in writers:
            w.join(timeout=POOL_TIMEOUT)
            assert w.exitcode == 0
        assert observed > 0
        # last-write-wins equivalence: the surviving entry is the payload
        assert cache.get(key) == result
        # atomic renames leave no temp droppings anywhere in the cache
        leftovers = glob.glob(os.path.join(root, "**", "*.tmp.*"),
                              recursive=True)
        assert leftovers == []


# -- the executor's fabric path ----------------------------------------------

class TestExecutorFabric:
    def _points(self, n=4):
        config = scaled_config(QUICK.capacity_factor)
        combos = [("shared", "apache"), ("private", "apache"),
                  ("esp-nuca", "apache"), ("shared", "gcc-4"),
                  ("private", "gcc-4"), ("esp-nuca", "gcc-4")]
        return [RunPoint(name=a, workload=w, seed=9, config=config,
                         settings=QUICK, arch=a)
                for a, w in combos[:n]]

    def test_parallel_identical_to_serial_with_worker_pids_traced(
            self, tmp_path):
        points = self._points(4)
        serial = Executor(jobs=1, cache=RunCache(enabled=False))
        expected = [r.to_dict() for r in serial.run(points)]

        tracer = obs.Tracer(categories=["executor", "fabric"])
        parallel = Executor(jobs=2,
                            cache=RunCache(root=str(tmp_path / "cache")))
        try:
            with obs.activated(tracer):
                got = [r.to_dict() for r in parallel.run(points)]
            assert got == expected
            runs = [e for e in tracer.events
                    if e.category == "executor" and e.name == "pool run"]
            assert runs, "fabric batches should emit pool run instants"
            pids = {e.args["worker_pid"] for e in runs}
            assert os.getpid() not in pids  # really other processes
            assert sum(e.args["points"] for e in runs) == len(points)
            spawned = {e.args["worker_pid"] for e in tracer.events
                       if e.category == "fabric"
                       and e.name == "worker spawned"}
            assert pids <= spawned
        finally:
            parallel.close()

    def test_pool_persists_across_batches(self, tmp_path):
        executor = Executor(jobs=2, cache=RunCache(enabled=False))
        try:
            executor.run(self._points(2))
            pool = executor._pool
            assert pool is not None
            first = pool.stats()["completed"]
            executor.run(self._points(4)[2:])
            assert executor._pool is pool  # same fabric, reused
            assert pool.stats()["completed"] > first
        finally:
            executor.close()

    def test_close_then_run_restarts_lazily(self, tmp_path):
        executor = Executor(jobs=2, cache=RunCache(enabled=False))
        try:
            r1 = [r.to_dict() for r in executor.run(self._points(2))]
            executor.close()
            assert executor.fabric_stats() is None
            r2 = [r.to_dict() for r in executor.run(self._points(2))]
            assert r1 == r2
        finally:
            executor.close()

    def test_procs_busy_zero_when_idle(self):
        executor = Executor(jobs=2, cache=RunCache(enabled=False))
        try:
            assert executor.procs_busy() == 0
            executor.run(self._points(2))
            assert executor.procs_busy() == 0  # batch fully drained
        finally:
            executor.close()

    def test_serial_executor_never_starts_the_fabric(self):
        executor = Executor(jobs=1, cache=RunCache(enabled=False))
        executor.run(self._points(2))
        assert executor._pool is None
        assert executor.fabric_stats() is None
