"""Unit tests for the batched contention-path kernels.

The :class:`~repro.sim.vector.contention.ContentionSession` shadows the
scalar timing methods (``Network.arrival``, ``MemoryController.service``
/ ``post_writeback``, ``NucaArchitecture.bank_service``) with deferred
kernels for the span of one fast phase. These tests pin the session
mechanics directly — the end-to-end guarantee (full simulations byte-
identical in both kernel modes) lives in test_engine_equivalence.py.
"""

from __future__ import annotations

from repro.noc.message import MessageKind
from repro.sim.request import Supplier
from repro.sim.vector.contention import ContentionSession, kernels_enabled

from tests.util import build


def fresh_system():
    return build("esp-nuca", check_tokens=False)


#: A scripted timing sequence with deliberately out-of-time-order
#: arrivals (later calls carry earlier timestamps), exercising the
#: capped-wait branches of every busy-until reservation.
NOC_CALLS = [
    (MessageKind.REQUEST, 0, 3, 100),
    (MessageKind.RESPONSE_DATA, 3, 0, 90),
    (MessageKind.REQUEST, 0, 3, 10),       # stamped before the frontier
    (MessageKind.RESPONSE_CTRL, 1, 6, 0),
    (MessageKind.REQUEST, 0, 3, 11),
    (MessageKind.WRITEBACK, 6, 1, 5),
    (MessageKind.REQUEST, 2, 2, 40),       # zero-hop: no link traffic
]
MC_CALLS = [(0, 50), (0, 40), (1, 10), (0, 41), (0, 42), (1, 9)]
BANK_CALLS = [(0, 5, True), (0, 6, False), (3, 0, True), (0, 7, True)]


def drive(system, session):
    """Run the scripted sequence; returns every returned time."""
    times = []
    for kind, src, dst, t in NOC_CALLS:
        times.append(system.network.arrival(kind, src, dst, t))
    for mc_index, t in MC_CALLS:
        mc = system.memory.controllers[mc_index]
        times.append(mc.service(t))
        mc.post_writeback(t + 1)
    for bank_id, t, hit in BANK_CALLS:
        times.append(system.architecture.bank_service(bank_id, t, hit))
    if session is not None:
        session.uninstall()  # flushes the deferred statistics
    return times


class TestKnob:
    def test_default_and_explicit_values(self, monkeypatch):
        monkeypatch.delenv("REPRO_CONTENTION_KERNELS", raising=False)
        assert kernels_enabled()
        for raw, expect in [("", True), ("1", True), ("yes", True),
                            ("on", True), ("banana", True),
                            ("0", False), ("false", False), ("no", False),
                            ("off", False), (" 0 ", False), ("FALSE", False)]:
            monkeypatch.setenv("REPRO_CONTENTION_KERNELS", raw)
            assert kernels_enabled() is expect, raw


class TestInstallUninstall:
    def test_kernels_shadow_then_restore_the_class_methods(self):
        system = fresh_system()
        session = ContentionSession(system)
        session.install()
        assert "arrival" in vars(system.network)
        assert "bank_service" in vars(system.architecture)
        for mc in system.memory.controllers:
            assert "service" in vars(mc)
            assert "post_writeback" in vars(mc)
        session.uninstall()
        assert "arrival" not in vars(system.network)
        assert "bank_service" not in vars(system.architecture)
        for mc in system.memory.controllers:
            assert "service" not in vars(mc)
            assert "post_writeback" not in vars(mc)
        assert system.network.arrival.__func__ \
            is type(system.network).arrival

    def test_controller_busy_state_written_back(self):
        system = fresh_system()
        session = ContentionSession(system)
        session.install()
        mc = system.memory.controllers[0]
        first = mc.service(100)
        assert first == 100 + mc.latency
        assert mc._busy_until == 0  # deferred: object untouched mid-phase
        session.uninstall()
        assert mc._busy_until == 100 + mc.occupancy

    def test_uninstall_without_install_is_a_noop(self):
        system = fresh_system()
        session = ContentionSession(system)
        session.uninstall()
        assert "arrival" not in vars(system.network)


class TestScalarEquivalence:
    def test_timing_state_and_statistics_match_the_scalar_methods(self):
        plain = fresh_system()
        kernel = fresh_system()
        session = ContentionSession(kernel)
        session.install()

        plain_times = drive(plain, None)
        kernel_times = drive(kernel, session)

        assert kernel_times == plain_times
        assert kernel.network._link_busy == plain.network._link_busy
        assert kernel.architecture._bank_busy == plain.architecture._bank_busy
        assert [mc._busy_until for mc in kernel.memory.controllers] \
            == [mc._busy_until for mc in plain.memory.controllers]
        assert kernel.stats.to_dict() == plain.stats.to_dict()

    def test_flush_is_idempotent(self):
        system = fresh_system()
        session = ContentionSession(system)
        session.install()
        drive(system, session)  # uninstall flushes once
        before = system.stats.to_dict()
        session.flush()
        assert system.stats.to_dict() == before


class TestDeferredServeStats:
    def test_supplier_records_land_in_the_live_registry(self):
        system = fresh_system()
        session = ContentionSession(system)
        rec = session.sup_rec[Supplier.OFFCHIP.idx]
        rec[0] = 3       # count
        rec[1] = 900     # cycles
        rec[2 + 4] = 3   # histogram bucket
        session.l1_hits[2] = 5
        session.l1_misses[2] = 3
        session.flush()
        assert system._access_count[Supplier.OFFCHIP].value == 3
        assert system._access_cycles[Supplier.OFFCHIP].value == 900
        hist = system._access_hist[Supplier.OFFCHIP]
        assert hist.count == 3 and hist.total == 900
        assert hist.buckets[4] == 3
        assert system.l1s[2].hits == 5
        assert system.l1s[2].misses == 3
        # Flushed arrays are zeroed: a second flush adds nothing.
        session.flush()
        assert system._access_count[Supplier.OFFCHIP].value == 3
        assert system.l1s[2].hits == 5
