"""Directed tests of Adaptive Selective Replication."""

from repro.architectures.asr import LEVELS, AdaptiveSelectiveReplication
from repro.sim.system import CmpSystem

from tests.util import access, build, tiny_config

from tests.test_arch_private import evict_from_l1


def build_asr(initial_level):
    config = tiny_config()
    arch = AdaptiveSelectiveReplication(config, initial_level=initial_level)
    return CmpSystem(config, arch, check_tokens=True), arch


def make_shared(system, block, first, second):
    access(system, first, block)
    access(system, second, block)


class TestSelectiveReplication:
    def test_level_zero_never_replicates(self):
        system, arch = build_asr(initial_level=0)
        block = 0x3100
        make_shared(system, block, 0, 6)
        evict_from_l1(system, 6, block)
        own_bank = system.amap.private_bank(block, 6)
        assert arch.banks[own_bank].peek(
            system.amap.private_index(block), block) is None

    def test_level_one_always_replicates(self):
        system, arch = build_asr(initial_level=len(LEVELS) - 1)
        block = 0x3100
        make_shared(system, block, 0, 6)
        evict_from_l1(system, 6, block)
        own_bank = system.amap.private_bank(block, 6)
        entry = arch.banks[own_bank].peek(
            system.amap.private_index(block), block)
        assert entry is not None and entry.meta.get("replica")

    def test_sole_copy_always_kept_locally(self):
        system, arch = build_asr(initial_level=0)
        block = 0x3200
        access(system, 4, block)
        evict_from_l1(system, 4, block)
        own_bank = system.amap.private_bank(block, 4)
        assert arch.banks[own_bank].peek(
            system.amap.private_index(block), block) is not None

    def test_unreplicated_tokens_merge_into_home_copy(self):
        system, arch = build_asr(initial_level=0)
        block = 0x3300
        access(system, 0, block)
        evict_from_l1(system, 0, block)  # home copy at cluster 0
        access(system, 6, block)
        evict_from_l1(system, 6, block)  # no replica: tokens merge home
        holdings = system.ledger.l2_holdings(block)
        assert len(holdings) == 1
        assert holdings[0].bank_id in system.amap.private_banks(0)


class TestAdaptation:
    def test_costly_replication_steps_down(self):
        system, arch = build_asr(initial_level=2)
        arch._capacity_recaptures[3] = 100
        arch._replica_hits[3] = 0
        arch._adapt(3)
        assert arch.level_index[3] == 1
        assert arch.level_changes == 1

    def test_beneficial_remote_traffic_steps_up(self):
        system, arch = build_asr(initial_level=2)
        arch._remote_shared_hits[3] = 100
        arch._adapt(3)
        assert arch.level_index[3] == 3

    def test_levels_bounded(self):
        system, arch = build_asr(initial_level=0)
        arch._capacity_recaptures[0] = 100
        arch._adapt(0)
        assert arch.level_index[0] == 0
        system, arch = build_asr(initial_level=len(LEVELS) - 1)
        arch._remote_shared_hits[0] = 100
        arch._adapt(0)
        assert arch.level_index[0] == len(LEVELS) - 1

    def test_epoch_counters_reset_after_adapt(self):
        system, arch = build_asr(initial_level=2)
        arch._replica_hits[1] = 5
        arch._remote_shared_hits[1] = 5
        arch._adapt(1)
        assert arch._replica_hits[1] == 0
        assert arch._remote_shared_hits[1] == 0

    def test_victim_tags_recapture_counts_cost(self):
        system, arch = build_asr(initial_level=2)
        # Simulate an eviction of core 2's first-class block, then a
        # miss on it again.
        from repro.cache.block import BlockClass, CacheBlock
        entry = CacheBlock(block=0x440, cls=BlockClass.PRIVATE, owner=2,
                           tokens=0)
        arch.on_l2_eviction(8, 0, entry, tokens=0, cascade=False)
        before = arch._capacity_recaptures[2]
        access(system, 2, 0x440)
        assert arch._capacity_recaptures[2] == before + 1
