"""Statistics primitives used by the evaluation harness."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.common.stats import (
    RunningStats,
    confidence_interval95,
    geometric_mean,
    mean,
    normalized,
    sample_variance,
    variance,
)

FLOATS = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)


class TestBasics:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_population_variance(self):
        assert variance([2.0, 2.0, 2.0]) == 0.0
        assert variance([1.0, 3.0]) == 1.0

    def test_sample_variance(self):
        assert sample_variance([1.0, 3.0]) == 2.0
        assert sample_variance([5.0]) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])
        with pytest.raises(ValueError):
            variance([])

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_normalized(self):
        assert normalized([2.0, 4.0], 2.0) == [1.0, 2.0]
        with pytest.raises(ValueError):
            normalized([1.0], 0.0)


class TestConfidenceInterval:
    def test_single_sample_zero_width(self):
        assert confidence_interval95([1.0]) == 0.0

    def test_identical_samples_zero_width(self):
        assert confidence_interval95([3.0] * 5) == 0.0

    def test_two_samples_uses_wide_t(self):
        # dof=1 -> t = 12.706
        ci = confidence_interval95([0.0, 2.0])
        assert ci == pytest.approx(12.706 * math.sqrt(2.0 / 2))

    def test_shrinks_with_more_samples(self):
        narrow = confidence_interval95([0.0, 2.0] * 10)
        wide = confidence_interval95([0.0, 2.0])
        assert narrow < wide


class TestRunningStats:
    def test_matches_batch_computation(self):
        values = [1.5, 2.5, -3.0, 0.25, 9.0]
        rs = RunningStats()
        rs.extend(values)
        assert rs.mean == pytest.approx(mean(values))
        assert rs.variance == pytest.approx(variance(values))
        assert rs.minimum == -3.0 and rs.maximum == 9.0

    @given(st.lists(FLOATS, min_size=1, max_size=50),
           st.lists(FLOATS, min_size=1, max_size=50))
    def test_merge_equals_concatenation(self, a, b):
        merged = RunningStats()
        merged.extend(a)
        other = RunningStats()
        other.extend(b)
        merged.merge(other)
        assert merged.count == len(a) + len(b)
        assert merged.mean == pytest.approx(mean(a + b), rel=1e-6, abs=1e-6)
        assert merged.variance == pytest.approx(variance(a + b),
                                                rel=1e-6, abs=1e-3)

    def test_merge_into_empty(self):
        empty = RunningStats()
        other = RunningStats()
        other.extend([1.0, 2.0])
        empty.merge(other)
        assert empty.count == 2 and empty.mean == 1.5

    def test_no_samples_raises(self):
        with pytest.raises(ValueError):
            _ = RunningStats().mean
