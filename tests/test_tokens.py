"""Token ledger: movement primitives and conservation invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.block import BlockClass, CacheBlock
from repro.cache.l1 import L1Line
from repro.coherence.tokens import TokenConservationError, TokenLedger


def ledger():
    return TokenLedger(num_cores=8, checking=True)


class TestMemoryPool:
    def test_new_block_fully_in_memory(self):
        led = ledger()
        assert led.state(0x10).memory_tokens == 16

    def test_take_all_from_memory(self):
        led = ledger()
        assert led.take_from_memory(0x10) == 16
        assert led.state(0x10).memory_tokens == 0

    def test_take_partial(self):
        led = ledger()
        assert led.take_from_memory(0x10, 3) == 3
        assert led.state(0x10).memory_tokens == 13

    def test_forgotten_when_fully_off_chip(self):
        led = ledger()
        tokens = led.take_from_memory(0x10)
        led.give_to_memory(0x10, tokens)
        assert 0x10 not in list(led.known_blocks())


class TestL1Holdings:
    def test_register_and_take(self):
        led = ledger()
        tokens = led.take_from_memory(0x10)
        line = L1Line(0x10, tokens, dirty=False)
        led.register_l1(0x10, 2, line)
        assert led.l1_holders(0x10) == [2]
        taken = led.take_from_l1(0x10, 2, 1)
        assert taken == 1 and line.tokens == 15

    def test_holder_dropped_at_zero(self):
        led = ledger()
        line = L1Line(0x10, led.take_from_memory(0x10), dirty=False)
        led.register_l1(0x10, 0, line)
        led.take_from_l1(0x10, 0)
        assert led.l1_holders(0x10) == []

    def test_zero_token_registration_rejected(self):
        led = ledger()
        with pytest.raises(TokenConservationError):
            led.register_l1(0x10, 0, L1Line(0x10, 0, False))


class TestL2Holdings:
    def test_register_take_and_drop(self):
        led = ledger()
        tokens = led.take_from_memory(0x20)
        entry = CacheBlock(block=0x20, cls=BlockClass.SHARED, tokens=tokens)
        led.register_l2(0x20, bank_id=3, set_index=7, entry=entry)
        holdings = led.l2_holdings(0x20)
        assert len(holdings) == 1 and holdings[0].bank_id == 3
        led.take_from_l2(0x20, entry, 1)
        assert entry.tokens == 15
        led.take_from_l2(0x20, entry)
        assert led.l2_holdings(0x20) == []

    def test_multiple_entries_same_block(self):
        # ESP-NUCA: a shared entry and a replica coexist.
        led = ledger()
        led.take_from_memory(0x20)
        shared = CacheBlock(block=0x20, cls=BlockClass.SHARED, tokens=10)
        replica = CacheBlock(block=0x20, cls=BlockClass.REPLICA, owner=1,
                             tokens=6)
        led.register_l2(0x20, 0, 0, shared)
        led.register_l2(0x20, 5, 0, replica)
        assert len(led.l2_holdings(0x20)) == 2
        led.check_block(0x20)


class TestConservation:
    def test_check_detects_leak(self):
        led = ledger()
        line = L1Line(0x10, led.take_from_memory(0x10), dirty=False)
        led.register_l1(0x10, 0, line)
        line.tokens -= 1  # illegal out-of-band mutation
        with pytest.raises(TokenConservationError):
            led.check_block(0x10)

    def test_steal_prefers_spare_tokens(self):
        led = ledger()
        led.take_from_memory(0x10)
        rich = L1Line(0x10, 15, False)
        poor = L1Line(0x10, 1, False)
        led.register_l1(0x10, 0, rich)
        led.register_l1(0x10, 1, poor)
        kind, where = led.steal_one_token(0x10)
        assert (kind, where) == ("l1", 0)

    def test_steal_none_when_all_single(self):
        led = ledger()
        led.take_from_memory(0x10, 16)
        led.register_l1(0x10, 0, L1Line(0x10, 1, False))
        led.give_to_memory(0x10, 15)
        assert led.steal_one_token(0x10) is None

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 3)),
                    min_size=1, max_size=60))
    def test_random_walk_conserves(self, moves):
        """Random legal token movements never break conservation."""
        led = ledger()
        block = 0x42
        lines = {}
        for core, amount in moves:
            state = led.state(block)
            if core in lines and core in state.l1:
                taken = led.take_from_l1(block, core,
                                         min(amount, lines[core].tokens) or None)
                led.give_to_memory(block, taken)
                if core not in led.state(block).l1:
                    lines.pop(core, None)
            elif led.state(block).memory_tokens > 0:
                take = min(amount + 1, led.state(block).memory_tokens)
                taken = led.take_from_memory(block, take)
                line = L1Line(block, taken, dirty=False)
                led.register_l1(block, core, line)
                lines[core] = line
            led.check_block(block)
