"""Victim Replication baseline: local replicas on a shared substrate."""

from repro.cache.block import BlockClass
from repro.sim.request import Supplier

from tests.util import access, build

from tests.test_arch_private import evict_from_l1


def pick_remote_home_block(system, core, start=0x700):
    block = start
    while system.architecture.is_local_bank(
            core, system.amap.shared_bank(block)):
        block += 1
    return block


class TestReplication:
    def test_writeback_with_remote_home_creates_replica(self):
        system = build("victim-replication")
        arch = system.architecture
        core = 5
        block = pick_remote_home_block(system, core)
        access(system, 0, block)          # another copy stays on chip
        access(system, core, block)
        evict_from_l1(system, core, block)
        bank_id, index = arch._local_bank(block, core)
        entry = arch.banks[bank_id].peek(index, block,
                                         classes=(BlockClass.REPLICA,))
        assert entry is not None and entry.owner == core
        assert arch.replicas_created >= 1

    def test_replica_hit_is_local(self):
        system = build("victim-replication")
        arch = system.architecture
        core = 5
        block = pick_remote_home_block(system, core)
        access(system, 0, block)
        access(system, core, block)
        evict_from_l1(system, core, block)
        out = access(system, core, block)
        assert out.supplier is Supplier.L2_LOCAL
        assert arch.replica_hits >= 1

    def test_last_copy_goes_home_not_replica(self):
        """The home bank keeps the authoritative copy: a sole copy is
        never turned into a local replica."""
        system = build("victim-replication")
        arch = system.architecture
        core = 5
        block = pick_remote_home_block(system, core, start=0x720)
        access(system, core, block)       # sole copy
        evict_from_l1(system, core, block)
        home = system.amap.shared_bank(block)
        assert arch.banks[home].peek(
            system.amap.shared_index(block), block) is not None

    def test_local_home_needs_no_replica(self):
        system = build("victim-replication")
        arch = system.architecture
        core = 0
        block = 0x700
        while not arch.is_local_bank(core, system.amap.shared_bank(block)):
            block += 1
        access(system, core, block)
        evict_from_l1(system, core, block)
        assert arch.replicas_created == 0

    def test_write_collapses_replicas(self):
        system = build("victim-replication")
        core = 5
        block = pick_remote_home_block(system, core)
        access(system, 0, block)
        access(system, core, block)
        evict_from_l1(system, core, block)
        access(system, 2, block, write=True)
        assert all(h.entry.cls is not BlockClass.REPLICA
                   for h in system.ledger.l2_holdings(block))

    def test_registry_exposes_vr_and_qos(self):
        from repro.architectures.registry import architecture_names
        names = architecture_names()
        assert "victim-replication" in names
        assert "esp-nuca-qos" in names
