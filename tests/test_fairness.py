"""Fairness metrics (per-thread IPC, Section 6.3)."""

import pytest

from repro.metrics.fairness import (
    group_ipc,
    ipc_variance,
    per_core_ipc,
    slowdown_fairness,
)
from repro.sim.results import SimResult


def result(instr, cycles):
    r = SimResult()
    r.per_core_instructions = instr
    r.per_core_cycles = cycles
    return r


class TestPerCoreIpc:
    def test_skips_idle_cores(self):
        r = result([100, 0, 50], [100, 0, 100])
        assert per_core_ipc(r) == [1.0, 0.5]

    def test_variance_of_uniform_is_zero(self):
        r = result([100] * 4, [200] * 4)
        assert ipc_variance(r) == 0.0

    def test_variance_detects_imbalance(self):
        balanced = result([100, 100], [100, 100])
        skewed = result([100, 100], [100, 400])
        assert ipc_variance(skewed) > ipc_variance(balanced)

    def test_single_core_variance_zero(self):
        assert ipc_variance(result([100], [100])) == 0.0


class TestGroupIpc:
    def test_groups_average_their_members(self):
        r = result([100, 300, 0, 0], [100, 100, 0, 0])
        assert group_ipc(r, [0, 1]) == 2.0
        assert group_ipc(r, [2, 3]) == 0.0


class TestSlowdownFairness:
    def test_perfectly_fair(self):
        r = result([50, 50], [100, 100])
        assert slowdown_fairness(r, {0: 1.0, 1: 1.0}) == 1.0

    def test_starved_thread_detected(self):
        r = result([100, 10], [100, 100])
        fairness = slowdown_fairness(r, {0: 1.0, 1: 1.0})
        assert fairness == pytest.approx(0.1)

    def test_empty_is_neutral(self):
        assert slowdown_fairness(result([], []), {}) == 1.0


class TestEndToEnd:
    def test_hybrid_isolation_reduces_ipc_variance(self):
        """Private isolation must not increase per-thread IPC variance
        relative to a shared pool on an interference-heavy hybrid."""
        from repro.common.config import scaled_config
        from repro.architectures.registry import make_architecture
        from repro.sim.engine import SimulationEngine
        from repro.sim.system import CmpSystem
        from repro.workloads.base import TraceGenerator
        from repro.workloads.registry import get_workload

        config = scaled_config(8)
        spec = get_workload("mcf-gzip").capacity_scaled(8).scaled(2500)
        var = {}
        for arch in ("shared", "private"):
            system = CmpSystem(config, make_architecture(arch, config))
            engine = SimulationEngine(
                system, TraceGenerator(spec, 1).traces(8))
            run = engine.run(warmup_refs_per_core=1000)
            var[arch] = ipc_variance(run)
        assert var["private"] <= var["shared"] * 1.5
