"""Tier-1 pins for the differential oracles (docs/checking.md).

Reduced grids of what ``tools/check_sweep.py`` runs in CI: the three
metamorphic equivalences plus a short fully-checked fuzz. The fuzz
deliberately includes r-nuca — its page-arrival demotion bug was found
by exactly this oracle and stays pinned here.
"""

import pytest

from repro.check import oracles
from repro.core.esp_nuca import UNBOUNDED, EspNuca


def test_pinned_zero_matches_sp_nuca():
    report = oracles.oracle_pinned_zero(seed=1, refs_per_core=250)
    assert report.ok, str(report)


def test_flat_matches_unbounded_protection():
    report = oracles.oracle_flat_unbounded(seed=2, refs_per_core=250)
    assert report.ok, str(report)


def test_single_core_never_demotes():
    report = oracles.oracle_single_core(seed=3, refs_per_core=250)
    assert report.ok, str(report)


def test_fuzz_fully_checked():
    report = oracles.oracle_fuzz(
        seeds=(11,), refs_per_core=100,
        architectures=("esp-nuca", "sp-nuca", "r-nuca"))
    assert report.ok, str(report)


def test_pinned_nmax_validation():
    config = oracles.small_config(checks=False)
    with pytest.raises(ValueError):
        EspNuca(config, nmax_pinned=config.l2.assoc)  # > ways - 1
    with pytest.raises(ValueError):
        EspNuca(config, variant="flat", nmax_pinned=0)
    assert EspNuca(config, nmax_pinned=1).name == "esp-nuca-pin-1"
    assert EspNuca(config, nmax_pinned=UNBOUNDED).name \
        == f"esp-nuca-pin-{UNBOUNDED}"


def test_first_class_comparison_reports_mismatches():
    """compare_first_class must actually see differences (guards the
    oracle against comparing nothing)."""
    config = oracles.small_config(checks=False)
    traces = oracles.fuzz_traces(config, seed=5, refs_per_core=120)
    from repro.architectures.registry import make_architecture
    from repro.sim.system import CmpSystem

    a = oracles.run_system(
        CmpSystem(config, make_architecture("shared", config)), traces)
    b = oracles.run_system(
        CmpSystem(config, make_architecture("private", config)), traces)
    report = oracles.compare_first_class("sanity", a, b, "shared", "private")
    assert not report.ok and report.mismatches
