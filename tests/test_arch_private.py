"""Directed tests of the tiled private architecture."""

from repro.cache.block import BlockClass
from repro.sim.request import Supplier

from tests.util import access, build


def evict_from_l1(system, core, block):
    """Push ``block`` out of the core's L1 by conflicting its set."""
    l1_sets = system.config.l1.num_sets
    amap = system.amap
    fillers, candidate = [], block + 1
    while len(fillers) < system.config.l1.assoc:
        if amap.l1_index(candidate, l1_sets) == amap.l1_index(block, l1_sets):
            fillers.append(candidate)
        candidate += 1
    for f in fillers:
        access(system, core, f)
    assert system.l1s[core].lookup(block) is None


class TestLocality:
    def test_l1_eviction_lands_in_own_partition(self):
        system = build("private")
        block = 0x5000
        access(system, 2, block)
        evict_from_l1(system, 2, block)
        bank = system.amap.private_bank(block, 2)
        assert bank in system.amap.private_banks(2)
        entry = system.architecture.banks[bank].peek(
            system.amap.private_index(block), block)
        assert entry is not None
        assert entry.cls is BlockClass.PRIVATE and entry.owner == 2

    def test_local_l2_hit(self):
        system = build("private")
        block = 0x5000
        access(system, 2, block)
        evict_from_l1(system, 2, block)
        out = access(system, 2, block)
        assert out.supplier is Supplier.L2_LOCAL


class TestReplication:
    def test_remote_l2_read_leaves_source_copy(self):
        system = build("private")
        block = 0x600
        access(system, 0, block)
        evict_from_l1(system, 0, block)
        out = access(system, 7, block)
        assert out.supplier is Supplier.L2_REMOTE
        # Source copy survives with the remaining tokens (replication).
        src_bank = system.amap.private_bank(block, 0)
        assert system.architecture.banks[src_bank].peek(
            system.amap.private_index(block), block) is not None

    def test_both_cores_build_local_copies(self):
        system = build("private")
        block = 0x600
        access(system, 0, block)
        evict_from_l1(system, 0, block)
        access(system, 7, block)
        evict_from_l1(system, 7, block)
        holdings = system.ledger.l2_holdings(block)
        banks = {h.bank_id for h in holdings}
        assert system.amap.private_bank(block, 0) in banks
        assert system.amap.private_bank(block, 7) in banks

    def test_write_destroys_all_replicas(self):
        system = build("private")
        block = 0x600
        access(system, 0, block)
        evict_from_l1(system, 0, block)
        access(system, 7, block)
        access(system, 7, block, write=True)
        assert system.ledger.l2_holdings(block) == []
        assert system.ledger.l1_holders(block) == [7]


class TestCapacityIsolation:
    def test_partition_overflow_goes_offchip(self):
        """A thread cannot use more than its own four banks."""
        system = build("private")
        amap = system.amap
        assoc = system.config.l2.assoc
        # Blocks all landing in one private set of core 0.
        blocks = []
        tag = 1
        while len(blocks) < assoc + 2:
            candidate = (tag << 10)  # index 0, local bank 0 (tiny config)
            if amap.private_bank(candidate, 0) == amap.private_banks(0)[0] \
                    and amap.private_index(candidate) == 0:
                blocks.append(candidate)
            tag += 1
        for b in blocks:
            access(system, 0, b)
            evict_from_l1(system, 0, b)
        resident = sum(
            1 for b in blocks
            if system.architecture.banks[amap.private_bank(b, 0)].peek(
                amap.private_index(b), b) is not None)
        assert resident <= assoc
        assert system.result.offchip_writebacks + \
            system.memory.writebacks >= 0  # tokens returned cleanly
