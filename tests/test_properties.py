"""System-level property tests: arbitrary access interleavings must
preserve token conservation, directory consistency, and single-writer
semantics under every architecture."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cache.block import BlockClass, CacheBlock
from repro.cache.bank import CacheBank
from repro.cache.replacement import ProtectedLru

from tests.util import build, tiny_config

ARCHS = ["shared", "private", "sp-nuca", "esp-nuca", "esp-nuca-flat",
         "d-nuca", "asr", "cc70"]

ACCESSES = st.lists(
    st.tuples(st.integers(0, 7),           # core
              st.integers(0, 40),          # block (small pool -> sharing)
              st.booleans()),              # write?
    min_size=1, max_size=120)


@pytest.mark.parametrize("arch", ARCHS)
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(accesses=ACCESSES)
def test_invariants_under_random_streams(arch, accesses):
    system = build(arch, check_tokens=True)
    t = 0
    for core, small, write in accesses:
        block = 0x8000 + small * 0x101  # spread across banks/sets
        system.access(core, block, write, t)
        t += 3
    system.check_invariants()
    # Single-writer: any dirty L1 line holds every token of its block.
    for core, l1 in enumerate(system.l1s):
        for block in l1.resident_blocks():
            line = l1.lookup(block, touch=False)
            if line.dirty and line.tokens < system.ledger.total_tokens:
                holders = system.ledger.l1_holders(block)
                # A dirty line with partial tokens is legal only if no
                # other core also has a *writable* copy.
                writable = [h for h in holders
                            if system.l1s[h].lookup(block, touch=False).tokens
                            == system.ledger.total_tokens]
                assert not writable


@settings(max_examples=25, deadline=None)
@given(ops=st.lists(st.tuples(st.booleans(), st.integers(0, 200)),
                    min_size=1, max_size=80),
       nmax=st.integers(0, 4))
def test_protected_lru_never_exceeds_budget(ops, nmax):
    """Random interleavings of first-class and helping insertions keep
    every set's helping count within the budget."""
    bank = CacheBank(0, num_sets=2, ways=4, policy=ProtectedLru())
    bank.nmax = nmax
    for is_helping, addr in ops:
        cls = BlockClass.REPLICA if is_helping else BlockClass.PRIVATE
        entry = CacheBlock(block=addr, cls=cls, owner=0, tokens=1)
        index = addr % 2
        if bank.sets[index].find(addr) is not None:
            continue
        bank.allocate(index, entry)
        for cache_set in bank.sets:
            assert cache_set.helping_count <= nmax


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2 ** 20))
def test_random_seeded_runs_conserve_tokens(seed):
    """Short seeded workload runs keep conservation under ESP-NUCA."""
    from repro.sim.engine import SimulationEngine
    from repro.workloads.base import TraceGenerator, WorkloadSpec

    config = tiny_config()
    system = build("esp-nuca", config)
    spec = WorkloadSpec(name="prop", family="synthetic",
                        active_cores=(0, 3, 7), refs_per_core=120,
                        private_footprint_blocks=64,
                        shared_footprint_blocks=32, shared_fraction=0.4,
                        write_fraction=0.3, os_noise=0.05)
    engine = SimulationEngine(system,
                              TraceGenerator(spec, seed).traces(8))
    engine.run()
    system.check_invariants()
