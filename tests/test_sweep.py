"""Parameter-sweep utility."""

import pytest

from repro.common.config import SystemConfig
from repro.harness.runner import ExperimentRunner, RunSettings
from repro.harness.sweep import Sweep, set_config_field


class TestSetConfigField:
    def test_top_level_field(self):
        cfg = set_config_field(SystemConfig(), "num_cores", 8)
        assert cfg.num_cores == 8

    def test_nested_field(self):
        cfg = set_config_field(SystemConfig(), "esp.degradation_shift", 4)
        assert cfg.esp.degradation_shift == 4
        # Everything else untouched.
        assert cfg.l2.size == SystemConfig().l2.size

    def test_doubly_nested_rejected_on_bad_path(self):
        with pytest.raises(AttributeError):
            set_config_field(SystemConfig(), "esp.bogus_field", 1)

    def test_cannot_descend_into_scalar(self):
        with pytest.raises(ValueError):
            set_config_field(SystemConfig(), "num_cores.x", 1)

    def test_original_unmodified(self):
        base = SystemConfig()
        set_config_field(base, "mem.latency", 100)
        assert base.mem.latency == 350


class TestSweepRun:
    def test_sweep_produces_one_series_per_value(self):
        from repro.core.esp_nuca import EspNuca

        runner = ExperimentRunner(RunSettings(
            capacity_factor=8, refs_per_core=400,
            warmup_refs_per_core=100, num_seeds=1))
        sweep = Sweep(runner, "esp.degradation_shift", [3, 5],
                      lambda cfg: EspNuca(cfg), arch_label="esp")
        report = sweep.run(["gzip-4"])
        assert set(report.series) == {"esp.degradation_shift=3",
                                      "esp.degradation_shift=5"}
        for values in report.series.values():
            assert len(values) == 1 and values[0] > 0
