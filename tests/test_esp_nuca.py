"""Directed tests of ESP-NUCA (Section 3): replicas, victims,
protected LRU interplay, in-place demotion."""

import pytest

from repro.cache.block import BlockClass
from repro.core.private_bit import Classification
from repro.sim.request import Supplier

from tests.util import (access, build, private_overflow_blocks,
                        remote_helping_block)

from tests.test_arch_private import evict_from_l1


def freeze_budget(system, nmax):
    """Pin every bank's helping budget and stop the duel from moving
    it (duel state included, so the invariant checker stays happy)."""
    arch = system.architecture
    for bank in arch.banks:
        bank.nmax = nmax
        bank.monitor = None
        if arch.duel is not None:
            arch.duel.state_of(bank.bank_id).nmax = nmax


def make_shared(system, block, cores=(3, 6)):
    """Touch a block from two cores so it is classified shared."""
    access(system, cores[0], block)
    access(system, cores[1], block)


def pick_remote_shared_block(system, core, start=0x900):
    """A block whose shared-map bank is NOT at ``core``'s router and
    whose private- and shared-map sets are unmonitored (queried from
    the actual per-bank role placement), so protected LRU admits
    helping blocks there with the default budget."""
    return remote_helping_block(system, core, start)


class TestReplicas:
    def _build_replica(self, system, core=6):
        # The replicating core fetches first (so it holds the token
        # surplus and the replica is endowed with several tokens), a
        # second core demotes the block to shared.
        block = pick_remote_shared_block(system, core)
        make_shared(system, block, cores=(core, 3))
        access(system, core, block)        # set the reuse bit
        evict_from_l1(system, core, block)  # creates the replica
        return block

    def test_reused_shared_eviction_creates_replica(self):
        system = build("esp-nuca")
        block = self._build_replica(system)
        pbank = system.amap.private_bank(block, 6)
        entry = system.architecture.banks[pbank].peek(
            system.amap.private_index(block), block,
            classes=(BlockClass.REPLICA,))
        assert entry is not None and entry.owner == 6
        assert system.architecture.replicas_created >= 1

    def test_unreused_shared_eviction_skips_replica(self):
        system = build("esp-nuca")
        core = 6
        block = pick_remote_shared_block(system, core)
        make_shared(system, block, cores=(3, core))
        evict_from_l1(system, core, block)  # never re-touched: no reuse
        pbank = system.amap.private_bank(block, core)
        assert system.architecture.banks[pbank].peek(
            system.amap.private_index(block), block,
            classes=(BlockClass.REPLICA,)) is None

    def test_replica_hit_is_local(self):
        system = build("esp-nuca")
        block = self._build_replica(system)
        out = access(system, 6, block)
        assert out.supplier is Supplier.L2_LOCAL
        assert system.architecture.replica_hits >= 1

    def test_replica_survives_reads(self):
        system = build("esp-nuca")
        block = self._build_replica(system)
        access(system, 6, block)
        pbank = system.amap.private_bank(block, 6)
        assert system.architecture.banks[pbank].peek(
            system.amap.private_index(block), block,
            classes=(BlockClass.REPLICA,)) is not None

    def test_write_invalidates_replicas(self):
        system = build("esp-nuca")
        block = self._build_replica(system)
        access(system, 1, block, write=True)
        assert all(h.entry.cls is not BlockClass.REPLICA
                   for h in system.ledger.l2_holdings(block))


class TestVictims:
    def _overflow_private(self, system, core=0):
        """Over-fill one private-map set of ``core``; returns blocks.

        Blocks are chosen with unmonitored private AND shared sets
        (queried from the per-bank role placement) so neither the
        eviction set nor the victim target is a reference set.
        """
        assoc = system.config.l2.assoc
        blocks = private_overflow_blocks(system, core, assoc + 3)
        for b in blocks:
            access(system, core, b)
            evict_from_l1(system, core, b)
        return blocks

    def test_private_overflow_creates_victims(self):
        system = build("esp-nuca")
        self._overflow_private(system)
        assert system.architecture.victims_created >= 1

    def test_victim_sits_at_shared_map_location(self):
        system = build("esp-nuca")
        blocks = self._overflow_private(system)
        arch = system.architecture
        victims = [
            (b, h) for b in blocks for h in system.ledger.l2_holdings(b)
            if h.entry.cls is BlockClass.VICTIM
        ]
        assert victims
        for block, holding in victims:
            assert holding.bank_id == system.amap.shared_bank(block)
            assert holding.entry.owner == 0

    def test_owner_reclaims_victim(self):
        system = build("esp-nuca")
        blocks = self._overflow_private(system)
        victims = [b for b in blocks
                   for h in system.ledger.l2_holdings(b)
                   if h.entry.cls is BlockClass.VICTIM]
        block = victims[0]
        out = access(system, 0, block)
        assert out.supplier in (Supplier.L2_SHARED, Supplier.L2_LOCAL)
        assert system.architecture.victim_hits >= 1
        # Swap-back semantics: the victim entry is consumed.
        assert all(h.entry.cls is not BlockClass.VICTIM
                   for h in system.ledger.l2_holdings(block))

    def test_owner_reclaims_victim_on_write(self):
        system = build("esp-nuca")
        blocks = self._overflow_private(system)
        victims = [b for b in blocks
                   for h in system.ledger.l2_holdings(b)
                   if h.entry.cls is BlockClass.VICTIM]
        block = victims[0]
        out = access(system, 0, block, write=True)
        assert out.supplier in (Supplier.L2_SHARED, Supplier.L2_LOCAL)
        assert system.architecture.victim_hits >= 1
        assert all(h.entry.cls is not BlockClass.VICTIM
                   for h in system.ledger.l2_holdings(block))
        # A write reclaim must leave the owner exclusive and dirty.
        line = system.l1s[0].lookup(block)
        assert line is not None and line.dirty
        assert line.tokens == system.ledger.total_tokens

    def test_second_core_demotes_victim_in_place(self):
        system = build("esp-nuca")
        blocks = self._overflow_private(system)
        arch = system.architecture
        victims = [b for b in blocks
                   for h in system.ledger.l2_holdings(b)
                   if h.entry.cls is BlockClass.VICTIM]
        block = victims[0]
        access(system, 5, block)
        assert arch.classifier.classify(block) is Classification.SHARED
        # The entry (if still resident) must now be first-class SHARED.
        for holding in system.ledger.l2_holdings(block):
            assert holding.entry.cls is BlockClass.SHARED


class TestReplicaTokenSplit:
    """The endowment split in route_l1_eviction: a reused shared
    eviction holding t >= 2 tokens grants the replica min(t - 1, 4)
    and sends the remainder (with the dirty responsibility) to the
    shared bank; on refusal everything falls back there."""

    def _reused_dirty_line(self, system, core=6):
        block = pick_remote_shared_block(system, core)
        make_shared(system, block, cores=(core, 3))
        access(system, core, block, write=True)  # gathers every token
        access(system, core, block)              # reuse bit
        line = system.l1s[core].lookup(block)
        assert line.dirty and line.tokens == system.ledger.total_tokens
        return block

    def test_grant_split_caps_replica_endowment(self):
        system = build("esp-nuca")
        total = system.ledger.total_tokens
        block = self._reused_dirty_line(system)
        evict_from_l1(system, 6, block)
        replica = system.architecture.banks[
            system.amap.private_bank(block, 6)].peek(
            system.amap.private_index(block), block,
            classes=(BlockClass.REPLICA,))
        assert replica is not None
        assert replica.tokens == min(total - 1, 4)
        assert not replica.dirty  # dirty rides with the shared entry
        shared = system.architecture.banks[
            system.amap.shared_bank(block)].peek(
            system.amap.shared_index(block), block,
            classes=(BlockClass.SHARED,))
        assert shared is not None and shared.dirty
        assert shared.tokens + replica.tokens == total

    def test_refused_split_falls_back_entirely_to_shared(self):
        system = build("esp-nuca")
        total = system.ledger.total_tokens
        block = self._reused_dirty_line(system)
        freeze_budget(system, 0)
        evict_from_l1(system, 6, block)
        assert system.architecture.banks[
            system.amap.private_bank(block, 6)].peek(
            system.amap.private_index(block), block,
            classes=(BlockClass.REPLICA,)) is None
        shared = system.architecture.banks[
            system.amap.shared_bank(block)].peek(
            system.amap.shared_index(block), block,
            classes=(BlockClass.SHARED,))
        assert shared is not None and shared.dirty
        assert shared.tokens == total  # no token stranded by the refusal

    def test_single_token_line_becomes_whole_replica(self):
        # The second reader of a shared block holds exactly one token;
        # on a reused eviction the whole writeback becomes the replica
        # (no split possible below two tokens).
        system = build("esp-nuca")
        core = 6
        block = pick_remote_shared_block(system, core)
        make_shared(system, block, cores=(3, core))  # core reads second
        line = system.l1s[core].lookup(block)
        assert line.tokens == 1
        access(system, core, block)  # reuse bit
        evict_from_l1(system, core, block)
        replica = system.architecture.banks[
            system.amap.private_bank(block, core)].peek(
            system.amap.private_index(block), block,
            classes=(BlockClass.REPLICA,))
        assert replica is not None and replica.tokens == 1


class TestProtection:
    def test_zero_budget_refuses_helping_blocks(self):
        system = build("esp-nuca")
        arch = system.architecture
        freeze_budget(system, 0)
        core = 6
        block = pick_remote_shared_block(system, core)
        make_shared(system, block, cores=(3, core))
        access(system, core, block)
        evict_from_l1(system, core, block)
        pbank = system.amap.private_bank(block, core)
        assert arch.banks[pbank].peek(
            system.amap.private_index(block), block,
            classes=(BlockClass.REPLICA,)) is None

    def test_flat_variant_has_no_duel(self):
        system = build("esp-nuca-flat")
        assert system.architecture.duel is None
        assert all(b.nmax is None for b in system.architecture.banks)

    def test_helping_never_exceeds_limit(self):
        system = build("esp-nuca")
        arch = system.architecture
        TestVictims()._overflow_private(system)
        for bank in arch.banks:
            for index, cache_set in enumerate(bank.sets):
                limit = bank.helping_limit(index)
                assert cache_set.helping_count <= max(limit, 0) + 1

    def test_invalid_variant_rejected(self):
        from repro.core.esp_nuca import EspNuca
        with pytest.raises(ValueError):
            EspNuca(build("shared").config, variant="bogus")
