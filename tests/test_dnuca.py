"""Directed tests of D-NUCA: banksets, perfect search, migration,
replication through writebacks."""

from repro.sim.request import Supplier

from tests.util import access, build

from tests.test_arch_private import evict_from_l1


class TestBanksetMapping:
    def test_bankset_is_low_bits(self):
        system = build("d-nuca")
        arch = system.architecture
        assert arch.bankset(0b101) == 0b01
        assert arch.bank_of(0b101, cluster=3) == 3 * 4 + 1

    def test_bank_of_spans_clusters(self):
        system = build("d-nuca")
        arch = system.architecture
        banks = {arch.bank_of(0x40, c) for c in range(8)}
        assert len(banks) == 8
        assert all(b % 4 == arch.bankset(0x40) for b in banks)


class TestSearchAndMigration:
    def test_perfect_search_finds_remote_copy(self):
        system = build("d-nuca")
        block = 0x1230
        access(system, 0, block)
        evict_from_l1(system, 0, block)   # copy in cluster 0
        out = access(system, 7, block)
        assert out.supplier in (Supplier.L2_SHARED, Supplier.L2_LOCAL)

    def test_remote_hit_migrates_one_step(self):
        system = build("d-nuca")
        arch = system.architecture
        block = 0x1230
        access(system, 0, block)
        evict_from_l1(system, 0, block)
        start_bank = arch.bank_of(block, 0)
        assert any(h.bank_id == start_bank
                   for h in system.ledger.l2_holdings(block))
        access(system, 3, block)
        assert arch.migrations >= 1
        # The surviving copy moved out of cluster 0 toward cluster 3.
        banks = {h.bank_id for h in system.ledger.l2_holdings(block)}
        assert start_bank not in banks and banks

    def test_migration_swaps_displaced_block(self):
        system = build("d-nuca")
        arch = system.architecture
        block = 0x1230
        access(system, 0, block)
        evict_from_l1(system, 0, block)
        occupancy_before = sum(b.occupancy() for b in arch.banks)
        access(system, 3, block)
        system.check_invariants()
        # Migration must not lose resident blocks.
        assert sum(b.occupancy() for b in arch.banks) >= occupancy_before - 1


class TestReplication:
    def test_writeback_replicates_into_own_cluster(self):
        system = build("d-nuca")
        arch = system.architecture
        block = 0x2230
        access(system, 0, block)
        evict_from_l1(system, 0, block)      # copy near cluster 0
        access(system, 7, block)             # borrow a token
        evict_from_l1(system, 7, block)      # second copy near cluster 7
        banks = {h.bank_id for h in system.ledger.l2_holdings(block)}
        assert len(banks) == 2
        assert arch.bank_of(block, 7) in banks
        assert arch.replications >= 1

    def test_replica_serves_local_after_migration_chain(self):
        system = build("d-nuca")
        block = 0x2230
        access(system, 0, block)
        evict_from_l1(system, 0, block)
        access(system, 7, block)
        evict_from_l1(system, 7, block)
        out = access(system, 7, block)
        assert out.supplier is Supplier.L2_LOCAL


class TestWrites:
    def test_write_collapses_all_copies(self):
        system = build("d-nuca")
        block = 0x2230
        access(system, 0, block)
        evict_from_l1(system, 0, block)
        access(system, 7, block)
        evict_from_l1(system, 7, block)
        access(system, 4, block, write=True)
        assert system.ledger.l2_holdings(block) == []
        assert system.ledger.l1_holders(block) == [4]
