"""Mesh geometry and DOR routing."""

import pytest
from hypothesis import given, strategies as st

from repro.common.config import SystemConfig
from repro.noc.topology import MeshTopology

TOPO = MeshTopology(SystemConfig())
ROUTERS = st.integers(min_value=0, max_value=7)


class TestPlacement:
    def test_router_coordinates(self):
        assert (TOPO.router_coord(0).col, TOPO.router_coord(0).row) == (0, 0)
        assert (TOPO.router_coord(3).col, TOPO.router_coord(3).row) == (3, 0)
        assert (TOPO.router_coord(4).col, TOPO.router_coord(4).row) == (0, 1)
        assert (TOPO.router_coord(7).col, TOPO.router_coord(7).row) == (3, 1)

    def test_invalid_router_rejected(self):
        with pytest.raises(ValueError):
            TOPO.router_coord(8)

    def test_banks_of_router(self):
        assert TOPO.banks_of_router(0) == (0, 1, 2, 3)
        assert TOPO.banks_of_router(7) == (28, 29, 30, 31)

    def test_router_of_bank_inverse(self):
        for bank in range(32):
            assert bank in TOPO.banks_of_router(TOPO.router_of_bank(bank))


class TestRouting:
    @given(ROUTERS, ROUTERS)
    def test_hops_is_manhattan(self, a, b):
        ca, cb = TOPO.router_coord(a), TOPO.router_coord(b)
        assert TOPO.hops(a, b) == abs(ca.col - cb.col) + abs(ca.row - cb.row)

    @given(ROUTERS, ROUTERS)
    def test_route_length_matches_hops(self, a, b):
        route = TOPO.dor_route(a, b)
        assert len(route) == TOPO.hops(a, b) + 1
        assert route[0] == a and route[-1] == b

    @given(ROUTERS, ROUTERS)
    def test_route_steps_are_neighbours(self, a, b):
        route = TOPO.dor_route(a, b)
        for u, v in zip(route, route[1:]):
            assert TOPO.hops(u, v) == 1

    def test_x_then_y_order(self):
        # 0 (0,0) -> 7 (3,1): X first then Y.
        assert list(TOPO.dor_route(0, 7)) == [0, 1, 2, 3, 7]

    def test_self_route(self):
        assert list(TOPO.dor_route(5, 5)) == [5]


class TestMemoryControllers:
    def test_left_column_prefers_controller0(self):
        mc, hops = TOPO.controller_hops(0)
        assert mc == 0 and hops == 1

    def test_right_column_prefers_controller1(self):
        mc, hops = TOPO.controller_hops(3)
        assert mc == 1 and hops == 1

    @given(ROUTERS)
    def test_controller_distance_consistent(self, router):
        mc, hops = TOPO.controller_hops(router)
        assert TOPO.controller_distance(mc, router) == hops

    def test_controller_distance_bounds(self):
        with pytest.raises(ValueError):
            TOPO.controller_distance(2, 0)
