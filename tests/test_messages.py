"""Message descriptors and flit accounting."""

from repro.noc.message import FLITS, Message, MessageKind


class TestFlits:
    def test_every_kind_priced(self):
        assert set(FLITS) == set(MessageKind)

    def test_data_messages_cost_block_plus_head(self):
        # 64B on 128-bit links: 4 data flits + 1 head.
        assert FLITS[MessageKind.RESPONSE_DATA] == 5
        assert FLITS[MessageKind.WRITEBACK] == 5

    def test_control_messages_are_single_flit(self):
        assert FLITS[MessageKind.REQUEST] == 1
        assert FLITS[MessageKind.RESPONSE_CTRL] == 1
        assert FLITS[MessageKind.FORWARD] == 1

    def test_message_flits_property(self):
        msg = Message(MessageKind.RESPONSE_DATA, 0, 1, depart=0)
        assert msg.flits == 5
