"""Shared test helpers: tiny configurations and directed-trace drivers."""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, List, Optional, Tuple

from repro.architectures.registry import make_architecture
from repro.cache.bank import SetRole
from repro.common.addresses import AddressMap
from repro.common.config import L1Config, L2Config, SystemConfig
from repro.sim.cpu import TraceItem, TraceKind
from repro.sim.engine import SimulationEngine
from repro.sim.system import CmpSystem


def tiny_config(l1_sets: int = 4, l2_sets: int = 8, l2_assoc: int = 4
                ) -> SystemConfig:
    """A full 8-core/32-bank system with very small caches, so directed
    tests hit capacity limits in a handful of accesses."""
    base = SystemConfig()
    l1 = L1Config(size=64 * 4 * l1_sets, assoc=4, block_size=64,
                  access_latency=3, tag_latency=1)
    l2 = L2Config(size=64 * l2_assoc * l2_sets * 32, num_banks=32,
                  assoc=l2_assoc, block_size=64,
                  access_latency=5, tag_latency=2)
    return replace(base, l1=l1, l2=l2)


def build(arch_name: str, config: Optional[SystemConfig] = None,
          check_tokens: bool = True) -> CmpSystem:
    config = config or tiny_config()
    return CmpSystem(config, make_architecture(arch_name, config),
                     check_tokens=check_tokens)


def access(system: CmpSystem, core: int, block: int, write: bool = False,
           t: int = 0):
    """One demand access followed by a full invariant check."""
    outcome = system.access(core, block, write, t)
    system.check_invariants()
    return outcome


def shared_block(amap: AddressMap, bank: int, index: int, tag: int = 1) -> int:
    """Construct a block address with the given *shared-map* location."""
    block = (tag << (amap.bank_bits + amap.index_bits)) \
        | (index << amap.bank_bits) | bank
    assert amap.shared_bank(block) == bank
    assert amap.shared_index(block) == index
    return block


def blocks_mapping_to_private(amap: AddressMap, core: int, bank_local: int,
                              index: int, count: int) -> List[int]:
    """``count`` distinct blocks that land in the same private-map set
    of ``core`` (useful for forcing private-partition evictions)."""
    found = []
    tag = 1
    while len(found) < count:
        block = (tag << (amap.private_bank_bits + amap.index_bits)) \
            | (index << amap.private_bank_bits) | bank_local
        assert amap.private_index(block) == index
        found.append(block)
        tag += 1
    return found


def unmonitored(system: CmpSystem, bank_id: int, index: int) -> bool:
    """True when (bank, set) plays no duel role — helping blocks are
    admitted there under the bank's plain ``nmax`` budget. Monitor-set
    placement is per-bank (see ``sampled_set_indices``), so tests must
    query the actual roles instead of assuming index parity."""
    return system.architecture.banks[bank_id].role(index) is SetRole.NORMAL


def remote_helping_block(system: CmpSystem, core: int, start: int = 0x900
                         ) -> int:
    """A block whose shared-map bank is NOT at ``core``'s router and
    whose private- and shared-map sets are both unmonitored, so helping
    blocks for it are admitted with the default budget."""
    amap = system.amap
    block = start
    while True:
        if (not system.architecture.is_local_bank(core,
                                                  amap.shared_bank(block))
                and unmonitored(system, amap.private_bank(block, core),
                                amap.private_index(block))
                and unmonitored(system, amap.shared_bank(block),
                                amap.shared_index(block))):
            return block
        block += 1


def private_overflow_blocks(system: CmpSystem, core: int, count: int
                            ) -> List[int]:
    """``count`` blocks sharing one unmonitored private-map set of
    ``core``, each with an unmonitored shared-map set outside the
    core's private banks — over-filling the set forces victim creation
    with neither the eviction set nor the victim target a monitor."""
    amap = system.amap
    private_banks = amap.private_banks(core)
    for bank_local, pbank in enumerate(private_banks):
        for index in range(system.config.l2.sets_per_bank):
            if not unmonitored(system, pbank, index):
                continue
            found: List[int] = []
            for tag in range(1, 1 << 12):
                block = (tag << (amap.private_bank_bits + amap.index_bits)) \
                    | (index << amap.private_bank_bits) | bank_local
                if (amap.shared_bank(block) not in private_banks
                        and unmonitored(system, amap.shared_bank(block),
                                        amap.shared_index(block))):
                    found.append(block)
                if len(found) == count:
                    return found
    raise AssertionError("no unmonitored private set with enough blocks")


def run_trace(system: CmpSystem, per_core: List[Optional[Iterable[TraceItem]]],
              **kwargs):
    engine = SimulationEngine(system, [iter(t) if t is not None else None
                                       for t in per_core])
    return engine.run(**kwargs)


def loads(blocks: Iterable[int], gap: int = 0) -> List[TraceItem]:
    return [TraceItem(gap=gap, block=b, kind=TraceKind.LOAD) for b in blocks]


def stores(blocks: Iterable[int], gap: int = 0) -> List[TraceItem]:
    return [TraceItem(gap=gap, block=b, kind=TraceKind.STORE) for b in blocks]
