"""Characterization tool + calibration validation of Table 1 specs."""

import pytest

from repro.sim.cpu import TraceItem, TraceKind
from repro.workloads.base import (
    SHARED_REGION_BASE,
    STREAM_REGION_BASE,
    TraceGenerator,
)
from repro.workloads.characterize import (
    CoreProfile,
    characterize,
    format_profile,
    region_of,
)
from repro.workloads.registry import get_workload


def items(blocks, kind=TraceKind.LOAD):
    return [TraceItem(gap=0, block=b, kind=kind) for b in blocks]


class TestPrimitives:
    def test_region_classification(self):
        assert region_of(100) == "private"
        assert region_of(SHARED_REGION_BASE + 5) == "shared"
        assert region_of(STREAM_REGION_BASE + 5) == "stream"

    def test_stack_distance_of_immediate_reuse_is_zero(self):
        profile = characterize([items([1, 1, 1])] + [None] * 7)
        p = profile.cores[0]
        assert p.stack_histogram[-1] == 1   # cold first touch
        assert p.stack_histogram[0] == 2    # distance-0 reuses

    def test_stack_distance_buckets(self):
        # Touch 1..5, then re-touch 1: distance 4 -> bucket 4.
        profile = characterize([items([1, 2, 3, 4, 5, 1])] + [None] * 7)
        assert profile.cores[0].stack_histogram[4] == 1

    def test_distinct_blocks(self):
        profile = characterize([items([1, 2, 1, 3])] + [None] * 7)
        assert profile.cores[0].distinct_blocks == 3

    def test_write_and_dep_ratios(self):
        trace = items([1, 2], TraceKind.STORE) + \
            items([3], TraceKind.DEP_LOAD) + items([4])
        p = characterize([trace] + [None] * 7).cores[0]
        assert p.write_ratio == 0.5
        assert p.dep_ratio == 0.25

    def test_sharing_degree(self):
        shared = SHARED_REGION_BASE + 1
        traces = [items([shared]), items([shared]), items([shared + 1])]
        profile = characterize(traces + [None] * 5)
        assert profile.sharing_degree == pytest.approx(1.5)

    def test_reuse_within(self):
        p = CoreProfile(references=10,
                        stack_histogram={-1: 4, 0: 3, 256: 2, 1024: 1})
        assert p.reuse_within(512) == pytest.approx(0.3 + 0.2)


class TestCalibrationClaims:
    """The DESIGN.md §7 calibration statements, measured."""

    @pytest.fixture(scope="class")
    def profiles(self):
        out = {}
        for name in ("apache", "CG", "art-4", "gzip-4"):
            spec = get_workload(name).capacity_scaled(8).scaled(4000)
            traces = [list(t) if t is not None else None
                      for t in TraceGenerator(spec, 7).traces(8)]
            out[name] = characterize(traces)
        return out

    def test_transactional_sharing(self, profiles):
        apache = profiles["apache"]
        assert 0.30 < apache.aggregate_region_fraction("shared") < 0.55
        assert apache.sharing_degree > 2.0  # genuinely multi-reader

    def test_nas_low_sharing(self, profiles):
        cg = profiles["CG"]
        assert cg.aggregate_region_fraction("shared") < 0.2
        assert cg.aggregate_region_fraction("stream") > 0.03

    def test_art_is_low_locality(self, profiles):
        """art's reuse beyond the L1 range is poor relative to gzip —
        the loop/footprint structure that drives Figure 9."""
        art = profiles["art-4"].cores[0]
        gzip_ = profiles["gzip-4"].cores[0]
        assert art.reuse_within(256) < gzip_.reuse_within(256)

    def test_half_rate_activates_five_cores(self, profiles):
        art = profiles["art-4"]
        assert set(art.cores) == {0, 1, 2, 3, 4}
        # The service core is light.
        assert art.cores[4].references < art.cores[0].references

    def test_format_is_readable(self, profiles):
        text = format_profile(profiles["apache"])
        assert "sharing degree" in text
        assert text.count("\n") >= 8
