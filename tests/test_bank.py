"""CacheBank: lookups, statistics, roles, monitor hook."""

from repro.cache.bank import CacheBank, SetRole
from repro.cache.block import BlockClass, CacheBlock


def entry(addr, cls=BlockClass.SHARED, owner=-1):
    return CacheBlock(block=addr, cls=cls, owner=owner, tokens=1)


class TestLookup:
    def test_hit_and_miss_statistics(self):
        bank = CacheBank(0, num_sets=2, ways=2)
        bank.allocate(0, entry(0x10))
        assert bank.lookup(0, 0x10) is not None
        assert bank.lookup(0, 0x20) is None
        assert bank.hits[BlockClass.SHARED] == 1
        assert bank.misses == 1
        assert bank.total_hits == 1

    def test_lookup_touches_lru(self):
        bank = CacheBank(0, num_sets=1, ways=2)
        a, b = entry(1), entry(2)
        bank.allocate(0, a)
        bank.allocate(0, b)
        bank.lookup(0, 1)  # a becomes MRU
        _, evicted = bank.allocate(0, entry(3))
        assert evicted is b

    def test_peek_does_not_touch_or_record(self):
        bank = CacheBank(0, num_sets=1, ways=2)
        a, b = entry(1), entry(2)
        bank.allocate(0, a)
        bank.allocate(0, b)
        bank.peek(0, 1)
        assert bank.misses == 0 and bank.total_hits == 0
        _, evicted = bank.allocate(0, entry(3))
        assert evicted is a  # peek did not refresh a


class TestHelpingLimit:
    def test_unbounded_without_nmax(self):
        bank = CacheBank(0, num_sets=4, ways=8)
        assert bank.helping_limit(0) == 8

    def test_roles_modulate_nmax(self):
        bank = CacheBank(0, num_sets=4, ways=8)
        bank.nmax = 3
        bank.assign_role(0, SetRole.REFERENCE)
        bank.assign_role(1, SetRole.EXPLORER)
        bank.assign_role(2, SetRole.CONVENTIONAL_SAMPLE)
        assert bank.helping_limit(0) == 0
        assert bank.helping_limit(1) == 4
        assert bank.helping_limit(2) == 3
        assert bank.helping_limit(3) == 3

    def test_explorer_capped_at_ways(self):
        bank = CacheBank(0, num_sets=1, ways=4)
        bank.nmax = 4
        bank.assign_role(0, SetRole.EXPLORER)
        assert bank.helping_limit(0) == 4


class TestMonitorHook:
    def test_monitor_called_only_for_assigned_sets(self):
        bank = CacheBank(0, num_sets=2, ways=2)
        events = []
        bank.monitor = lambda b, s, fc: events.append((s, fc))
        bank.assign_role(0, SetRole.REFERENCE)
        bank.allocate(0, entry(0x10))
        bank.lookup(0, 0x10)       # monitored, first-class hit
        bank.lookup(1, 0x999)      # unmonitored set
        assert events == [(0, True)]

    def test_helping_hit_reports_not_first_class(self):
        bank = CacheBank(0, num_sets=1, ways=2)
        events = []
        bank.monitor = lambda b, s, fc: events.append(fc)
        bank.assign_role(0, SetRole.CONVENTIONAL_SAMPLE)
        bank.allocate(0, entry(0x10, BlockClass.REPLICA, owner=0))
        bank.lookup(0, 0x10)
        bank.lookup(0, 0x77)
        assert events == [False, False]


class TestMutators:
    def test_reclassify_and_occupancy(self):
        bank = CacheBank(0, num_sets=1, ways=2)
        victim = entry(1, BlockClass.VICTIM, owner=3)
        bank.allocate(0, victim)
        assert bank.occupancy() == 1
        bank.reclassify(0, victim, BlockClass.SHARED)
        assert victim.cls is BlockClass.SHARED

    def test_remove(self):
        bank = CacheBank(0, num_sets=1, ways=2)
        e = entry(1)
        bank.allocate(0, e)
        bank.remove(0, e)
        assert bank.occupancy() == 0

    def test_reset_stats(self):
        bank = CacheBank(0, num_sets=1, ways=2)
        bank.allocate(0, entry(1))
        bank.lookup(0, 1)
        bank.reset_stats()
        assert bank.total_hits == 0 and bank.allocations == 0
