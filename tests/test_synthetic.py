"""Synthetic trace helpers used by tests and examples."""

from repro.sim.cpu import TraceKind
from repro.workloads.synthetic import (
    mixed,
    repeat_blocks,
    single_core_traces,
    stream,
)


class TestBuilders:
    def test_repeat_blocks(self):
        items = list(repeat_blocks([1, 2], repetitions=3, gap=5))
        assert len(items) == 6
        assert [i.block for i in items] == [1, 2, 1, 2, 1, 2]
        assert all(i.gap == 5 and i.kind is TraceKind.LOAD for i in items)

    def test_stream(self):
        items = list(stream(base=100, length=4))
        assert [i.block for i in items] == [100, 101, 102, 103]

    def test_mixed(self):
        items = list(mixed([(1, TraceKind.STORE), (2, TraceKind.DEP_LOAD)]))
        assert items[0].kind is TraceKind.STORE
        assert items[1].kind is TraceKind.DEP_LOAD

    def test_single_core_traces(self):
        traces = single_core_traces(8, 3, iter([]))
        assert traces[3] is not None
        assert sum(1 for t in traces if t is not None) == 1
