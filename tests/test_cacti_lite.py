"""CACTI-lite latency model."""

import pytest

from repro.common.cacti_lite import (
    check_table2,
    data_latency,
    tag_latency,
    with_rescaled_latencies,
)
from repro.common.config import SystemConfig, scaled_config


class TestCalibration:
    def test_reproduces_table2_anchors(self):
        assert data_latency(32 * 1024) == 3
        assert tag_latency(32 * 1024) == 1
        assert data_latency(256 * 1024) == 5
        assert tag_latency(256 * 1024) == 2

    def test_check_table2(self):
        assert check_table2(SystemConfig())

    def test_monotone_in_capacity(self):
        sizes = [8 * 1024, 32 * 1024, 128 * 1024, 512 * 1024, 2 << 20]
        data = [data_latency(s) for s in sizes]
        assert data == sorted(data)

    def test_small_arrays_clamped_at_l1_speed(self):
        assert data_latency(4 * 1024) == 3
        assert tag_latency(4 * 1024) == 1

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            data_latency(0)


class TestRescaling:
    def test_scaled_banks_get_faster(self):
        small = with_rescaled_latencies(scaled_config(8))
        # 32 KB banks at scale 8: L1-class latency.
        assert small.l2.access_latency == 3
        assert small.l2.tag_latency == 1
        assert small.l1.access_latency == 3  # clamped

    def test_full_config_unchanged_by_rescale(self):
        full = with_rescaled_latencies(SystemConfig())
        assert full.l2.access_latency == 5
        assert full.l1.tag_latency == 1

    def test_rescaled_config_still_simulates(self):
        from repro.architectures.registry import make_architecture
        from repro.sim.system import CmpSystem
        from tests.util import access

        config = with_rescaled_latencies(scaled_config(8))
        system = CmpSystem(config, make_architecture("esp-nuca", config),
                           check_tokens=True)
        for i in range(40):
            access(system, i % 8, 0x100 + i * 3, t=i * 5)
        system.check_invariants()
