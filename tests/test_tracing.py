"""Access tracer (protocol debugging aid)."""

import pytest

from repro.sim.request import Supplier
from repro.sim.tracing import AccessTracer

from tests.util import build


class TestTracer:
    def test_records_events_with_outcomes(self):
        system = build("sp-nuca", check_tokens=False)
        tracer = AccessTracer(system).install()
        system.access(0, 0x123, False, 0)
        system.access(0, 0x123, False, 1000)
        assert len(tracer.events) == 2
        assert tracer.events[0].supplier is Supplier.OFFCHIP
        assert tracer.events[1].supplier is Supplier.L1_LOCAL
        assert tracer.events[0].latency > tracer.events[1].latency

    def test_classification_captured(self):
        system = build("sp-nuca", check_tokens=False)
        tracer = AccessTracer(system).install()
        system.access(2, 0x44, False, 0)
        assert tracer.events[0].classification == "private"

    def test_filters(self):
        system = build("shared", check_tokens=False)
        tracer = AccessTracer(system, core_filter=lambda c: c == 1).install()
        system.access(0, 0x1, False, 0)
        system.access(1, 0x2, False, 0)
        assert len(tracer.events) == 1
        assert tracer.events[0].core == 1

    def test_limit_drops_and_reports(self):
        system = build("shared", check_tokens=False)
        tracer = AccessTracer(system, limit=2).install()
        for i in range(5):
            system.access(0, 0x100 + i, False, i * 10)
        assert len(tracer.events) == 2
        assert tracer.dropped == 3
        assert "dropped" in tracer.format()

    def test_uninstall_restores(self):
        system = build("shared", check_tokens=False)
        tracer = AccessTracer(system).install()
        assert system.tracer.enabled  # listener-only tracer in place
        tracer.uninstall()
        assert not system.tracer.enabled  # back to the null tracer
        system.access(0, 0x1, False, 0)
        assert tracer.events == []

    def test_context_manager_detaches_on_exception(self):
        system = build("shared", check_tokens=False)
        tracer = AccessTracer(system)
        with pytest.raises(RuntimeError):
            with tracer:
                system.access(0, 0x1, False, 0)
                raise RuntimeError("mid-trace failure")
        assert not system.tracer.enabled
        assert len(tracer.events) == 1
        system.access(0, 0x2, False, 100)
        assert len(tracer.events) == 1  # detached: no longer recording

    def test_queries_and_format(self):
        system = build("shared", check_tokens=False)
        tracer = AccessTracer(system).install()
        system.access(0, 0xAA, True, 0)
        system.access(3, 0xBB, False, 50)
        assert len(tracer.for_block(0xAA)) == 1
        assert len(tracer.by_supplier(Supplier.OFFCHIP)) == 2
        text = tracer.format(last=1)
        assert "bb" in text and "core 3" in text
