"""Make the src layout importable without installation.

The reproduction targets offline environments where ``pip install -e .``
may be unavailable (no ``wheel`` package, no network for build
isolation); inserting ``src`` here lets ``pytest`` run from a bare
checkout. An installed copy, when present, takes the same code anyway
(editable install points back at ``src``).
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))
