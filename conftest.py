"""Make the src layout importable without installation.

The reproduction targets offline environments where ``pip install -e .``
may be unavailable (no ``wheel`` package, no network for build
isolation); inserting ``src`` here lets ``pytest`` run from a bare
checkout. An installed copy, when present, takes the same code anyway
(editable install points back at ``src``).

Also honors ``REPRO_TEST_TIMEOUT`` (seconds): a suite-level deadline
for the whole pytest run, so a hung server or deadlocked worker in CI
fails fast with tracebacks of every thread instead of eating the job's
30-minute budget. ``faulthandler.dump_traceback_later`` runs its
watchdog off-thread, so it fires even when the main thread is stuck in
a blocking C call (socket read, lock acquire) where a Python-level
signal handler never would. Unset (the default) means no deadline.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))


def _arm_suite_deadline():
    raw = os.environ.get("REPRO_TEST_TIMEOUT", "").strip()
    if not raw:
        return
    try:
        seconds = int(raw)
    except ValueError:
        raise ValueError(f"REPRO_TEST_TIMEOUT must be an integer number "
                         f"of seconds, got {raw!r}") from None
    if seconds <= 0:
        raise ValueError(f"REPRO_TEST_TIMEOUT must be > 0, got {seconds}")
    import faulthandler

    faulthandler.dump_traceback_later(seconds, exit=True)


_arm_suite_deadline()
