#!/usr/bin/env python3
"""Compare all six architecture families on one workload.

Reproduces one column of Figures 8/9/10 at small scale: run the same
trace (paired) through every architecture and print shared-normalized
performance plus the on/off-chip balance of Figure 7.

Run:  python examples/architecture_comparison.py [workload]
      (default workload: oltp; try art-4 to see the private-cache
      capacity collapse, or gcc-gzip for the isolation scenario)
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.architectures.registry import FIGURE_ARCHITECTURES
from repro.harness.reporting import format_table
from repro.harness.runner import ExperimentRunner, RunSettings


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "oltp"
    runner = ExperimentRunner(RunSettings(
        capacity_factor=8, refs_per_core=12_000,
        warmup_refs_per_core=8_000, num_seeds=1))
    print(f"running {len(FIGURE_ARCHITECTURES)} architectures on "
          f"{workload!r} (paired traces, one seed)...\n")
    base = runner.aggregate("shared", workload)
    rows = []
    for arch in FIGURE_ARCHITECTURES:
        agg = runner.aggregate(arch, workload)
        rows.append([
            arch,
            agg.performance / base.performance,
            agg.average_access_time,
            agg.onchip_latency / base.onchip_latency,
            agg.offchip_per_kilo_access / max(base.offchip_per_kilo_access,
                                              1e-9),
        ])
    print(format_table(
        ["architecture", "perf vs shared", "avg access (cyc)",
         "on-chip latency vs shared", "off-chip traffic vs shared"],
        rows))
    print("\nreading guide: ESP-NUCA aims for private-like on-chip "
          "latency at shared-like off-chip traffic (Figure 7).")


if __name__ == "__main__":
    main()
