#!/usr/bin/env python3
"""Quickstart: build an ESP-NUCA CMP, run a workload, read the results.

The public API in five steps:

1. pick a configuration   (``SystemConfig`` / ``scaled_config``)
2. pick an architecture   (``make_architecture`` or a class)
3. assemble the system    (``CmpSystem``)
4. generate a workload    (``TraceGenerator`` over a Table 1 spec)
5. run and inspect        (``SimulationEngine.run`` -> ``SimResult``)

Run:  python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.architectures.registry import make_architecture
from repro.common.config import scaled_config
from repro.metrics.decomposition import COMPONENT_ORDER
from repro.sim.engine import SimulationEngine
from repro.sim.system import CmpSystem
from repro.workloads.base import TraceGenerator
from repro.workloads.registry import get_workload


def main() -> None:
    # A capacity-scaled copy of the paper's Table 2 system (factor 8:
    # same ratios, traces warm up 8x faster — see DESIGN.md).
    config = scaled_config(8)

    architecture = make_architecture("esp-nuca", config)
    system = CmpSystem(config, architecture)

    # Table 1 workload, scaled to match the configuration.
    spec = get_workload("apache").capacity_scaled(8).scaled(20_000)
    traces = TraceGenerator(spec, seed=1).traces(config.num_cores)

    engine = SimulationEngine(system, traces)
    result = engine.run(warmup_refs_per_core=8_000)

    print(f"architecture : {architecture.name}")
    print(f"workload     : {spec.name} ({spec.description})")
    print(f"cycles       : {result.cycles:,}")
    print(f"instructions : {result.instructions:,}")
    print(f"aggregate IPC: {result.performance:.3f}")
    print(f"avg access   : {result.average_access_time:.1f} cycles")
    print(f"off-chip     : {result.offchip_accesses_per_kilo_access:.1f} "
          f"per 1000 accesses")
    print("\naccess-time decomposition (cycles of the average access):")
    for supplier in COMPONENT_ORDER:
        contribution = result.access_time_component(supplier)
        share = result.supplier_count[supplier] / result.memory_accesses
        print(f"  {supplier.value:18s} {contribution:7.2f}   "
              f"({share * 100:5.1f}% of accesses)")
    print("\nESP-NUCA internals:")
    print(f"  replicas created {architecture.replicas_created:,}, "
          f"hits {architecture.replica_hits:,}")
    print(f"  victims  created {architecture.victims_created:,}, "
          f"hits {architecture.victim_hits:,}")
    print(f"  average helping budget nmax = "
          f"{architecture.duel.average_nmax():.2f} ways of "
          f"{config.l2.assoc}")


if __name__ == "__main__":
    main()
