#!/usr/bin/env python3
"""Inter-thread interference: the hybrid-workload scenario of Section 6.3.

Four copies of a thrashing program (art-like) share the chip with four
copies of a cache-friendly one (gzip-like). A shared cache lets the
thrasher destroy its neighbour; isolation-capable organizations keep
them apart. The script prints per-core IPCs so the victim threads are
visible individually.

Run:  python examples/interference_isolation.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.architectures.registry import make_architecture
from repro.common.config import scaled_config
from repro.harness.reporting import format_table
from repro.sim.engine import SimulationEngine
from repro.sim.system import CmpSystem
from repro.workloads.base import TraceGenerator
from repro.workloads.registry import get_workload


def main() -> None:
    config = scaled_config(8)
    spec = get_workload("art-gzip").capacity_scaled(8).scaled(15_000)
    rows = []
    for arch_name in ("shared", "private", "cc30", "esp-nuca"):
        system = CmpSystem(config, make_architecture(arch_name, config))
        traces = TraceGenerator(spec, seed=1).traces(config.num_cores)
        result = SimulationEngine(system, traces).run(
            warmup_refs_per_core=6_000)
        per_core_ipc = [
            (instr / cyc if cyc else 0.0)
            for instr, cyc in zip(result.per_core_instructions,
                                  result.per_core_cycles)
        ]
        art_ipc = sum(per_core_ipc[:4]) / 4
        gzip_ipc = sum(per_core_ipc[4:]) / 4
        rows.append([arch_name, art_ipc, gzip_ipc,
                     result.performance])
    print("art (cores 0-3) thrashes; gzip (cores 4-7) is the victim\n")
    print(format_table(
        ["architecture", "art IPC", "gzip IPC", "aggregate IPC"], rows))
    print("\nreading guide: on 'shared', gzip loses IPC because art's "
          "loop floods the pool; private isolates gzip fully; ESP-NUCA "
          "bounds art's victims through protected LRU, so gzip keeps "
          "most of its isolation without giving up adaptivity.")


if __name__ == "__main__":
    main()
