#!/usr/bin/env python3
"""Watch ESP-NUCA's set-dueling controller adapt nmax on-line.

Two scenarios from Section 3.2 / Figure 3:

* **unbalanced** — a single thread whose working set overflows its
  private partition: victims flow into the idle cores' banks, whose
  duel controllers discover helping blocks are free and raise nmax;
* **high utility** — every core's first-class working set fills its
  banks: controllers push nmax down to protect first-class blocks.

Run:  python examples/adaptive_nmax.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.common.config import scaled_config
from repro.core.esp_nuca import EspNuca
from repro.sim.cpu import TraceItem, TraceKind
from repro.sim.engine import SimulationEngine
from repro.sim.system import CmpSystem


def looping_trace(base: int, footprint: int, laps: int):
    for _ in range(laps):
        for offset in range(footprint):
            yield TraceItem(gap=2, block=base + offset, kind=TraceKind.LOAD)


def nmax_histogram(arch: EspNuca) -> str:
    counts = {}
    for bank in arch.banks:
        state = arch.duel.state_of(bank.bank_id)
        counts[state.nmax] = counts.get(state.nmax, 0) + 1
    return "  ".join(f"nmax={k}:{v} banks" for k, v in sorted(counts.items()))


def run_scenario(title: str, traces) -> None:
    from repro.core.timeline import TimelineRecorder

    config = scaled_config(8)
    arch = EspNuca(config)
    system = CmpSystem(config, arch)
    with TimelineRecorder(arch, period=512) as recorder:
        result = SimulationEngine(system, traces).run()
    print(f"--- {title} ---")
    print(f"  IPC {result.performance:.3f}, "
          f"off-chip {result.offchip_accesses_per_kilo_access:.1f}/1000")
    print(f"  victims {arch.victims_created:,} (hits {arch.victim_hits:,}), "
          f"replicas {arch.replicas_created:,} (hits {arch.replica_hits:,})")
    print(f"  bank budgets: {nmax_histogram(arch)}")
    if recorder.samples:
        print(f"  nmax over time: "
              f"{recorder.sparkline('average_nmax', width=60)}")
    print()


def main() -> None:
    config = scaled_config(8)
    partition = (config.l2.sets_per_bank * config.l2.assoc
                 * config.private_banks_per_core)

    # Scenario A: one thread, working set 2.5x its private partition.
    big = int(partition * 2.5)
    traces = [None] * 8
    traces[0] = looping_trace(1 << 20, big, laps=4)
    run_scenario(f"single thread, {big}-block loop (partition = "
                 f"{partition} blocks): victims welcome", traces)

    # Scenario B: eight high-utility threads with realistic locality
    # (hot-front working sets sized to the partition). Victims and
    # replicas would displace hot first-class blocks; the
    # conventional-vs-reference duel sees the degradation and keeps the
    # helping budget well below scenario A's.
    from repro.workloads.base import TraceGenerator, WorkloadSpec

    spec = WorkloadSpec(
        name="high-utility", family="synthetic",
        active_cores=tuple(range(8)), refs_per_core=12_000,
        private_footprint_blocks=int(partition * 1.15),
        shared_footprint_blocks=256, shared_fraction=0.08,
        locality=1.6, reuse_fraction=0.6, os_noise=0.0)
    traces = TraceGenerator(spec, seed=1).traces(8)
    run_scenario("8 high-utility threads (hot sets ~1.15x partition): "
                 "helping blocks are bounded", traces)


if __name__ == "__main__":
    main()
