#!/usr/bin/env python3
"""QoS on top of ESP-NUCA — the paper's future-work extension, built.

Section 5.2 observes that a "dynamically defined d parameter provides
the opportunity to add some Quality of Service Policy on top of
ESP-NUCA". Here: a latency-critical service on core 0 shares the chip
with seven background batch threads that overflow their partitions.
With plain ESP-NUCA the batch threads' victims creep into every bank;
with QoS classes the service core's banks expel helping blocks at the
first sign of first-class degradation while the background banks donate
capacity freely.

Run:  python examples/qos_priorities.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.common.config import scaled_config
from repro.core.esp_nuca import EspNuca
from repro.core.qos import QosClass, QosEspNuca, protection_summary
from repro.sim.engine import SimulationEngine
from repro.sim.system import CmpSystem
from repro.workloads.base import TraceGenerator, WorkloadSpec


def build_spec(partition: int) -> WorkloadSpec:
    service = WorkloadSpec(
        name="latency-service", family="synthetic", active_cores=(0,),
        refs_per_core=15_000,
        private_footprint_blocks=int(partition * 0.8),
        shared_fraction=0.0, locality=1.5, reuse_fraction=0.6,
        dep_fraction=0.3, os_noise=0.0,
        description="latency-critical, fits its partition")
    batch = WorkloadSpec(
        name="batch", family="synthetic", active_cores=tuple(range(8)),
        refs_per_core=15_000,
        private_footprint_blocks=int(partition * 2.0),
        shared_fraction=0.0, locality=1.2, reuse_fraction=0.55,
        stream_fraction=0.15, os_noise=0.0,
        description="capacity-hungry background work")
    return WorkloadSpec(
        name="qos-mix", family="synthetic", active_cores=tuple(range(8)),
        refs_per_core=15_000, per_core={0: service,
                                        **{c: batch for c in range(1, 8)}})


def run(arch, spec, config):
    system = CmpSystem(config, arch)
    traces = TraceGenerator(spec, seed=1).traces(8)
    result = SimulationEngine(system, traces).run(warmup_refs_per_core=6_000)
    ipc = [i / c if c else 0.0
           for i, c in zip(result.per_core_instructions,
                           result.per_core_cycles)]
    return result, ipc


def main() -> None:
    config = scaled_config(8)
    partition = (config.l2.sets_per_bank * config.l2.assoc
                 * config.private_banks_per_core)
    spec = build_spec(partition)

    plain, plain_ipc = run(EspNuca(config), spec, config)

    qos_arch = QosEspNuca(config, core_classes={
        0: QosClass.HIGH,
        **{c: QosClass.BACKGROUND for c in range(1, 8)}})
    qos, qos_ipc = run(qos_arch, spec, config)

    print("latency-critical service on core 0, 7 thrashing batch threads\n")
    print(f"{'':24s}{'plain esp-nuca':>16s}{'esp-nuca-qos':>16s}")
    print(f"{'service IPC (core 0)':24s}{plain_ipc[0]:>16.3f}{qos_ipc[0]:>16.3f}")
    batch_plain = sum(plain_ipc[1:]) / 7
    batch_qos = sum(qos_ipc[1:]) / 7
    print(f"{'batch IPC (avg 1-7)':24s}{batch_plain:>16.3f}{batch_qos:>16.3f}")
    print(f"{'aggregate IPC':24s}{plain.performance:>16.3f}"
          f"{qos.performance:>16.3f}")
    print("\nper-class helping budgets under QoS:")
    for line in protection_summary(qos_arch):
        print("  " + line)
    delta = (qos_ipc[0] / plain_ipc[0] - 1) * 100 if plain_ipc[0] else 0.0
    print(f"\nservice-core IPC change under QoS: {delta:+.1f}%")


if __name__ == "__main__":
    main()
