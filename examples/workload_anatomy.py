#!/usr/bin/env python3
"""Inspect what the synthetic workloads are made of.

The reproduction's workload generators are *claims* about the paper's
benchmarks (sharing degree, footprints, locality). This example runs
the characterization tool over one workload per family and prints the
measured quantities next to the claims, plus a custom mix built with
the public MixBuilder API.

Run:  python examples/workload_anatomy.py [workload ...]
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.workloads.base import TraceGenerator
from repro.workloads.characterize import characterize, format_profile
from repro.workloads.mixes import MixBuilder, program
from repro.workloads.registry import get_workload

DEFAULTS = ["apache", "mcf-4", "gcc-twolf", "FT"]

CLAIMS = {
    "apache": "transactional: all 8 cores, ~40% shared accesses with a "
              "hot head, OS noise",
    "mcf-4": "half rate: 4 heavy cores + light service core, "
             "pointer-chasing loops over a partition-busting buffer",
    "gcc-twolf": "hybrid: gcc on cores 0-3, twolf on 4-7, no sharing",
    "FT": "NAS: 8 cores, ~8% sharing, heavy streaming",
}


def show(name: str) -> None:
    spec = get_workload(name).capacity_scaled(8).scaled(3000)
    traces = [list(t) if t is not None else None
              for t in TraceGenerator(spec, seed=1).traces(8)]
    profile = characterize(traces)
    print(f"=== {name} ===")
    if name in CLAIMS:
        print(f"claim: {CLAIMS[name]}")
    print(format_profile(profile))
    print()


def show_custom_mix() -> None:
    scan = program("scanner", footprint_blocks=256,
                   loop_blocks=4096, loop_fraction=0.5,
                   refs_per_core=3000,
                   description="cyclic scan, LRU-hostile")
    service = program("service", footprint_blocks=512,
                      shared_blocks=256, shared_fraction=0.3,
                      dep_fraction=0.2, refs_per_core=3000)
    mix = (MixBuilder("custom-demo")
           .assign([0, 1], scan)
           .assign([2, 3, 4], service)
           .idle([5, 6, 7])
           .build())
    traces = [list(t) if t is not None else None
              for t in TraceGenerator(mix, seed=1).traces(8)]
    print("=== custom mix (MixBuilder) ===")
    print(f"description: {mix.description}")
    print(format_profile(characterize(traces)))


def main() -> None:
    names = sys.argv[1:] or DEFAULTS
    for name in names:
        show(name)
    show_custom_mix()


if __name__ == "__main__":
    main()
