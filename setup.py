"""Legacy shim so ``pip install -e . --no-build-isolation`` works in
offline environments without the ``wheel`` package."""

from setuptools import setup

setup()
