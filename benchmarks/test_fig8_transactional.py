"""Figure 8 — shared-normalized performance, transactional workloads.

Series: shared, private, D-NUCA, ASR, CC (avg with best/worst), and
ESP-NUCA, plus the geometric mean. Expected shape: ESP-NUCA improves
clearly on the shared baseline (paper: ~+15% average) and on the plain
private organization's average, with CC highly variable across its
cooperation probabilities.
"""

from repro.harness.experiments import TRANSACTIONAL, run_experiment

from benchmarks.conftest import emit


def test_fig8_transactional(benchmark, runner):
    report = benchmark.pedantic(
        run_experiment, args=("fig8", runner), rounds=1, iterations=1)
    emit(report)
    assert report.columns == TRANSACTIONAL + ["GMEAN"]
    gmean = {name: values[-1] for name, values in report.series.items()}
    assert gmean["shared"] == 1.0
    # ESP-NUCA beats the shared baseline on every transactional
    # workload (the paper's headline for this suite).
    assert all(v > 1.0 for v in report.series["esp-nuca"][:-1])
    assert gmean["esp-nuca"] > 1.05
    # CC's spread is wide (the paper's variability argument).
    assert all(b >= w for b, w in zip(report.series["cc-best"],
                                      report.series["cc-worst"]))
