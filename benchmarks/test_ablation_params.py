"""Section 5.2 ablations — sensitivity of ESP-NUCA to the duel
parameters (d, a, b) and the number of monitored conventional sets.

The paper fixed (b=8, a=1, d=3, 2 monitored conventional sets) "after
sweeping all parameters" on its infrastructure; this bench re-runs that
sweep on ours (which lands at d=5 with a longer update period — the
trace model shifts the helping-block break-even point; see DESIGN.md).
"""

from repro.harness.experiments import run_experiment

from benchmarks.conftest import emit


def test_ablation_params(benchmark, runner):
    report = benchmark.pedantic(
        run_experiment, args=("ablation", runner), rounds=1, iterations=1)
    emit(report)
    assert "d=3 (paper)" in report.series
    gmeans = {name: values[-1] for name, values in report.series.items()}
    # Every variant must stay in a sane band of SP-NUCA: the duel
    # parameters tune, they do not break.
    for name, gmean in gmeans.items():
        assert 0.6 < gmean < 1.6, f"{name} out of band: {gmean}"
