"""Figure 9 — shared-normalized performance, multiprogrammed workloads.

Ten workloads: five SPEC half-rate (4 instances + system services) and
five hybrids (4+4). Expected shapes: architectures without a capacity
balancing mechanism (private, ASR) fall well below shared on the
large-footprint half-rate workloads (art, mcf — paper: up to 40%
worse); the hybrids favour isolation; ESP-NUCA adapts to both and never
collapses.
"""

from repro.harness.experiments import MULTIPROGRAMMED, run_experiment

from benchmarks.conftest import emit


def test_fig9_multiprogrammed(benchmark, runner):
    report = benchmark.pedantic(
        run_experiment, args=("fig9", runner), rounds=1, iterations=1)
    emit(report)
    assert report.columns == MULTIPROGRAMMED + ["GMEAN"]
    art = report.columns.index("art-4")
    # The capacity story: art half-rate is where private falls below
    # the shared baseline (down to ~0.75 at full fidelity; the gap
    # compresses at reduced fidelity but the sign must hold)...
    assert report.series["private"][art] < 1.0
    # ...while ESP-NUCA recovers the gap through victims.
    assert report.series["esp-nuca"][art] > report.series["private"][art]
    # ESP-NUCA's worst case across the suite stays above the private
    # organization's worst case (stability).
    assert min(report.series["esp-nuca"][:-1]) >= \
        min(report.series["private"][:-1])
