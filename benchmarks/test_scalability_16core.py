"""Scalability study — 8 vs 16 cores (the introduction's motivation).

Not a paper figure: the paper motivates adaptive NUCA by core-count
growth and evaluates at 8 cores; this bench checks the headline
comparison (ESP-NUCA vs shared vs private on a shared-heavy workload)
keeps its shape when the chip doubles with per-core resources held
constant.
"""

from benchmarks.conftest import emit
from repro.architectures.registry import make_architecture
from repro.common.config import many_core_config, scaled_config
from repro.harness.reporting import ExperimentReport
from repro.sim.engine import SimulationEngine
from repro.sim.system import CmpSystem
from repro.workloads.base import TraceGenerator
from repro.workloads.mixes import MixBuilder, program

ARCHS = ["shared", "private", "esp-nuca"]


def _mix(num_cores, partition, refs):
    app = program("txn", footprint_blocks=int(partition * 0.6),
                  shared_blocks=int(partition * 0.6),
                  shared_fraction=0.4, dep_fraction=0.1,
                  refs_per_core=refs,
                  description="transactional-like, shared-heavy")
    return MixBuilder(f"txn{num_cores}", num_cores=num_cores).assign(
        range(num_cores), app).build()


def _run(config, arch, mix, refs):
    system = CmpSystem(config, make_architecture(arch, config))
    engine = SimulationEngine(
        system, TraceGenerator(mix, seed=1).traces(config.num_cores))
    return engine.run(max_refs_per_core=refs // 2,
                      warmup_refs_per_core=refs // 2)


def _build(runner):
    refs = max(2000, runner.settings.refs_per_core // 2)
    report = ExperimentReport(
        experiment="scalability",
        title="Shared-normalized performance at 8 and 16 cores",
        columns=["8 cores", "16 cores"])
    configs = {
        "8 cores": scaled_config(runner.settings.capacity_factor),
        "16 cores": many_core_config(
            16, capacity_factor=runner.settings.capacity_factor),
    }
    results = {}
    for label, config in configs.items():
        partition = (config.l2.sets_per_bank * config.l2.assoc
                     * config.private_banks_per_core)
        mix = _mix(config.num_cores, partition, refs)
        for arch in ARCHS:
            results[(arch, label)] = _run(config, arch, mix, refs)
    for arch in ARCHS:
        report.series[arch] = [
            results[(arch, label)].performance
            / results[("shared", label)].performance
            for label in configs
        ]
    report.notes.append(
        "per-core resources constant; larger mesh = longer average "
        "shared-bank distance, so locality mechanisms matter *more* "
        "at 16 cores")
    return report


def test_scalability_16core(benchmark, runner):
    report = benchmark.pedantic(_build, args=(runner,),
                                rounds=1, iterations=1)
    emit(report)
    esp8, esp16 = report.series["esp-nuca"]
    assert esp8 > 1.0 and esp16 > 1.0
    # The adaptive win does not shrink when the chip scales out.
    assert esp16 > esp8 - 0.1
