"""Substrate-sensitivity ablations: do the paper's conclusions survive
changes to the parts of the model the paper does not specify?

* **MLP sensitivity** — cores with 1 / 4 / 16 outstanding misses;
* **NoC contention on/off** — idealized (uncontended) links;
* **memory latency** — 250 vs 350 vs 500 cycles.

The quantity checked is the sign of the headline comparison (ESP-NUCA
vs shared) on one latency-bound and one capacity-bound workload.
"""

from dataclasses import replace

from benchmarks.conftest import emit
from repro.harness.reporting import ExperimentReport
from repro.sim.engine import SimulationEngine
from repro.sim.system import CmpSystem
from repro.workloads.base import TraceGenerator
from repro.workloads.registry import get_workload


def _run(runner, arch_name, workload, config, contention=True):
    from repro.architectures.registry import make_architecture

    system = CmpSystem(config, make_architecture(arch_name, config))
    system.network.model_contention = contention
    spec = (get_workload(workload)
            .capacity_scaled(runner.settings.capacity_factor)
            .scaled(runner.settings.refs_per_core
                    + runner.settings.warmup_refs_per_core))
    traces = TraceGenerator(spec, runner.seeds[0]).traces(config.num_cores)
    engine = SimulationEngine(system, traces)
    return engine.run(
        max_refs_per_core=runner.settings.refs_per_core,
        warmup_refs_per_core=runner.settings.warmup_refs_per_core)


def _build(runner):
    base_cfg = runner.config
    variants = {
        "baseline": (base_cfg, True),
        "mlp=1": (replace(base_cfg, core=replace(base_cfg.core,
                                                 max_outstanding=1)),
                  True),
        "mlp=4": (replace(base_cfg, core=replace(base_cfg.core,
                                                 max_outstanding=4)),
                  True),
        "ideal-noc": (base_cfg, False),
        "mem=250": (replace(base_cfg, mem=replace(base_cfg.mem,
                                                  latency=250)), True),
        "mem=500": (replace(base_cfg, mem=replace(base_cfg.mem,
                                                  latency=500)), True),
    }
    # Scaled arrays are physically faster; the CACTI-lite rescaling is
    # the honest-latency variant of the capacity-scaled default.
    from repro.common.cacti_lite import with_rescaled_latencies

    variants["cacti-rescaled"] = (with_rescaled_latencies(base_cfg), True)
    workloads = ["oltp", "art-4"]
    report = ExperimentReport(
        experiment="ablation-substrate",
        title="ESP-NUCA / shared performance ratio under substrate changes",
        columns=workloads)
    for label, (config, contention) in variants.items():
        values = []
        for wl in workloads:
            esp = _run(runner, "esp-nuca", wl, config, contention)
            shared = _run(runner, "shared", wl, config, contention)
            values.append(esp.performance / shared.performance)
        report.series[label] = values
    return report


def test_ablation_substrate(benchmark, runner):
    report = benchmark.pedantic(_build, args=(runner,),
                                rounds=1, iterations=1)
    emit(report)
    oltp = report.columns.index("oltp")
    # The transactional win over shared must not be an artifact of one
    # substrate choice: it survives every variant.
    for label, values in report.series.items():
        assert values[oltp] > 1.0, f"{label} flipped the oltp conclusion"
