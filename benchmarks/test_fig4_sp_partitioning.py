"""Figure 4 — SP-NUCA dynamic partitioning.

Paper series: SP-NUCA (flat LRU) vs a static 12/4 partition vs shadow
tags, over the NAS suite and the transactional workloads. Expected
shape: flat LRU tracks the much costlier shadow tags closely, while the
static partition is the poor performer.
"""

from repro.harness.experiments import FIG45_WORKLOADS, run_experiment

from benchmarks.conftest import emit


def test_fig4_sp_partitioning(benchmark, runner):
    report = benchmark.pedantic(
        run_experiment, args=("fig4", runner), rounds=1, iterations=1)
    emit(report)
    assert report.columns == list(FIG45_WORKLOADS)
    assert set(report.series) == {"sp-nuca", "sp-nuca-static",
                                  "sp-nuca-shadow"}
    # Shadow tags are the normalization baseline.
    assert all(abs(v - 1.0) < 1e-9 for v in report.series["sp-nuca-shadow"])
    # Shape: flat LRU stays within a tight band of shadow tags on
    # average (the paper's "performance degradation is minimal").
    lru = report.series["sp-nuca"]
    assert sum(lru) / len(lru) > 0.9
