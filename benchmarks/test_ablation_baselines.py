"""Extra-baseline ablations beyond the paper's headline comparison.

* **Victim Replication** — the excluded ancestor (Section 6.1 drops it
  as "outperformed by both ASR and Cooperative Caching"); here it
  quantifies what ESP-NUCA's *protected* replication adds over
  unrestricted replication on the same shared substrate.
* **ESP-NUCA-QoS** — the paper's future-work extension; with all cores
  in the NORMAL class it must behave like plain ESP-NUCA (a regression
  guard for the extension).
"""

from benchmarks.conftest import emit
from repro.harness.reporting import ExperimentReport


WORKLOADS = ["apache", "oltp", "art-4", "CG"]


def _build(runner):
    report = ExperimentReport(
        experiment="ablation-baselines",
        title="Extra baselines (normalized to shared)",
        columns=list(WORKLOADS))
    for arch in ("shared", "victim-replication", "esp-nuca",
                 "esp-nuca-qos"):
        report.series[arch] = [
            runner.aggregate(arch, wl).performance
            / runner.aggregate("shared", wl).performance
            for wl in WORKLOADS
        ]
    return report


def test_ablation_baselines(benchmark, runner):
    report = benchmark.pedantic(_build, args=(runner,),
                                rounds=1, iterations=1)
    emit(report)
    esp = report.series["esp-nuca"]
    qos = report.series["esp-nuca-qos"]
    # All-NORMAL QoS is plain ESP-NUCA up to duel-timing noise.
    for a, b in zip(esp, qos):
        assert abs(a - b) < 0.08
    # Victim replication must at least run sanely everywhere.
    assert all(v > 0.5 for v in report.series["victim-replication"])
