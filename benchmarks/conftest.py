"""Shared benchmark infrastructure.

All figure benchmarks share one session-scoped :class:`ExperimentRunner`
so runs are paired and cached across figures (Figures 6, 7 and 8 reuse
the same transactional runs, exactly like the paper's methodology). The
runner submits run points through the parallel executor, so the suite
also shares the *persistent* cache under ``.repro_cache/``: a second
``pytest benchmarks/`` invocation at the same fidelity re-simulates
nothing (see docs/harness.md).

Fidelity knobs (environment):

* ``REPRO_BENCH_REFS``    measured references per core (default 8000)
* ``REPRO_BENCH_WARMUP``  warm-up references per core (default 6000)
* ``REPRO_BENCH_SEEDS``   perturbed runs per data point (default 1)
* ``REPRO_SCALE``         capacity scale factor (default 8)
* ``REPRO_JOBS``          worker processes (default CPU count; 1 = serial)
* ``REPRO_CACHE``         0 disables the persistent cache
* ``REPRO_CACHE_DIR``     cache location (default ``.repro_cache``)

The defaults keep ``pytest benchmarks/ --benchmark-only`` in the
tens-of-minutes range cold; raise the knobs for publication-fidelity
runs (see EXPERIMENTS.md for the settings used there).
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

import pytest

from repro.harness.executor import Executor, env_int
from repro.harness.runcache import RunCache
from repro.harness.runner import ExperimentRunner, RunSettings


@pytest.fixture(scope="session")
def runner():
    settings = RunSettings(
        capacity_factor=env_int("REPRO_SCALE", 8, minimum=1),
        refs_per_core=env_int("REPRO_BENCH_REFS", 8_000, minimum=1),
        warmup_refs_per_core=env_int("REPRO_BENCH_WARMUP", 6_000, minimum=0),
        num_seeds=env_int("REPRO_BENCH_SEEDS", 1, minimum=1),
    )
    executor = Executor(cache=RunCache.from_env())
    return ExperimentRunner(settings, executor=executor)


def emit(report) -> None:
    """Print a report so the series appear in the benchmark log."""
    print()
    print(report.format())
