"""Shared benchmark infrastructure.

All figure benchmarks share one session-scoped :class:`ExperimentRunner`
so runs are paired and cached across figures (Figures 6, 7 and 8 reuse
the same transactional runs, exactly like the paper's methodology).

Fidelity knobs (environment):

* ``REPRO_BENCH_REFS``    measured references per core (default 8000)
* ``REPRO_BENCH_WARMUP``  warm-up references per core (default 6000)
* ``REPRO_BENCH_SEEDS``   perturbed runs per data point (default 1)
* ``REPRO_SCALE``         capacity scale factor (default 8)

The defaults keep ``pytest benchmarks/ --benchmark-only`` in the
tens-of-minutes range; raise the knobs for publication-fidelity runs
(see EXPERIMENTS.md for the settings used there).
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

import pytest

from repro.harness.runner import ExperimentRunner, RunSettings


def _env_int(name: str, default: int) -> int:
    value = os.environ.get(name)
    return int(value) if value else default


@pytest.fixture(scope="session")
def runner():
    settings = RunSettings(
        capacity_factor=_env_int("REPRO_SCALE", 8),
        refs_per_core=_env_int("REPRO_BENCH_REFS", 8_000),
        warmup_refs_per_core=_env_int("REPRO_BENCH_WARMUP", 6_000),
        num_seeds=_env_int("REPRO_BENCH_SEEDS", 1),
    )
    return ExperimentRunner(settings)


def emit(report) -> None:
    """Print a report so the series appear in the benchmark log."""
    print()
    print(report.format())
