"""Before/after wall-clock comparison of the parallel executor and the
persistent run cache; writes BENCH_executor.json at the repo root.

Three passes over one representative (architecture, workload, seed)
grid, each with fresh runner state:

1. **serial-cold** — the pre-executor baseline: one process, no
   persistent cache (``REPRO_JOBS=1`` semantics);
2. **parallel-cold** — the executor fanning out over worker processes
   into an empty cache directory;
3. **parallel-warm** — a second invocation against the now-populated
   cache (fresh runner and executor objects, so nothing is served from
   process memory).

Pass 3's hit fraction is the acceptance criterion: a repeated
experiment must serve >= 90% of its run points from the persistent
cache. Results are also cross-checked for equality between passes.

Usage::

    PYTHONPATH=src python benchmarks/bench_executor.py [--jobs N]
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.harness.executor import Executor, default_jobs
from repro.harness.runcache import RunCache
from repro.harness.runner import ExperimentRunner, RunSettings

ARCHS = ["shared", "private", "d-nuca", "asr", "esp-nuca"]
WORKLOADS = ["apache", "oltp", "CG", "art-4"]
SETTINGS = RunSettings(capacity_factor=8, refs_per_core=2_000,
                       warmup_refs_per_core=500, num_seeds=2)


def run_pass(jobs, cache):
    runner = ExperimentRunner(SETTINGS,
                              executor=Executor(jobs=jobs, cache=cache))
    start = time.perf_counter()
    matrix = runner.matrix(ARCHS, WORKLOADS)
    elapsed = time.perf_counter() - start
    checksum = {f"{arch}/{wl}": [r.cycles for r in agg.runs]
                for (arch, wl), agg in matrix.items()}
    return elapsed, runner.executor.cache, checksum


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=None,
                        help="parallel worker count (default $REPRO_JOBS "
                             "or CPU count)")
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(__file__), "..", "BENCH_executor.json"))
    args = parser.parse_args(argv)
    jobs = args.jobs if args.jobs is not None else default_jobs()
    points = len(ARCHS) * len(WORKLOADS) * SETTINGS.num_seeds

    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro_bench_cache_") as tmp:
        serial_t, _, serial_sum = run_pass(1, RunCache(enabled=False))
        cold_t, cold_cache, cold_sum = run_pass(jobs, RunCache(root=tmp))
        warm_t, warm_cache, warm_sum = run_pass(jobs, RunCache(root=tmp))

    assert serial_sum == cold_sum == warm_sum, \
        "parallel/cached results diverge from the serial path"
    hit_fraction = warm_cache.hits / points
    payload = {
        "benchmark": "parallel executor + persistent run cache",
        "grid": {"architectures": ARCHS, "workloads": WORKLOADS,
                 "seeds": SETTINGS.num_seeds, "run_points": points,
                 "refs_per_core": SETTINGS.refs_per_core,
                 "warmup_refs_per_core": SETTINGS.warmup_refs_per_core,
                 "capacity_factor": SETTINGS.capacity_factor},
        "environment": {"cpu_count": os.cpu_count(), "jobs": jobs,
                        "python": sys.version.split()[0]},
        "before": {"label": "serial, no persistent cache (pre-executor "
                            "ExperimentRunner behaviour)",
                   "wall_clock_s": round(serial_t, 3)},
        "after_cold": {"label": f"executor, {jobs} job(s), empty cache",
                       "wall_clock_s": round(cold_t, 3),
                       "cache_hits": cold_cache.hits,
                       "cache_writes": cold_cache.writes,
                       "speedup_vs_before": round(serial_t / cold_t, 2)},
        "after_warm": {"label": "second invocation, fresh process state, "
                                "populated cache",
                       "wall_clock_s": round(warm_t, 3),
                       "cache_hits": warm_cache.hits,
                       "cache_hit_fraction": round(hit_fraction, 3),
                       "speedup_vs_before": round(serial_t / warm_t, 2)},
        "results_identical_across_passes": True,
    }
    out = os.path.abspath(args.out)
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {out}")
    assert hit_fraction >= 0.9, \
        f"warm pass served only {hit_fraction:.0%} of points from cache"
    return 0


if __name__ == "__main__":
    sys.exit(main())
