"""HTTP gateway serving and recovery benchmark; writes
BENCH_gateway.json at the repo root.

Three measurements against a real in-process gateway (HTTP over
loopback TCP, SQLite store, run cache on disk):

1. **cold submits** — ``POST /v1/jobs`` latency and request rate when
   every submission admits a fresh, uncached point (the reply is the
   queued-job snapshot: admission + durable store write, not the
   simulation itself);
2. **cache-hit submits** — the same grids again once the cache holds
   every point: the reply is ``state=done`` with full results inline,
   so this measures the complete answer-from-cache fast path;
3. **store recovery** — a gateway booted against a store holding a
   1k-job ``queued`` backlog (200 with ``--quick``) whose points are
   all cache-resident: wall-clock from process start until every job is
   terminal, i.e. the durability machinery alone.

Usage::

    PYTHONPATH=src python benchmarks/bench_gateway.py [--quick]
"""

import argparse
import json
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.common.config import scaled_config
from repro.gateway import GatewayClient, GatewayConfig, GatewayThread, JobStore
from repro.harness.executor import Executor
from repro.harness.runcache import RunCache
from repro.harness.runner import RunSettings, grid_points

SETTINGS = RunSettings(capacity_factor=8, refs_per_core=400,
                       warmup_refs_per_core=100, num_seeds=1)
SETTINGS_WIRE = {"refs_per_core": SETTINGS.refs_per_core,
                 "warmup_refs_per_core": SETTINGS.warmup_refs_per_core,
                 "capacity_factor": SETTINGS.capacity_factor}
ARCHS = ["esp-nuca"]
WORKLOADS = ["apache"]


def percentile(sorted_values, fraction):
    index = min(len(sorted_values) - 1,
                int(round(fraction * (len(sorted_values) - 1))))
    return sorted_values[index]


def latency_stats(samples_s):
    ordered = sorted(samples_s)
    return {
        "requests": len(ordered),
        "p50_ms": round(percentile(ordered, 0.50) * 1e3, 3),
        "p99_ms": round(percentile(ordered, 0.99) * 1e3, 3),
        "mean_ms": round(sum(ordered) / len(ordered) * 1e3, 3),
        "requests_per_s": round(len(ordered) / sum(ordered), 1),
    }


def submit_pass(client, seeds, wait):
    """Sequential submits, one per seed; returns per-request latencies
    and the job ids."""
    samples, jobs = [], []
    for seed in seeds:
        start = time.perf_counter()
        reply = client.submit(ARCHS, WORKLOADS, seeds=[seed],
                              settings=SETTINGS_WIRE)
        samples.append(time.perf_counter() - start)
        jobs.append(reply["job"])
    if wait:
        for job in jobs:
            client.wait(job, timeout=600)
    return samples, jobs


def bench_submits(workdir, seeds):
    db = os.path.join(workdir, "serve.sqlite")
    cache = os.path.join(workdir, "cache")
    config = GatewayConfig(bind=("tcp", "127.0.0.1", 0), db_path=db,
                           queue_limit=max(64, len(seeds) + 8),
                           allow_anonymous=True,
                           anon_max_jobs=len(seeds) + 8,
                           anon_max_points=len(seeds) + 8,
                           anon_rate_capacity=1e9, anon_rate_refill=1e9)
    executor = Executor(jobs=1, cache=RunCache(root=cache))
    with GatewayThread(config, executor=executor,
                       settings=SETTINGS) as handle:
        with GatewayClient(handle.base_url) as client:
            cold, _ = submit_pass(client, seeds, wait=True)
            hot, jobs = submit_pass(client, seeds, wait=False)
            sample = client.job(jobs[-1])
            assert sample["state"] == "done", \
                "cache-hit submissions should return terminal snapshots"
    return latency_stats(cold), latency_stats(hot)


def bench_recovery(workdir, backlog_jobs, distinct_grids=8):
    """Boot against a stored backlog whose points are cache-resident;
    time start -> every job terminal."""
    db = os.path.join(workdir, "recover.sqlite")
    cache_dir = os.path.join(workdir, "recover-cache")
    cache = RunCache(root=cache_dir)
    config = scaled_config(SETTINGS.capacity_factor)
    grids = [(ARCHS, WORKLOADS, [7000 + i]) for i in range(distinct_grids)]
    executor = Executor(jobs=1, cache=cache)
    for archs, workloads, seeds in grids:
        executor.run(grid_points(config, SETTINGS, archs, workloads, seeds))
    with JobStore.open(db) as store:
        for i in range(backlog_jobs):
            archs, workloads, seeds = grids[i % len(grids)]
            points = grid_points(config, SETTINGS, archs, workloads, seeds)
            store.create_job(
                {"architectures": archs, "workloads": workloads,
                 "seeds": seeds, "settings": SETTINGS_WIRE}, 0, None,
                [(p.key, p.name, p.workload, p.seed) for p in points])

    gw_config = GatewayConfig(bind=("tcp", "127.0.0.1", 0), db_path=db,
                              allow_anonymous=True)
    start = time.perf_counter()
    with GatewayThread(gw_config,
                       executor=Executor(jobs=1, cache=cache),
                       settings=SETTINGS) as handle:
        with GatewayClient(handle.base_url) as client:
            while True:
                status = client.status()
                done = status["store"]["jobs"].get("done", 0)
                if not status["recovering"] and done >= backlog_jobs:
                    break
                assert time.perf_counter() - start < 600, \
                    f"recovery stalled: {status['store']}"
                time.sleep(0.05)
            elapsed = time.perf_counter() - start
            recovered = status["gateway"]["recovered"]
    assert recovered == backlog_jobs, (recovered, backlog_jobs)
    return {
        "backlog_jobs": backlog_jobs,
        "distinct_grids": distinct_grids,
        "recovery_wall_s": round(elapsed, 3),
        "jobs_per_s": round(backlog_jobs / elapsed, 1),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="fewer submits and a 200-job backlog for CI")
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(__file__), "..", "BENCH_gateway.json"))
    args = parser.parse_args(argv)
    submits = 30 if args.quick else 100
    backlog = 200 if args.quick else 1000

    with tempfile.TemporaryDirectory(prefix="repro_bench_gateway_") as tmp:
        cold, hot = bench_submits(tmp, seeds=list(range(5000, 5000 + submits)))
        print(f"cold submits: p50 {cold['p50_ms']}ms "
              f"p99 {cold['p99_ms']}ms ({cold['requests_per_s']} req/s)",
              flush=True)
        print(f"cache-hit submits: p50 {hot['p50_ms']}ms "
              f"p99 {hot['p99_ms']}ms ({hot['requests_per_s']} req/s)",
              flush=True)
        recovery = bench_recovery(tmp, backlog)
        print(f"recovery: {recovery['backlog_jobs']} jobs in "
              f"{recovery['recovery_wall_s']}s "
              f"({recovery['jobs_per_s']} jobs/s)", flush=True)

    payload = {
        "benchmark": "HTTP gateway: submit latency and store recovery",
        "grid": {"architectures": ARCHS, "workloads": WORKLOADS,
                 "refs_per_core": SETTINGS.refs_per_core,
                 "warmup_refs_per_core": SETTINGS.warmup_refs_per_core,
                 "capacity_factor": SETTINGS.capacity_factor,
                 "quick": args.quick},
        "environment": {"cpu_count": os.cpu_count() or 1,
                        "python": sys.version.split()[0]},
        "passes": {
            "cold_submit": dict(cold, label=(
                "POST /v1/jobs, uncached point: admission + durable "
                "store write, job completes asynchronously")),
            "cache_hit_submit": dict(hot, label=(
                "POST /v1/jobs, cache-resident grid: full results "
                "inline in the 201 reply")),
            "store_recovery": dict(recovery, label=(
                "boot against a queued backlog, all points "
                "cache-resident: wall-clock until every job is done")),
        },
    }
    out = os.path.abspath(args.out)
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
