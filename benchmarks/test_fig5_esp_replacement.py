"""Figure 5 — ESP-NUCA replacement policies, normalized to SP-NUCA.

Paper series: ESP-NUCA with flat LRU and with protected LRU. Expected
shape: both track or improve on SP-NUCA; protected LRU is the more
stable of the two (its worst case across the suite is better), which is
the argument for choosing it.
"""

from repro.common.stats import variance
from repro.harness.experiments import FIG45_WORKLOADS, run_experiment

from benchmarks.conftest import emit


def test_fig5_esp_replacement(benchmark, runner):
    report = benchmark.pedantic(
        run_experiment, args=("fig5", runner), rounds=1, iterations=1)
    emit(report)
    assert report.columns == list(FIG45_WORKLOADS)
    flat = report.series["esp-nuca-flat"]
    protected = report.series["esp-nuca"]
    assert len(flat) == len(protected) == len(FIG45_WORKLOADS)
    # Stability shape: protected LRU's downside risk is no worse than
    # flat LRU's (min over the suite).
    assert min(protected) >= min(flat) - 0.05
    assert variance(protected) <= variance(flat) + 0.01
