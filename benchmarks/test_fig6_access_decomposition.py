"""Figure 6 — average access time decomposition, transactional workloads.

Per (architecture, workload): the average demand-access latency split
by data supplier (local L1, remote L1, local/private L2, remote L2,
shared L2, off-chip). Expected shapes: the shared organization's bar is
dominated by the shared-L2 component; private-family bars trade a
smaller on-chip part for a larger off-chip part; ESP-NUCA keeps the
off-chip component near shared's while moving on-chip time from the
shared-L2 to the local-L2 component.
"""

from repro.harness.experiments import TRANSACTIONAL, run_experiment
from repro.sim.request import Supplier

from benchmarks.conftest import emit


def test_fig6_access_decomposition(benchmark, runner):
    report = benchmark.pedantic(
        run_experiment, args=("fig6", runner), rounds=1, iterations=1)
    emit(report)
    for workload in TRANSACTIONAL:
        assert workload in report.extra
    # Components stack to the total.
    for key, values in report.series.items():
        assert abs(sum(values[:-1]) - values[-1]) < 1e-6
    # Shape: the shared architecture spends more of its access time in
    # remote shared banks than ESP-NUCA does, on every workload.
    shared_idx = report.columns.index(Supplier.L2_SHARED.value)
    local_idx = report.columns.index(Supplier.L2_LOCAL.value)
    for workload in TRANSACTIONAL:
        shared_row = report.series[f"{workload}/shared"]
        esp_row = report.series[f"{workload}/esp-nuca"]
        assert esp_row[shared_idx] <= shared_row[shared_idx]
        assert esp_row[local_idx] >= shared_row[local_idx]
