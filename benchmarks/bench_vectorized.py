"""Reference-vs-vectorized engine benchmark; writes BENCH_vectorized.json.

Four sections, all asserting byte-identical results between engines
(docs/engine.md; docs/performance.md explains how to read the output):

1. **engine_grid** — the cold 40-point grid of BENCH_executor.json
   (5 architectures x 4 workloads x 2 seeds at 2 000 refs/core), each
   point simulated once per engine, timed and compared. The cold-grid
   workloads are *miss-dominated by construction* (working sets sized
   against the L2, L1 hit rates 45-65%), so most wall-clock is spent in
   the contention path — batched into epoch kernels since PR 10.
2. **contention_grid** — the same grid re-timed min-of-N passes per
   mode (reference / vectorized with contention kernels / vectorized
   with ``REPRO_CONTENTION_KERNELS=0``), traces pre-materialized and
   GC paused: the honest engine-only number for the miss-dominated
   region, and the kernels' contribution over the pre-kernel engine.
3. **locality_sweep** — synthetic private working sets scaled against
   the L1, showing where epoch batching wins: the speedup grows with
   the L1 hit rate, approaching ~2x as runs lengthen.
4. **stack** — what a user actually experiences on the cold grid: the
   recorded pre-executor serial baseline (BENCH_executor.json
   ``before``), this PR's serial vectorized pass, and a repeat
   invocation against the populated persistent cache. The >= 10x
   acceptance figure is the *stack* speedup of a repeated cold-grid
   experiment — engine, executor and cache compose; the labels say
   exactly which layer contributes what.

Usage::

    PYTHONPATH=src python benchmarks/bench_vectorized.py [--quick]
"""

import argparse
import gc
import json
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.architectures.registry import make_architecture
from repro.common.config import scaled_config
from repro.common.rng import substream
from repro.harness.executor import Executor, materialize_traces
from repro.harness.runcache import RunCache
from repro.harness.runner import ExperimentRunner, RunSettings
from repro.sim.cpu import TraceItem, TraceKind
from repro.sim.engines import build_engine
from repro.sim.system import CmpSystem
from repro.sim.vector.soa import HAS_NUMPY

ARCHS = ["shared", "private", "d-nuca", "asr", "esp-nuca"]
WORKLOADS = ["apache", "oltp", "CG", "art-4"]
SETTINGS = RunSettings(capacity_factor=8, refs_per_core=2_000,
                       warmup_refs_per_core=500, num_seeds=2)
SEEDS = (42, 43)

#: Locality sweep: per-core private working set as a fraction of L1
#: capacity. Below 1.0 every reference after the first pass is a local
#: hit and epoch batching shines; above it the set thrashes and the
#: shared miss path dominates both engines equally.
LOCALITY_FRACTIONS = (0.25, 0.5, 1.0, 2.0)
LOCALITY_REFS = 8_000


def timed_run(engine, config, arch, traces, refs, warmup):
    system = CmpSystem(config, make_architecture(arch, config))
    built = build_engine(system, traces, engine)
    start = time.perf_counter()
    result = built.run(max_refs_per_core=refs, warmup_refs_per_core=warmup)
    return time.perf_counter() - start, result


def engine_grid(config, quick):
    archs = ARCHS[:2] if quick else ARCHS
    workloads = WORKLOADS[:2] if quick else WORKLOADS
    seeds = SEEDS[:1] if quick else SEEDS
    points = []
    total = {"reference": 0.0, "vectorized": 0.0}
    for workload in workloads:
        for seed in seeds:
            traces = materialize_traces(config, SETTINGS, workload, seed)
            for arch in archs:
                ref_t, ref = timed_run("reference", config, arch, traces,
                                       SETTINGS.refs_per_core,
                                       SETTINGS.warmup_refs_per_core)
                vec_t, vec = timed_run("vectorized", config, arch, traces,
                                       SETTINGS.refs_per_core,
                                       SETTINGS.warmup_refs_per_core)
                identical = ref.to_dict() == vec.to_dict()
                assert identical, f"{arch}/{workload} s{seed} diverged"
                total["reference"] += ref_t
                total["vectorized"] += vec_t
                hits = ref.l1_hits / max(ref.l1_hits + ref.l1_misses, 1)
                points.append({
                    "architecture": arch, "workload": workload,
                    "seed": seed, "l1_hit_rate": round(hits, 3),
                    "reference_s": round(ref_t, 3),
                    "vectorized_s": round(vec_t, 3),
                    "speedup": round(ref_t / vec_t, 2),
                    "identical_results": identical,
                })
    return points, total


#: Passes per mode for the contention grid; on a shared host single
#: passes swing +-20%, min-of-N is the honest protocol (docs/performance.md).
CONTENTION_PASSES = 3


def contention_grid(config, quick):
    """Min-of-N engine-only timing of the miss-dominated cold grid.

    Three modes over the same trace sets: the reference engine, the
    vectorized engine with the batched contention kernels (the default),
    and the vectorized engine with the kernels disabled
    (``REPRO_CONTENTION_KERNELS=0`` — the pre-kernel epoch engine, which
    recorded ~1x here). Traces are materialized once and the GC is
    paused during timed passes so the numbers are engine wall-clock,
    not allocator noise. Every mode's results are asserted byte-
    identical to the reference engine's.
    """
    archs = ARCHS[:2] if quick else ARCHS
    workloads = WORKLOADS[:2] if quick else WORKLOADS
    seeds = SEEDS[:1] if quick else SEEDS
    passes = 2 if quick else CONTENTION_PASSES
    trace_sets = {(w, s): materialize_traces(config, SETTINGS, w, s)
                  for w in workloads for s in seeds}
    points = [(w, s, a) for w in workloads for s in seeds for a in archs]
    modes = (("reference", "reference", None),
             ("vectorized_kernels_on", "vectorized", "1"),
             ("vectorized_kernels_off", "vectorized", "0"))
    baseline = {}
    totals = {}
    saved_knob = os.environ.get("REPRO_CONTENTION_KERNELS")
    try:
        # Passes interleave the modes (pass 0: ref, on, off; pass 1:
        # ref, on, off; ...) so drifting host load penalizes every mode
        # equally instead of whichever mode happens to run last.
        for p in range(passes):
            for mode, engine, knob in modes:
                if knob is None:
                    os.environ.pop("REPRO_CONTENTION_KERNELS", None)
                else:
                    os.environ["REPRO_CONTENTION_KERNELS"] = knob
                gc.collect()
                gc.disable()
                try:
                    elapsed = 0.0
                    for key in points:
                        workload, seed, arch = key
                        t, result = timed_run(
                            engine, config, arch, trace_sets[workload, seed],
                            SETTINGS.refs_per_core,
                            SETTINGS.warmup_refs_per_core)
                        elapsed += t
                        if p == 0:
                            if mode == "reference":
                                baseline[key] = result.to_dict()
                            else:
                                assert result.to_dict() == baseline[key], \
                                    f"{mode} diverged at {key}"
                finally:
                    gc.enable()
                prev = totals.get(mode)
                totals[mode] = elapsed if prev is None else min(prev, elapsed)
    finally:
        if saved_knob is None:
            os.environ.pop("REPRO_CONTENTION_KERNELS", None)
        else:
            os.environ["REPRO_CONTENTION_KERNELS"] = saved_knob
    return totals, passes, len(points)


def locality_traces(config, fraction, seed):
    l1_blocks = config.l1.size // config.l1.block_size
    working_set = max(int(l1_blocks * fraction), 4)
    traces = []
    for core in range(config.num_cores):
        rng = substream(seed, f"locality-core{core}")
        base = 0x400000 + core * 0x40000
        items = [TraceItem(gap=rng.randrange(3),
                           block=base + rng.randrange(working_set),
                           kind=TraceKind.LOAD)
                 for _ in range(LOCALITY_REFS)]
        traces.append(items)
    return traces


def locality_sweep(config, quick):
    rows = []
    fractions = LOCALITY_FRACTIONS[1:3] if quick else LOCALITY_FRACTIONS
    for fraction in fractions:
        traces = locality_traces(config, fraction, seed=9)
        ref_t, ref = timed_run("reference", config, "esp-nuca", traces,
                               LOCALITY_REFS, 0)
        vec_t, vec = timed_run("vectorized", config, "esp-nuca", traces,
                               LOCALITY_REFS, 0)
        assert ref.to_dict() == vec.to_dict(), \
            f"locality fraction {fraction} diverged"
        hits = ref.l1_hits / max(ref.l1_hits + ref.l1_misses, 1)
        rows.append({
            "working_set_vs_l1": fraction,
            "l1_hit_rate": round(hits, 3),
            "reference_s": round(ref_t, 3),
            "vectorized_s": round(vec_t, 3),
            "speedup": round(ref_t / vec_t, 2),
        })
    return rows


def stack_passes(quick):
    """Serial-cold vectorized pass + warm repeat over the executor grid."""
    archs = ARCHS[:2] if quick else ARCHS
    workloads = WORKLOADS[:2] if quick else WORKLOADS
    with tempfile.TemporaryDirectory(prefix="repro_bench_vec_") as tmp:
        times = {}
        caches = {}
        for label in ("cold", "warm"):
            runner = ExperimentRunner(
                SETTINGS,
                executor=Executor(jobs=1, cache=RunCache(root=tmp)))
            start = time.perf_counter()
            runner.matrix(archs, workloads)
            times[label] = time.perf_counter() - start
            caches[label] = runner.executor.cache.hits
    return times, caches


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="reduced grid for CI smoke runs")
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(__file__), "..", "BENCH_vectorized.json"))
    args = parser.parse_args(argv)
    config = scaled_config(SETTINGS.capacity_factor)

    points, total = engine_grid(config, args.quick)
    contention, cont_passes, cont_points = contention_grid(config, args.quick)
    sweep = locality_sweep(config, args.quick)
    times, cache_hits = stack_passes(args.quick)

    recorded_before = None
    executor_json = os.path.join(os.path.dirname(__file__), "..",
                                 "BENCH_executor.json")
    if os.path.exists(executor_json):
        with open(executor_json, encoding="utf-8") as handle:
            recorded_before = json.load(handle)["before"]["wall_clock_s"]

    grid_speedup = total["reference"] / total["vectorized"]
    warm_speedup = times["cold"] / max(times["warm"], 1e-9)
    payload = {
        "benchmark": "vectorized engine vs reference engine",
        "environment": {"cpu_count": os.cpu_count(), "numpy": HAS_NUMPY,
                        "python": sys.version.split()[0],
                        "quick": args.quick},
        "engine_grid": {
            "label": "cold 40-point grid, serial, engine wall-clock only, "
                     "single pass per point (noisy on a shared host; "
                     "contention_grid repeats this min-of-N). With the "
                     "contention path batched into epoch kernels, per-"
                     "point ratios on miss-dominated points sit around "
                     "1.2-1.3x (they hovered near 1x before)",
            "reference_total_s": round(total["reference"], 3),
            "vectorized_total_s": round(total["vectorized"], 3),
            "speedup": round(grid_speedup, 3),
            "all_results_identical": True,
            "points": points,
        },
        "contention_grid": {
            "label": "the same cold grid timed min-of-%d interleaved "
                     "passes per mode with traces pre-materialized and "
                     "GC paused: the honest engine-only figure for the "
                     "miss-dominated region. kernels_off is the pre-"
                     "kernel epoch engine (REPRO_CONTENTION_KERNELS=0), "
                     "which records ~1x or below. Measured on a single-"
                     "CPU shared host where individual passes swing "
                     "+-20%%; min-of-N ratios observed across "
                     "development runs ranged 1.20-1.30x with kernels on"
                     % cont_passes,
            "points": cont_points,
            "passes_per_mode": cont_passes,
            "reference_total_s": round(contention["reference"], 3),
            "vectorized_kernels_on_total_s":
                round(contention["vectorized_kernels_on"], 3),
            "vectorized_kernels_off_total_s":
                round(contention["vectorized_kernels_off"], 3),
            "speedup_kernels_on": round(
                contention["reference"]
                / contention["vectorized_kernels_on"], 3),
            "speedup_kernels_off": round(
                contention["reference"]
                / contention["vectorized_kernels_off"], 3),
            "kernels_on_vs_off": round(
                contention["vectorized_kernels_off"]
                / contention["vectorized_kernels_on"], 3),
            "all_results_identical": True,
        },
        "locality_sweep": {
            "label": "esp-nuca, synthetic private working sets scaled "
                     "against the L1: epoch batching pays in proportion "
                     "to the fraction of references that are local",
            "rows": sweep,
        },
        "stack": {
            "label": "what a repeated cold-grid experiment costs end to "
                     "end: engine + executor + persistent cache",
            "recorded_pre_pr_serial_s": recorded_before,
            "cold_vectorized_serial_s": round(times["cold"], 3),
            "warm_repeat_s": round(times["warm"], 3),
            "warm_cache_hits": cache_hits["warm"],
            "warm_speedup_vs_cold": round(warm_speedup, 1),
            "note": "the >=10x cold-grid acceptance figure is this stack "
                    "speedup of a repeat invocation; the engine alone "
                    "contributes ~1.25x on miss-dominated points "
                    "(contention_grid) and up to ~2x at high locality "
                    "(locality_sweep)",
        },
    }
    out = os.path.abspath(args.out)
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {out}")
    assert warm_speedup >= 10, \
        f"stack speedup {warm_speedup:.1f}x below the 10x acceptance bar"
    return 0


if __name__ == "__main__":
    sys.exit(main())
