"""Overhead of the runtime invariant checker; writes BENCH_checks.json
at the repo root (see docs/checking.md).

Two questions, answered on cold serial runs (no persistent cache, one
process):

1. **What does the subsystem cost when it is off?** The production
   path pays one ``checker is None`` test per access. The same grid
   the tracing benchmark uses is timed with checking disabled and
   compared against the wall-clock of the identical grid measured at
   the commit immediately before the check subsystem landed (recorded
   below): acceptance bound **<= 2%**.
2. **What does checking cost when it is on?** A full-state sweep walks
   every L1, bank and ledger entry, so this is deliberately expensive.
   A reduced single point (esp-nuca / apache, short trace) is timed
   unchecked, sparsely checked (``sample=64``) and fully checked
   (``sample=1``) — the overheads are reported against the unchecked
   control, not bounded.

Each pass reports the minimum over its repeats (minimum, not mean:
overhead is a lower-bound question and the minimum is the least noisy
estimator of it).

Usage::

    PYTHONPATH=src python benchmarks/bench_checks.py [--repeats N]
"""

import argparse
import json
import os
import sys
import time
from dataclasses import replace

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.common.config import CheckConfig, scaled_config
from repro.harness.executor import Executor
from repro.harness.runcache import RunCache
from repro.harness.runner import ExperimentRunner, RunSettings

ARCHS = ["shared", "esp-nuca"]
WORKLOADS = ["apache", "CG"]
SETTINGS = RunSettings(refs_per_core=4_000, warmup_refs_per_core=1_000,
                       num_seeds=1)

#: The reduced point for the checking-on passes: one architecture, one
#: workload, a short trace — a sample=1 sweep costs milliseconds per
#: access, so the full grid above would take tens of minutes.
CHECKED_SETTINGS = RunSettings(refs_per_core=1_000,
                               warmup_refs_per_core=250, num_seeds=1)

#: Wall-clock of the full grid at the commit immediately before the
#: check subsystem was added — the honest "before" for the off pass.
#: Minimum of 8 runs *interleaved* with 8 runs of the instrumented
#: code in one session (instrumented min: 3.894s, i.e. within noise
#: of this baseline): this host's wall clock drifts by ~15% minute to
#: minute, so only same-session interleaved comparisons discriminate
#: at the 2% level. Re-measure both sides together before reading
#: anything into a future off-pass delta.
PRE_CHECK_BASELINE_S = 3.990

#: The acceptance bound on the disabled-path cost.
MAX_OFF_OVERHEAD = 0.02


def make_runner(settings, sample=None):
    config = None
    if sample is not None:
        config = replace(scaled_config(settings.capacity_factor),
                         checks=CheckConfig(enabled=True, sample=sample))
    return ExperimentRunner(
        settings, config=config,
        executor=Executor(jobs=1, cache=RunCache(enabled=False)))


def run_pass(repeats, settings, archs, workloads, sample=None):
    best = None
    for _ in range(repeats):
        runner = make_runner(settings, sample)
        start = time.perf_counter()
        runner.matrix(archs, workloads)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3,
                        help="repeats for the off pass (checked passes "
                             "use min(repeats, 2): they are slow and "
                             "their overhead is not a bound)")
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(__file__), "..", "BENCH_checks.json"))
    args = parser.parse_args(argv)
    checked_repeats = max(1, min(args.repeats, 2))

    off_t = run_pass(args.repeats, SETTINGS, ARCHS, WORKLOADS)
    off_overhead = off_t / PRE_CHECK_BASELINE_S - 1.0

    point = (["esp-nuca"], ["apache"])
    control_t = run_pass(checked_repeats, CHECKED_SETTINGS, *point)
    sparse_t = run_pass(checked_repeats, CHECKED_SETTINGS, *point, sample=64)
    full_t = run_pass(checked_repeats, CHECKED_SETTINGS, *point, sample=1)

    payload = {
        "benchmark": "invariant checking overhead (repro.check)",
        "grid": {"architectures": ARCHS, "workloads": WORKLOADS,
                 "seeds": SETTINGS.num_seeds,
                 "refs_per_core": SETTINGS.refs_per_core,
                 "warmup_refs_per_core": SETTINGS.warmup_refs_per_core,
                 "capacity_factor": SETTINGS.capacity_factor,
                 "executor": "serial, no persistent cache"},
        "checked_point": {
            "architectures": point[0], "workloads": point[1],
            "refs_per_core": CHECKED_SETTINGS.refs_per_core,
            "warmup_refs_per_core": CHECKED_SETTINGS.warmup_refs_per_core},
        "environment": {"cpu_count": os.cpu_count(),
                        "python": sys.version.split()[0],
                        "repeats": args.repeats,
                        "checked_repeats": checked_repeats,
                        "timing": "minimum over repeats"},
        "before": {
            "label": "identical grid at the commit before the check "
                     "subsystem (same machine, min of 8 runs interleaved "
                     "with the instrumented code; see module docstring "
                     "for the noise caveat)",
            "wall_clock_s": PRE_CHECK_BASELINE_S,
        },
        "off": {
            "label": "checking disabled (the default): one 'checker is "
                     "None' test per access",
            "wall_clock_s": round(off_t, 3),
            "overhead_vs_pre_check": round(off_overhead, 4),
        },
        "control": {
            "label": "reduced point, checking disabled (the checked "
                     "passes' denominator)",
            "wall_clock_s": round(control_t, 3),
        },
        "sparse": {
            "label": "reduced point, sample=64 (the long-run "
                     "invariant-net configuration)",
            "wall_clock_s": round(sparse_t, 3),
            "overhead_vs_control": round(sparse_t / control_t - 1.0, 4),
        },
        "full": {
            "label": "reduced point, sample=1 (a full-state sweep after "
                     "every access — the microscope)",
            "wall_clock_s": round(full_t, 3),
            "overhead_vs_control": round(full_t / control_t - 1.0, 4),
        },
        "acceptance": {
            "checking_off_overhead_bound": MAX_OFF_OVERHEAD,
            "pass": off_overhead <= MAX_OFF_OVERHEAD,
        },
    }
    out = os.path.abspath(args.out)
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"off {off_t:.3f}s ({off_overhead:+.1%} vs pre-check "
          f"{PRE_CHECK_BASELINE_S}s), control {control_t:.3f}s, "
          f"sample=64 {sparse_t:.3f}s "
          f"({sparse_t / control_t - 1.0:+.1%}), "
          f"sample=1 {full_t:.3f}s ({full_t / control_t - 1.0:+.1%})")
    print(f"wrote {out}")
    return 0 if payload["acceptance"]["pass"] else 1


if __name__ == "__main__":
    sys.exit(main())
