"""Stability — the abstract's variance claims.

The paper's differentiator is not peak speedup but *stability*: the
variance of (shared-normalized) performance across the whole benchmark
set is far lower for ESP-NUCA than for D-NUCA and CC (87% and 43%
lower), and lower than ASR overall (37%) although ASR can be the more
stable one within NAS.
"""

from repro.harness.experiments import run_experiment

from benchmarks.conftest import emit


def test_stability_variance(benchmark, runner):
    report = benchmark.pedantic(
        run_experiment, args=("stability", runner), rounds=1, iterations=1)
    emit(report)
    assert report.columns == ["transactional", "multiprogrammed", "nas",
                              "all"]
    overall = {name: values[-1] for name, values in report.series.items()}
    # ESP-NUCA's overall variance is the lowest of the adaptive
    # architectures (the headline stability claim).
    assert overall["esp-nuca"] <= overall["d-nuca"]
    assert overall["esp-nuca"] <= overall["cc-avg"] * 1.1
    assert overall["esp-nuca"] <= overall["private"]
