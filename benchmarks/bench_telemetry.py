"""Overhead of the fleet-telemetry layer; writes BENCH_telemetry.json
at the repo root (see the Live telemetry chapter of
docs/observability.md).

The question that matters operationally: **what does telemetry cost
when it is on but nobody is scraping?** The exporter itself is pull —
a scrape walks the counters — so the standing cost is the per-request
accounting in the gateway (route key, latency clock, counter
increments) plus the structured-log call sites. Measured as an
interleaved A/B against a real in-process gateway (HTTP over loopback
TCP, SQLite store, cache-resident grids so simulation time cannot
swamp the request path):

* **A (on)** — ``GatewayConfig(telemetry=True)``, the default: the
  exporter is mounted and every request is observed, but ``/metrics``
  is never hit during the measured window;
* **B (off)** — ``GatewayConfig(telemetry=False)``: no exporter, no
  per-request accounting.

Each arm's measured work is the same fixed mix of listing requests
(``GET /v1/jobs``) and cache-hit submits (``POST /v1/jobs`` answered
inline from the run cache). Loopback HTTP timing on this host is noisy
(an A/A null experiment with back-to-back whole-arm sections showed
minute-scale drift well above 2%, swamping the effect), so the
comparison is interleaved at *chunk* granularity instead: both
gateways are alive simultaneously, the measured requests alternate
between them in chunks of a few dozen, and which arm goes first flips
every chunk — drift on any scale coarser than ~one chunk lands on both
arms equally and cancels in the ratio of the accumulated totals.
Chunk interleaving alone is not enough — a given *instance pair* can
draw persistently unequal CPU placement for its event-loop threads (an
A/A null shows a few percent per-pair bias) — so the measurement runs
many short sessions, each with a fresh pair of gateways and the boot
order alternating, and pools the totals: per-instance bias is zero-mean
across pairs and averages out. A warm-up session runs first and is
**discarded** (the first sections of a process run tens of percent
slow), and the GC is disabled inside the measured sections so a
collection cannot land in one arm only. Acceptance bound: **<= 2%** on
the pooled totals.

A scrape-cost pass (mean ``GET /metrics`` round-trip on the telemetry
gateway) is reported for information — it bounds what a Prometheus
scrape interval costs, but is not part of the acceptance.

``--quick`` (CI) shortens the sections below the host's A/A noise
floor, so the quick exit code is always 0 and the acceptance field is
informational there; only a full run (the committed
``BENCH_telemetry.json``) is discriminating enough to enforce the
bound.

Usage::

    PYTHONPATH=src python benchmarks/bench_telemetry.py [--quick]
"""

import argparse
import gc
import json
import os
import sys
import tempfile
import time
from contextlib import ExitStack

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.common.config import scaled_config
from repro.gateway import GatewayClient, GatewayConfig, GatewayThread
from repro.harness.executor import Executor
from repro.harness.runcache import RunCache
from repro.harness.runner import RunSettings, grid_points
from repro.obs.metrics import parse_exposition

SETTINGS = RunSettings(capacity_factor=8, refs_per_core=400,
                       warmup_refs_per_core=100, num_seeds=1)
SETTINGS_WIRE = {"refs_per_core": SETTINGS.refs_per_core,
                 "warmup_refs_per_core": SETTINGS.warmup_refs_per_core,
                 "capacity_factor": SETTINGS.capacity_factor}
ARCHS = ["esp-nuca"]
WORKLOADS = ["apache"]

#: The acceptance bound on the enabled-but-unscraped cost.
MAX_ON_OVERHEAD = 0.02


def prewarm_cache(cache_dir, seeds):
    """Execute every submit grid once so the measured submits are all
    answered inline from the run cache."""
    config = scaled_config(SETTINGS.capacity_factor)
    executor = Executor(jobs=1, cache=RunCache(root=cache_dir))
    for seed in seeds:
        executor.run(grid_points(config, SETTINGS, ARCHS, WORKLOADS,
                                 [seed]))


def gateway_for(workdir, cache_dir, tag, telemetry):
    db = os.path.join(workdir, f"bench-{tag}.sqlite")
    config = GatewayConfig(bind=("tcp", "127.0.0.1", 0), db_path=db,
                           allow_anonymous=True, telemetry=telemetry,
                           anon_max_jobs=10_000, anon_max_points=100_000,
                           anon_rate_capacity=1e9, anon_rate_refill=1e9)
    executor = Executor(jobs=1, cache=RunCache(root=cache_dir))
    return GatewayThread(config, executor=executor, settings=SETTINGS)


def measure_pair(workdir, cache_dir, tag, chunks, chunk_listings, seeds,
                 flip=False):
    """One interleaved session: a telemetry=True and a telemetry=False
    gateway are alive *simultaneously* (own db each, shared prewarmed
    cache) and the measured requests alternate between them in small
    chunks, flipping which arm goes first each chunk. Host drift on
    any scale coarser than one chunk (~tens of ms) therefore lands on
    both arms equally. ``flip`` reverses which gateway boots first —
    the caller alternates it across sessions so any boot-order
    placement bias cancels in the pooled totals. Returns accumulated
    (on_s, off_s)."""
    on_total = off_total = 0.0
    with ExitStack() as stack:
        handles = {}
        for is_on in ([False, True] if flip else [True, False]):
            handles[is_on] = stack.enter_context(gateway_for(
                workdir, cache_dir, f"{tag}-{'on' if is_on else 'off'}",
                is_on))
        on_c = stack.enter_context(GatewayClient(handles[True].base_url))
        off_c = stack.enter_context(GatewayClient(handles[False].base_url))
        for client in (on_c, off_c):
            reply = client.submit(ARCHS, WORKLOADS, seeds=[seeds[0]],
                                  settings=SETTINGS_WIRE)
            assert reply["state"] == "done", \
                "prewarmed grids must answer inline from the cache"
            for _ in range(30):
                client.jobs()  # warm the connection + listing path
        gc.collect()
        gc.disable()  # a collection landing in one arm would skew it
        try:
            for chunk in range(chunks):
                arms = [(on_c, True), (off_c, False)]
                if chunk % 2:
                    arms.reverse()
                for client, is_on in arms:
                    start = time.perf_counter()
                    for _ in range(chunk_listings):
                        client.jobs()
                    elapsed = time.perf_counter() - start
                    if is_on:
                        on_total += elapsed
                    else:
                        off_total += elapsed
            for index, seed in enumerate(seeds[1:]):
                arms = [(on_c, True), (off_c, False)]
                if index % 2:
                    arms.reverse()
                for client, is_on in arms:
                    start = time.perf_counter()
                    client.submit(ARCHS, WORKLOADS, seeds=[seed],
                                  settings=SETTINGS_WIRE)
                    elapsed = time.perf_counter() - start
                    if is_on:
                        on_total += elapsed
                    else:
                        off_total += elapsed
        finally:
            gc.enable()
    return on_total, off_total


def measure_scrape(workdir, cache_dir, samples):
    """Mean /metrics round-trip on a telemetry gateway with a few jobs
    on the books, plus the parsed sample count of one scrape."""
    with gateway_for(workdir, cache_dir, "scrape", True) as handle:
        with GatewayClient(handle.base_url) as client:
            for seed in (6000, 6001):
                client.submit(ARCHS, WORKLOADS, seeds=[seed],
                              settings=SETTINGS_WIRE)
            text = client.metrics()
            sample_count = len(parse_exposition(text).samples)
            start = time.perf_counter()
            for _ in range(samples):
                client.metrics()
            elapsed = time.perf_counter() - start
    return elapsed / samples, sample_count, len(text)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="fewer repeats/requests for CI")
    parser.add_argument("--repeats", type=int, default=None,
                        help="interleaved pair sessions "
                             "(default 12, or 2 with --quick)")
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(__file__), "..", "BENCH_telemetry.json"))
    args = parser.parse_args(argv)
    # Many short sessions, each with a *fresh* pair of gateway
    # instances: a session's event-loop threads can draw persistently
    # unequal CPU placement (an A/A null shows a few percent bias per
    # instance pair), and only averaging over instances removes it.
    repeats = args.repeats or (2 if args.quick else 12)
    chunks = 30 if args.quick else 50
    chunk_listings = 25
    submits = 6 if args.quick else 10
    scrapes = 20 if args.quick else 50
    listings = chunks * chunk_listings
    seeds = list(range(6000, 6000 + submits))

    with tempfile.TemporaryDirectory(prefix="repro_bench_telemetry_") as tmp:
        cache_dir = os.path.join(tmp, "cache")
        prewarm_cache(cache_dir, seeds)

        # Discarded warm-up session: the first measured sections of a
        # process run far slower than steady state (interpreter, page
        # cache, CPU governor), and that penalty must not land on
        # whichever chunk happens to go first.
        measure_pair(tmp, cache_dir, "warmup", max(4, chunks // 8),
                     chunk_listings, seeds[:2])
        on_times, off_times = [], []
        for repeat in range(repeats):
            on_t, off_t = measure_pair(tmp, cache_dir, f"pair-{repeat}",
                                       chunks, chunk_listings, seeds,
                                       flip=bool(repeat % 2))
            on_times.append(on_t)
            off_times.append(off_t)
            print(f"session {repeat + 1}/{repeats}: "
                  f"on {on_t:.3f}s off {off_t:.3f}s "
                  f"({on_t / off_t - 1.0:+.2%})", flush=True)
        scrape_s, scrape_samples, scrape_bytes = measure_scrape(
            tmp, cache_dir, scrapes)

    # Pool the sessions: one long interleave, not a min-of-sections —
    # the chunk-level alternation already cancelled drift, so averaging
    # shrinks the residual noise instead of gambling on a clean minimum.
    on_t, off_t = sum(on_times), sum(off_times)
    overhead = on_t / off_t - 1.0
    requests = (listings + submits - 1) * repeats

    payload = {
        "benchmark": "fleet telemetry overhead (repro.obs.metrics + "
                     "gateway accounting)",
        "workload": {
            "listings_per_session": listings,
            "cache_hit_submits_per_session": submits - 1,
            "chunks": chunks, "chunk_listings": chunk_listings,
            "architectures": ARCHS, "workloads": WORKLOADS,
            "refs_per_core": SETTINGS.refs_per_core,
            "capacity_factor": SETTINGS.capacity_factor,
            "note": "all submits answered inline from a prewarmed run "
                    "cache: the measured section is the HTTP request "
                    "path, where the per-request accounting lives",
            "quick": args.quick},
        "environment": {"cpu_count": os.cpu_count() or 1,
                        "python": sys.version.split()[0],
                        "sessions": repeats,
                        "timing": "both gateways alive at once, request "
                                  "chunks alternating between arms; "
                                  "session totals pooled"},
        "on": {
            "label": "telemetry=True (default), /metrics never scraped "
                     "during the measured section",
            "wall_clock_s": round(on_t, 3),
            "per_request_ms": round(on_t / requests * 1e3, 3),
            "session_s": [round(t, 3) for t in on_times],
        },
        "off": {
            "label": "telemetry=False: no exporter, no per-request "
                     "accounting",
            "wall_clock_s": round(off_t, 3),
            "per_request_ms": round(off_t / requests * 1e3, 3),
            "session_s": [round(t, 3) for t in off_times],
        },
        "scrape": {
            "label": "GET /metrics round-trip on a live telemetry "
                     "gateway (informational, not part of acceptance)",
            "mean_ms": round(scrape_s * 1e3, 3),
            "samples_per_scrape": scrape_samples,
            "exposition_bytes": scrape_bytes,
        },
        "acceptance": {
            "telemetry_on_overhead": round(overhead, 4),
            "telemetry_on_overhead_bound": MAX_ON_OVERHEAD,
            "pass": overhead <= MAX_ON_OVERHEAD,
            "enforced": not args.quick,
        },
    }
    out = os.path.abspath(args.out)
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"on {on_t:.3f}s, off {off_t:.3f}s ({overhead:+.1%}, bound "
          f"{MAX_ON_OVERHEAD:.0%}{', informational under --quick' if args.quick else ''}); "
          f"scrape {scrape_s * 1e3:.2f}ms for {scrape_samples} samples")
    print(f"wrote {out}")
    if args.quick:
        return 0
    return 0 if payload["acceptance"]["pass"] else 1


if __name__ == "__main__":
    sys.exit(main())
