"""Cold-grid scaling of the multi-process worker fabric; writes
BENCH_fabric.json at the repo root.

One representative figure-suite grid, simulated cold (fresh empty cache
per pass) at increasing fabric widths:

1. **workers=1** — the serial fallback (no worker processes), the
   baseline every other pass is scored against;
2. **workers=2** — the acceptance pass: on a multi-core host the cold
   grid must finish >= 1.7x faster than workers=1;
3. **workers=cpu_count** — only when the host has more than two cores:
   the saturation figure ROADMAP item 3 asks for.

Every pass's results are asserted identical to the workers=1 pass
(byte-identical fan-out is the fabric's core contract), and each
multi-process pass records which worker pids actually completed jobs.
On a single-core host the speedup is physically impossible; the
payload then carries an explicit ``single_core_note`` instead of a
failed assertion (same convention as BENCH_executor.json).

Usage::

    PYTHONPATH=src python benchmarks/bench_fabric.py [--quick] [--max-workers N]
"""

import argparse
import json
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.harness.executor import Executor
from repro.harness.runcache import RunCache
from repro.harness.runner import ExperimentRunner, RunSettings

ARCHS = ["shared", "private", "d-nuca", "esp-nuca"]
WORKLOADS = ["apache", "oltp", "CG"]
SETTINGS = RunSettings(capacity_factor=8, refs_per_core=2_000,
                       warmup_refs_per_core=500, num_seeds=2)

QUICK_ARCHS = ["shared", "esp-nuca"]
QUICK_WORKLOADS = ["apache", "CG"]
QUICK_SETTINGS = RunSettings(capacity_factor=8, refs_per_core=600,
                             warmup_refs_per_core=150, num_seeds=1)


def run_pass(workers, archs, workloads, settings):
    """One cold grid through a fresh fabric of ``workers`` processes."""
    with tempfile.TemporaryDirectory(prefix="repro_bench_fabric_") as tmp:
        executor = Executor(jobs=workers, cache=RunCache(root=tmp))
        runner = ExperimentRunner(settings, executor=executor)
        start = time.perf_counter()
        matrix = runner.matrix(archs, workloads)
        elapsed = time.perf_counter() - start
        checksum = {f"{arch}/{wl}": [r.cycles for r in agg.runs]
                    for (arch, wl), agg in matrix.items()}
        fabric = executor.fabric_stats()
        executor.close()
    return elapsed, checksum, fabric


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="reduced grid for CI smoke (same passes, "
                             "smaller points)")
    parser.add_argument("--max-workers", type=int, default=None,
                        help="widest fabric to measure (default: CPU "
                             "count when > 2)")
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(__file__), "..", "BENCH_fabric.json"))
    args = parser.parse_args(argv)
    archs = QUICK_ARCHS if args.quick else ARCHS
    workloads = QUICK_WORKLOADS if args.quick else WORKLOADS
    settings = QUICK_SETTINGS if args.quick else SETTINGS
    points = len(archs) * len(workloads) * settings.num_seeds
    cpus = os.cpu_count() or 1

    widths = [1, 2]
    top = args.max_workers if args.max_workers is not None else cpus
    if top > 2:
        widths.append(top)

    passes = {}
    baseline_t = None
    baseline_sum = None
    for workers in widths:
        elapsed, checksum, fabric = run_pass(workers, archs, workloads,
                                             settings)
        if baseline_sum is None:
            baseline_t, baseline_sum = elapsed, checksum
        assert checksum == baseline_sum, \
            f"workers={workers} results diverge from the serial pass"
        entry = {
            "label": (f"{workers} simulation process(es), cold cache"
                      if workers > 1 else "serial fallback, cold cache"),
            "wall_clock_s": round(elapsed, 3),
            "throughput_points_per_s": round(points / elapsed, 3),
            "speedup_vs_workers_1": round(baseline_t / elapsed, 2),
        }
        if fabric is not None:
            entry["worker_pids_used"] = len(fabric["completed_by_pid"])
            entry["jobs_completed"] = fabric["completed"]
            entry["jobs_requeued"] = fabric["requeued"]
        passes[f"workers_{workers}"] = entry
        print(f"workers={workers}: {elapsed:.2f}s "
              f"({points / elapsed:.2f} points/s)", flush=True)

    scaling_2 = passes["workers_2"]["speedup_vs_workers_1"]
    payload = {
        "benchmark": "multi-process worker fabric, cold figure-suite grid",
        "grid": {"architectures": archs, "workloads": workloads,
                 "seeds": settings.num_seeds, "run_points": points,
                 "refs_per_core": settings.refs_per_core,
                 "warmup_refs_per_core": settings.warmup_refs_per_core,
                 "capacity_factor": settings.capacity_factor,
                 "quick": args.quick},
        "environment": {"cpu_count": cpus,
                        "python": sys.version.split()[0]},
        "passes": passes,
        "results_identical_across_passes": True,
        "acceptance": {
            "criterion": "cold-grid throughput at workers=2 >= 1.7x "
                         "workers=1 on a multi-core host",
            "speedup_at_2_workers": scaling_2,
            "met": bool(cpus >= 2 and scaling_2 >= 1.7),
        },
    }
    if cpus < 2:
        payload["acceptance"]["single_core_note"] = (
            "this host has 1 CPU: two worker processes time-slice one "
            "core, so >= 1.7x cold-grid scaling is physically impossible "
            "here. The fabric still fans out over distinct OS processes "
            f"(workers_2 used {passes['workers_2'].get('worker_pids_used')} "
            "worker pids) with byte-identical results; rerun on a "
            "multi-core host for the scaling figure.")
    out = os.path.abspath(args.out)
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(json.dumps(payload, indent=2))
    print(f"\nwrote {out}")
    if cpus >= 2:
        assert scaling_2 >= 1.7, \
            f"workers=2 cold-grid speedup {scaling_2}x below the 1.7x bar"
    return 0


if __name__ == "__main__":
    sys.exit(main())
