"""Overhead of the unified event-tracing layer; writes
BENCH_tracing.json at the repo root.

Three passes over one cold serial grid (no persistent cache, one
process — so every pass simulates exactly the same work):

1. **off** — the null tracer: instrumented sites pay one attribute
   check per emission point and nothing else. This pass is compared
   against the wall-clock of the identical grid measured immediately
   *before* the instrumentation landed (recorded below), pinning the
   tentpole's acceptance bound: tracing-off overhead <= 2%;
2. **on** — a full-fidelity capture: default categories, every access
   span tree, default ring buffer;
3. **sampled** — ``sample=100``: 1-in-100 access trees, instants
   unthinned — the configuration meant for long captures.

Each pass reports the minimum of ``--repeats`` runs (minimum, not
mean: tracing overhead is a lower-bound question and the minimum is
the least noisy estimator of it).

Usage::

    PYTHONPATH=src python benchmarks/bench_tracing.py [--repeats N]
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.harness.executor import Executor
from repro.harness.runcache import RunCache
from repro.harness.runner import ExperimentRunner, RunSettings
from repro.obs import Tracer, activated

ARCHS = ["shared", "esp-nuca"]
WORKLOADS = ["apache", "CG"]
SETTINGS = RunSettings(refs_per_core=4_000, warmup_refs_per_core=1_000,
                       num_seeds=1)

#: Wall-clock of this exact grid (serial, cold, min of 3) measured on
#: the same machine at the commit immediately before the obs
#: instrumentation was added — the honest "before" for the off pass.
PRE_INSTRUMENTATION_BASELINE_S = 3.674

#: The tentpole's acceptance bound on the disabled-path cost.
MAX_OFF_OVERHEAD = 0.02


def run_grid():
    runner = ExperimentRunner(
        SETTINGS, executor=Executor(jobs=1, cache=RunCache(enabled=False)))
    start = time.perf_counter()
    runner.matrix(ARCHS, WORKLOADS)
    return time.perf_counter() - start


def run_pass(repeats, tracer_kwargs=None):
    best, events = None, 0
    for _ in range(repeats):
        if tracer_kwargs is None:
            elapsed = run_grid()
        else:
            tracer = Tracer(**tracer_kwargs)
            with activated(tracer):
                elapsed = run_grid()
            events = tracer.emitted
        best = elapsed if best is None else min(best, elapsed)
    return best, events


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(__file__), "..", "BENCH_tracing.json"))
    args = parser.parse_args(argv)

    off_t, _ = run_pass(args.repeats)
    on_t, on_events = run_pass(args.repeats, {})
    sampled_t, sampled_events = run_pass(args.repeats, {"sample": 100})

    off_overhead = off_t / PRE_INSTRUMENTATION_BASELINE_S - 1.0
    payload = {
        "benchmark": "event tracing overhead (repro.obs)",
        "grid": {"architectures": ARCHS, "workloads": WORKLOADS,
                 "seeds": SETTINGS.num_seeds,
                 "refs_per_core": SETTINGS.refs_per_core,
                 "warmup_refs_per_core": SETTINGS.warmup_refs_per_core,
                 "capacity_factor": SETTINGS.capacity_factor,
                 "executor": "serial, no persistent cache"},
        "environment": {"cpu_count": os.cpu_count(),
                        "python": sys.version.split()[0],
                        "repeats": args.repeats,
                        "timing": "minimum over repeats"},
        "before": {
            "label": "identical grid at the commit before the obs "
                     "instrumentation (same machine, min of 3)",
            "wall_clock_s": PRE_INSTRUMENTATION_BASELINE_S,
        },
        "off": {
            "label": "null tracer (instrumented sites, tracing disabled)",
            "wall_clock_s": round(off_t, 3),
            "overhead_vs_pre_instrumentation": round(off_overhead, 4),
        },
        "on": {
            "label": "full capture: default categories, sample=1",
            "wall_clock_s": round(on_t, 3),
            "events_emitted": on_events,
            "overhead_vs_off": round(on_t / off_t - 1.0, 4),
        },
        "sampled": {
            "label": "long-capture configuration: sample=100",
            "wall_clock_s": round(sampled_t, 3),
            "events_emitted": sampled_events,
            "overhead_vs_off": round(sampled_t / off_t - 1.0, 4),
        },
        "acceptance": {
            "tracing_off_overhead_bound": MAX_OFF_OVERHEAD,
            "pass": off_overhead <= MAX_OFF_OVERHEAD,
        },
    }
    out = os.path.abspath(args.out)
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"off {off_t:.3f}s ({off_overhead:+.1%} vs pre-instrumentation "
          f"{PRE_INSTRUMENTATION_BASELINE_S}s), "
          f"on {on_t:.3f}s ({on_t / off_t - 1.0:+.1%}, "
          f"{on_events} events), "
          f"sampled {sampled_t:.3f}s ({sampled_t / off_t - 1.0:+.1%}, "
          f"{sampled_events} events)")
    print(f"wrote {out}")
    return 0 if payload["acceptance"]["pass"] else 1


if __name__ == "__main__":
    sys.exit(main())
