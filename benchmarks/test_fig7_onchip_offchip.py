"""Figure 7 — off-chip accesses vs on-chip latency, transactional suite.

Both normalized to the shared S-NUCA. Expected shape (the paper's
money plot): private/ASR sit at low on-chip latency but elevated
off-chip traffic; shared is the opposite corner; ESP-NUCA balances —
off-chip close to shared, on-chip latency well below shared.
"""

from repro.architectures.registry import FIGURE_ARCHITECTURES
from repro.harness.experiments import run_experiment

from benchmarks.conftest import emit


def test_fig7_onchip_offchip(benchmark, runner):
    report = benchmark.pedantic(
        run_experiment, args=("fig7", runner), rounds=1, iterations=1)
    emit(report)
    assert report.columns == FIGURE_ARCHITECTURES
    off = dict(zip(report.columns, report.series["offchip-access"]))
    on = dict(zip(report.columns, report.series["onchip-latency"]))
    assert off["shared"] == 1.0 and on["shared"] == 1.0
    # Private-family architectures buy latency with off-chip traffic.
    assert on["private"] < 1.0
    # ESP-NUCA balances: meaningfully better on-chip latency than
    # shared at near-shared off-chip traffic.
    assert on["esp-nuca"] < 0.95
    assert off["esp-nuca"] < off["private"] * 1.25
