"""Figure 10 — shared-normalized performance, NAS parallel benchmarks.

Eight kernels, low sharing, footprints dominated by private data.
Expected shape: private-derived architectures lead the shared baseline
(latency and isolation), and ESP-NUCA is the only shared-substrate
derivative that reaches them (paper Section 6.4).
"""

from repro.harness.experiments import NAS, run_experiment

from benchmarks.conftest import emit


def test_fig10_nas(benchmark, runner):
    report = benchmark.pedantic(
        run_experiment, args=("fig10", runner), rounds=1, iterations=1)
    emit(report)
    assert report.columns == NAS + ["GMEAN"]
    gmean = {name: values[-1] for name, values in report.series.items()}
    # Private-derived architectures beat the shared baseline here.
    assert gmean["private"] > 1.0
    # ESP-NUCA reaches the private-derived family's level: within a few
    # percent of the private gmean, and above shared.
    assert gmean["esp-nuca"] > 1.0
    assert gmean["esp-nuca"] > gmean["private"] - 0.08
