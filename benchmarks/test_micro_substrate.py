"""Microbenchmarks of the substrates: raw throughput of the cache bank,
the mesh timing model, the coherence ledger and a full system step.

These are conventional pytest-benchmark timings (ops/sec) rather than
figure reproductions; they guard against performance regressions in
the simulator itself.
"""

import random

from repro.architectures.registry import make_architecture
from repro.cache.bank import CacheBank
from repro.cache.block import BlockClass, CacheBlock
from repro.common.config import scaled_config
from repro.noc.message import MessageKind
from repro.noc.network import Network
from repro.sim.system import CmpSystem


def test_bank_lookup_throughput(benchmark):
    bank = CacheBank(0, num_sets=64, ways=16)
    rng = random.Random(7)
    blocks = [rng.randrange(1 << 30) for _ in range(4096)]
    for block in blocks[:1024]:
        bank.allocate(block % 64, CacheBlock(block=block,
                                             cls=BlockClass.SHARED,
                                             tokens=1))

    def lookups():
        for block in blocks:
            bank.lookup(block % 64, block)

    benchmark(lookups)


def test_network_arrival_throughput(benchmark):
    net = Network(scaled_config(8))
    rng = random.Random(7)
    pairs = [(rng.randrange(8), rng.randrange(8)) for _ in range(4096)]

    def messages():
        t = 0
        for src, dst in pairs:
            net.arrival(MessageKind.REQUEST, src, dst, t)
            t += 3

    benchmark(messages)


def test_full_system_reference_throughput(benchmark):
    config = scaled_config(8)
    system = CmpSystem(config, make_architecture("esp-nuca", config))
    rng = random.Random(7)
    refs = [(rng.randrange(8), rng.randrange(1 << 14), rng.random() < 0.25)
            for _ in range(4096)]

    state = {"t": 0}

    def accesses():
        t = state["t"]
        for core, block, write in refs:
            system.access(core, block, write, t)
            t += 2
        state["t"] = t

    benchmark(accesses)
