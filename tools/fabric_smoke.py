"""CI smoke test for the multi-process worker fabric, end to end as a
user would run it: boot the real ``esp-nuca serve --workers 2`` daemon
in a subprocess, submit a cold mini-grid, and prove from the server's
own ``status`` counters that **more than one worker process actually
executed jobs** (``fabric.completed_by_pid`` has >= 2 distinct pids,
none of them the daemon's own). A traced resubmission of a fresh point
then pins the same fact in trace metadata: the exported Chrome trace
must contain executor ``pool run`` instants whose ``worker_pid`` args
name processes other than the daemon. Results are checked
byte-identical to a direct serial in-process run, and the drain must
leave zero orphaned workers — threads *and* fabric processes.

Run locally with ``PYTHONPATH=src python tools/fabric_smoke.py``; the
in-process equivalents live in ``tests/test_fabric.py`` (this script
exists to exercise the actual CLI flag, daemon process lifecycle and
OS-level process fan-out, which in-process tests cannot).
"""

import json
import os
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.obs.export import events_of_category, validate_chrome  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402

ARCHS = ["shared", "private", "esp-nuca"]
WORKLOADS = ["apache"]
SETTINGS = {"refs_per_core": 400, "warmup_refs_per_core": 100,
            "capacity_factor": 8, "num_seeds": 2}
POINTS = len(ARCHS) * len(WORKLOADS) * SETTINGS["num_seeds"]
BOOT_TIMEOUT = 60
DRAIN_TIMEOUT = 120


def fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def canonical(payloads):
    return json.dumps(payloads, sort_keys=True, separators=(",", ":"))


def reference_results():
    """The same grid, serial, in this process, no caches."""
    from repro.common.config import scaled_config
    from repro.harness.executor import Executor
    from repro.harness.runcache import RunCache
    from repro.harness.runner import RunSettings, grid_points
    from repro.common.rng import perturbed_seeds

    settings = RunSettings(
        capacity_factor=SETTINGS["capacity_factor"],
        refs_per_core=SETTINGS["refs_per_core"],
        warmup_refs_per_core=SETTINGS["warmup_refs_per_core"],
        num_seeds=SETTINGS["num_seeds"])
    points = grid_points(scaled_config(settings.capacity_factor), settings,
                         ARCHS, WORKLOADS,
                         perturbed_seeds(settings.base_seed,
                                         settings.num_seeds))
    executor = Executor(jobs=1, cache=RunCache(enabled=False))
    return [r.to_dict() for r in executor.run(points)]


def check_trace_worker_pids(path, server_pid):
    with open(path) as handle:
        payload = json.load(handle)
    problems = validate_chrome(payload)
    if problems:
        fail(f"trace {path} is not valid Chrome trace JSON: {problems[:5]}")
    pool_runs = [e for e in events_of_category(payload, "executor")
                 if e.get("name") == "pool run"]
    if not pool_runs:
        fail("trace has no executor 'pool run' instants — the fabric "
             "path did not run")
    pids = {e["args"]["worker_pid"] for e in pool_runs}
    if server_pid in pids:
        fail(f"trace pool runs claim the daemon's own pid {server_pid}: "
             f"{sorted(pids)}")
    spawned = {e["args"]["worker_pid"]
               for e in events_of_category(payload, "fabric")
               if e.get("name") == "worker spawned"}
    # Workers may predate the traced job (the pool persists across
    # batches), so spawn instants are optional — but when present they
    # must be consistent with the pids that ran jobs.
    if spawned and not pids <= spawned | pids:
        fail(f"inconsistent fabric pids: ran {pids}, spawned {spawned}")
    return sorted(pids)


def main():
    workdir = tempfile.mkdtemp(prefix="esp-fabric-smoke-")
    sock = os.path.join(workdir, "svc.sock")
    trace_dir = os.environ.get("REPRO_TRACE_DIR") \
        or os.path.join(workdir, "traces")
    env = dict(os.environ,
               PYTHONPATH=os.path.join(REPO, "src"),
               REPRO_CACHE_DIR=os.path.join(workdir, "cache"),
               REPRO_TRACE_DIR=trace_dir)
    env.pop("REPRO_JOBS", None)  # --workers must win on its own
    server = subprocess.Popen(
        [sys.executable, "-m", "repro.harness.cli", "serve",
         "--bind", f"unix:{sock}", "--workers", "2",
         "--service-workers", "1", "--batch", str(POINTS)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    try:
        with ServiceClient.wait_until_ready(f"unix:{sock}",
                                            timeout=BOOT_TIMEOUT,
                                            proc=server) as client:
            cold = client.submit(ARCHS, WORKLOADS, settings=SETTINGS,
                                 wait=True)
            if cold["state"] != "done" or len(cold["results"]) != POINTS:
                fail(f"cold submit did not complete: {cold}")

            status = client.status()
            if status.get("procs") != 2:
                fail(f"server should report 2 simulation processes: "
                     f"{status}")
            fabric = status.get("fabric")
            if not fabric:
                fail(f"server status has no fabric stats: {status}")
            by_pid = {int(pid): n
                      for pid, n in fabric["completed_by_pid"].items()}
            if len(by_pid) < 2:
                fail(f"expected jobs executed by >1 worker process, got "
                     f"{by_pid}")
            if server.pid in by_pid:
                fail(f"daemon pid {server.pid} appears as a worker: "
                     f"{by_pid}")
            if sum(by_pid.values()) != fabric["completed"]:
                fail(f"per-pid completions disagree with the total: "
                     f"{fabric}")

            if canonical(cold["results"]) != canonical(reference_results()):
                fail("fabric results differ from a direct serial run")

            # A traced job on a fresh point (cache would swallow a
            # repeat) pins worker pids in exported trace metadata.
            traced = client.submit(["esp-nuca", "shared"], WORKLOADS,
                                   seeds=[423, 424], settings=SETTINGS,
                                   wait=True, trace=True)
            if traced["state"] != "done" or not traced.get("trace_path"):
                fail(f"traced submit did not complete: {traced}")
            trace_pids = check_trace_worker_pids(traced["trace_path"],
                                                 server.pid)

            summary = client.drain()
            if not summary.get("drained") or summary["workers_alive"] != 0:
                fail(f"drain left workers running: {summary}")
        server.wait(timeout=DRAIN_TIMEOUT)
        if server.returncode != 0:
            fail(f"server exited {server.returncode} after drain")
        # The drain barrier tears the fabric down: no worker process
        # may outlive the daemon.
        for pid in by_pid:
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                continue
            fail(f"worker process {pid} survived the drain")
        print("fabric smoke OK: "
              f"{POINTS} cold point(s) executed across "
              f"{len(by_pid)} worker processes {sorted(by_pid)}, "
              f"traced pool runs on pids {trace_pids}, results identical "
              f"to serial, clean drain with no surviving workers")
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()


if __name__ == "__main__":
    main()
