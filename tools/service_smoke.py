"""CI smoke test for the simulation service, end to end as a user
would run it: boot the real ``esp-nuca serve`` daemon in a subprocess,
submit one uncached grid and then the identical grid again, and prove
from the server's own counters that the second submission was answered
entirely from the persistent run cache — ``points.executed`` unchanged,
``points.cached`` incremented, results byte-identical — then drain and
require a clean exit with zero orphaned workers.

Run locally with ``PYTHONPATH=src python tools/service_smoke.py``; the
in-process equivalent lives in ``tests/test_service.py`` (this script
exists to exercise the actual CLI entry points and process lifecycle,
which in-process tests cannot).
"""

import json
import os
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.service.client import ServiceClient  # noqa: E402

ARCHS = ["shared", "esp-nuca"]
WORKLOADS = ["apache"]
SETTINGS = {"refs_per_core": 400, "warmup_refs_per_core": 100,
            "capacity_factor": 8, "num_seeds": 1}
POINTS = len(ARCHS) * len(WORKLOADS) * SETTINGS["num_seeds"]
BOOT_TIMEOUT = 60
DRAIN_TIMEOUT = 120


def fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def wait_for_socket(path, proc):
    deadline = time.monotonic() + BOOT_TIMEOUT
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            fail(f"server died during boot (exit {proc.returncode})")
        if os.path.exists(path):
            return
        time.sleep(0.1)
    fail(f"server socket {path} did not appear within {BOOT_TIMEOUT}s")


def canonical(payloads):
    return json.dumps(payloads, sort_keys=True, separators=(",", ":"))


def main():
    workdir = tempfile.mkdtemp(prefix="esp-smoke-")
    sock = os.path.join(workdir, "svc.sock")
    env = dict(os.environ,
               PYTHONPATH=os.path.join(os.path.dirname(os.path.dirname(
                   os.path.abspath(__file__))), "src"),
               REPRO_CACHE_DIR=os.path.join(workdir, "cache"),
               REPRO_JOBS="1")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro.harness.cli", "serve",
         "--bind", f"unix:{sock}", "--service-workers", "1"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    try:
        wait_for_socket(sock, server)
        with ServiceClient.connect(f"unix:{sock}") as client:
            first = client.submit(ARCHS, WORKLOADS, settings=SETTINGS,
                                  wait=True)
            if first["state"] != "done" or len(first["results"]) != POINTS:
                fail(f"first submit did not complete: {first}")
            status = client.status()["points"]
            if status["executed"] != POINTS or status["cached"] != 0:
                fail(f"first submit should simulate everything: {status}")

            second = client.submit(ARCHS, WORKLOADS, settings=SETTINGS,
                                   wait=True)
            status = client.status()["points"]
            if status["executed"] != POINTS:
                fail(f"cached resubmission reached a worker: {status}")
            if status["cached"] != POINTS or second["cached"] != POINTS:
                fail(f"resubmission not served from cache: {status}")
            if canonical(first["results"]) != canonical(second["results"]):
                fail("cached results differ from computed results")

            summary = client.drain()
            if not summary.get("drained") or summary["workers_alive"] != 0:
                fail(f"drain left workers running: {summary}")
        server.wait(timeout=DRAIN_TIMEOUT)
        if server.returncode != 0:
            fail(f"server exited {server.returncode} after drain")
        output = server.stdout.read()
        if "service drained" not in output:
            fail(f"missing drain summary in server output:\n{output}")
        print("service smoke OK: "
              f"{POINTS} point(s) simulated once, resubmission fully "
              "cached, clean drain")
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()


if __name__ == "__main__":
    main()
