"""CI smoke test for the simulation service, end to end as a user
would run it: boot the real ``esp-nuca serve`` daemon in a subprocess,
submit one uncached grid and then the identical grid again, and prove
from the server's own counters that the second submission was answered
entirely from the persistent run cache — ``points.executed`` unchanged,
``points.cached`` incremented, results byte-identical — then submit a
third (uncached) grid with ``trace: true`` and require a well-formed
Chrome-trace export containing spans from both clock domains, then
drain and require a clean exit with zero orphaned workers. The CI job
uploads the captured trace as a workflow artifact.

Run locally with ``PYTHONPATH=src python tools/service_smoke.py``; the
in-process equivalent lives in ``tests/test_service.py`` (this script
exists to exercise the actual CLI entry points and process lifecycle,
which in-process tests cannot).
"""

import json
import os
import subprocess
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.obs.export import (events_of_category, span_names,  # noqa: E402
                              validate_chrome)
from repro.service.client import ServiceClient  # noqa: E402

ARCHS = ["shared", "esp-nuca"]
WORKLOADS = ["apache"]
SETTINGS = {"refs_per_core": 400, "warmup_refs_per_core": 100,
            "capacity_factor": 8, "num_seeds": 1}
#: The traced run gets a little more work so the capture reliably
#: contains helping-block events (replica/victim placements).
TRACE_SETTINGS = {"refs_per_core": 800, "warmup_refs_per_core": 200,
                  "capacity_factor": 8, "num_seeds": 1}
POINTS = len(ARCHS) * len(WORKLOADS) * SETTINGS["num_seeds"]
BOOT_TIMEOUT = 60
DRAIN_TIMEOUT = 120


def fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def canonical(payloads):
    return json.dumps(payloads, sort_keys=True, separators=(",", ":"))


def check_trace(path):
    """The traced submission's export must be a valid Chrome trace with
    spans from both clock domains and a helping-block instant."""
    with open(path) as handle:
        payload = json.load(handle)
    problems = validate_chrome(payload)
    if problems:
        fail(f"trace {path} is not valid Chrome trace JSON: {problems[:5]}")
    if not [e for e in events_of_category(payload, "l2")
            if e.get("ph") == "X"]:
        fail("trace has no sim-clock L2 bank spans")
    if not any(name.startswith("run ") for name in span_names(payload)):
        fail("trace has no wall-clock executor run span")
    helping = [e["name"] for e in payload["traceEvents"]
               if e.get("ph") == "i" and e.get("name") in
               ("replica placed", "victim placed", "allocation refused")]
    if not helping:
        fail("trace has no helping-block instant (replica/victim/refusal)")
    service_names = {e["name"]
                     for e in events_of_category(payload, "service")}
    if "queue depth" not in service_names:
        fail(f"trace has no service queue-depth counter: {service_names}")
    return len(payload["traceEvents"])


def main():
    workdir = tempfile.mkdtemp(prefix="esp-smoke-")
    sock = os.path.join(workdir, "svc.sock")
    # CI points REPRO_TRACE_DIR into the workspace so the captured
    # trace can be uploaded as a workflow artifact.
    trace_dir = os.environ.get("REPRO_TRACE_DIR") \
        or os.path.join(workdir, "traces")
    env = dict(os.environ,
               PYTHONPATH=os.path.join(os.path.dirname(os.path.dirname(
                   os.path.abspath(__file__))), "src"),
               REPRO_CACHE_DIR=os.path.join(workdir, "cache"),
               REPRO_TRACE_DIR=trace_dir,
               REPRO_JOBS="1")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro.harness.cli", "serve",
         "--bind", f"unix:{sock}", "--service-workers", "1"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    try:
        with ServiceClient.wait_until_ready(f"unix:{sock}",
                                            timeout=BOOT_TIMEOUT,
                                            proc=server) as client:
            first = client.submit(ARCHS, WORKLOADS, settings=SETTINGS,
                                  wait=True)
            if first["state"] != "done" or len(first["results"]) != POINTS:
                fail(f"first submit did not complete: {first}")
            status = client.status()["points"]
            if status["executed"] != POINTS or status["cached"] != 0:
                fail(f"first submit should simulate everything: {status}")

            second = client.submit(ARCHS, WORKLOADS, settings=SETTINGS,
                                   wait=True)
            status = client.status()["points"]
            if status["executed"] != POINTS:
                fail(f"cached resubmission reached a worker: {status}")
            if status["cached"] != POINTS or second["cached"] != POINTS:
                fail(f"resubmission not served from cache: {status}")
            if canonical(first["results"]) != canonical(second["results"]):
                fail("cached results differ from computed results")

            traced = client.submit(["esp-nuca"], WORKLOADS, seeds=[99],
                                   settings=TRACE_SETTINGS, wait=True,
                                   trace=True)
            if traced["state"] != "done":
                fail(f"traced submit did not complete: {traced}")
            if traced.get("trace_error") or not traced.get("trace_path"):
                fail(f"traced submit produced no trace: {traced}")
            if "gauges" not in traced:
                fail(f"job snapshot is missing live gauges: {traced}")
            trace_events = check_trace(traced["trace_path"])

            summary = client.drain()
            if not summary.get("drained") or summary["workers_alive"] != 0:
                fail(f"drain left workers running: {summary}")
        server.wait(timeout=DRAIN_TIMEOUT)
        if server.returncode != 0:
            fail(f"server exited {server.returncode} after drain")
        output = server.stdout.read()
        if "service drained" not in output:
            fail(f"missing drain summary in server output:\n{output}")
        print("service smoke OK: "
              f"{POINTS} point(s) simulated once, resubmission fully "
              f"cached, traced run exported {trace_events} event(s) to "
              f"{traced['trace_path']}, clean drain")
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()


if __name__ == "__main__":
    main()
