"""CI smoke test for the HTTP gateway, end to end as an operator would
run it: migrate a fresh store, mint a tenant key via the CLI, boot the
real ``esp-nuca gateway serve`` in a subprocess, submit a backlog, and
then do the one thing in-process tests cannot — **SIGKILL the gateway
mid-backlog** and prove the system's durability story:

* the killed process leaves **zero orphaned simulation workers** (the
  fabric's parent-death watchdog);
* a restarted gateway on the same store recovers every non-terminal
  job, drives it to a terminal state, and every result is
  **byte-identical** to a direct in-process ``run_point`` execution of
  the same grid;
* per-tenant quota rejects (429 ``quota-jobs``) and token-bucket rate
  limiting (429 ``rate-limited`` with ``Retry-After``) are enforced on
  the wire, and an unauthenticated request is refused (401);
* ``/metrics`` scraped under load is valid Prometheus exposition whose
  counters are monotone across scrapes, and ``/readyz`` reports ready
  on a booted gateway but flips false while a SIGTERM drain is still
  finishing jobs.

Run locally with ``PYTHONPATH=src python tools/gateway_smoke.py``; the
in-process equivalents live in ``tests/test_gateway.py`` and
``tests/test_telemetry.py``.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.gateway.client import GatewayClient, GatewayError  # noqa: E402
from repro.obs.metrics import (  # noqa: E402
    assert_counters_monotone, parse_exposition)

ARCHS = ["shared", "private", "esp-nuca"]
WORKLOADS = ["apache"]
SETTINGS = {"refs_per_core": 400, "warmup_refs_per_core": 100,
            "capacity_factor": 8, "num_seeds": 1}
#: Distinct seed per job so every job is genuinely uncached work.
JOBS = 4
BOOT_TIMEOUT = 60
FINISH_TIMEOUT = 300


def fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def canonical(payloads):
    return json.dumps(payloads, sort_keys=True, separators=(",", ":"))


def reference_results(seed):
    """The same grid, serial, in this process, no caches."""
    from repro.common.config import scaled_config
    from repro.harness.executor import Executor
    from repro.harness.runcache import RunCache
    from repro.harness.runner import RunSettings, grid_points

    settings = RunSettings(
        capacity_factor=SETTINGS["capacity_factor"],
        refs_per_core=SETTINGS["refs_per_core"],
        warmup_refs_per_core=SETTINGS["warmup_refs_per_core"],
        num_seeds=SETTINGS["num_seeds"])
    points = grid_points(scaled_config(settings.capacity_factor), settings,
                         ARCHS, WORKLOADS, [seed])
    executor = Executor(jobs=1, cache=RunCache(enabled=False))
    return [r.to_dict() for r in executor.run(points)]


def run_cli(env, *argv):
    proc = subprocess.run(
        [sys.executable, "-m", "repro.harness.cli", *argv],
        env=env, capture_output=True, text=True, timeout=60)
    if proc.returncode != 0:
        fail(f"CLI {' '.join(argv)} exited {proc.returncode}:\n"
             f"{proc.stdout}\n{proc.stderr}")
    return proc.stdout


def start_gateway(env, db, port):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.harness.cli", "gateway", "serve",
         "--db", db, "--http", f"127.0.0.1:{port}",
         "--workers", "2", "--service-workers", "2", "--batch", "3"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)


def worker_pids(status):
    fabric = status.get("fabric") or {}
    return {int(pid) for pid in (fabric.get("completed_by_pid") or {})} | \
           {int(pid) for pid in (fabric.get("alive") or [])}


def main():
    workdir = tempfile.mkdtemp(prefix="esp-gateway-smoke-")
    db = os.path.join(workdir, "jobs.sqlite")
    port = 8123 + os.getpid() % 20000
    url = f"http://127.0.0.1:{port}"
    env = dict(os.environ,
               PYTHONPATH=os.path.join(REPO, "src"),
               REPRO_CACHE_DIR=os.path.join(workdir, "cache"))
    env.pop("REPRO_JOBS", None)

    # Operator workflow: migrate, mint a tenant, list it back.
    out = run_cli(env, "gateway", "migrate", "--db", db)
    if "applied" not in out:
        fail(f"migrate applied nothing on a fresh store: {out!r}")
    def mint(name, *flags):
        out = run_cli(env, "gateway", "add-tenant", "--db", db,
                      "--tenant", name, *flags)
        key = next((line.split(": ", 1)[1].strip()
                    for line in out.splitlines()
                    if line.startswith("api key")), None)
        if not key or not key.startswith("esp_"):
            fail(f"add-tenant printed no api key: {out!r}")
        return key

    # Tight limits to assert the rejects; loose limits for the backlog.
    key = mint("smoke", "--max-jobs", "2", "--max-points", "64",
               "--rate-capacity", "3", "--rate-refill", "1")
    bulk_key = mint("bulk", "--max-jobs", "32", "--max-points", "1024",
                    "--rate-capacity", "100", "--rate-refill", "50")
    out = run_cli(env, "gateway", "list-tenants", "--db", db)
    if "smoke:" not in out or "bulk:" not in out:
        fail(f"list-tenants does not show the new tenants: {out!r}")

    server = start_gateway(env, db, port)
    submitted = {}
    killed_pids = set()
    try:
        client = GatewayClient.wait_until_ready(url, timeout=BOOT_TIMEOUT,
                                                proc=server, api_key=key)

        # -- telemetry: ready on boot, baseline scrape -----------------------
        ready = client.readyz()
        if not ready.get("ready") or not all(ready["checks"].values()):
            fail(f"/readyz not ready on a booted gateway: {ready}")
        scrape_before = parse_exposition(client.metrics())

        # -- auth is required ------------------------------------------------
        try:
            GatewayClient(url).status()
            fail("unauthenticated request was not rejected")
        except GatewayError as exc:
            if exc.status != 401:
                fail(f"expected 401 without a key, got {exc}")

        # -- rate limit: burst capacity 3, then a typed 429 ------------------
        hits = 0
        got_rate_reject = None
        for _ in range(10):
            try:
                client.submit(["esp-nuca"], WORKLOADS,
                              settings=SETTINGS, seeds=[7001])
                hits += 1
            except GatewayError as exc:
                if exc.code == "rate-limited":
                    got_rate_reject = exc
                    break
                if exc.code == "quota-jobs":
                    continue  # quota kicked in before the bucket drained
                raise
        if got_rate_reject is None:
            fail("10 rapid submissions never hit the rate limit "
                 f"(capacity 3, refill 1/s; {hits} admitted)")
        if not got_rate_reject.retry_after or got_rate_reject.retry_after < 1:
            fail(f"rate reject carries no Retry-After: {got_rate_reject}")

        # -- quota: at most 2 unfinished jobs --------------------------------
        time.sleep(3.5)  # refill the bucket so quota is what rejects
        got_quota_reject = False
        for i in range(4):
            try:
                client.submit(ARCHS, WORKLOADS, settings=SETTINGS,
                              seeds=[7100 + i])
            except GatewayError as exc:
                if exc.code == "quota-jobs":
                    got_quota_reject = True
                    break
                if exc.code == "rate-limited":
                    time.sleep(exc.retry_after or 1)
                    continue
                raise
        if not got_quota_reject:
            fail("4 concurrent submissions never hit the 2-job quota")

        # Let the smoke tenant's jobs finish so the kill test starts
        # from a quiet queue.
        for row in client.jobs():
            client.wait(row["job"], timeout=FINISH_TIMEOUT)

        # -- /metrics after load: parseable, monotone, fleet scopes ----------
        scrape_after = parse_exposition(client.metrics())
        assert_counters_monotone(scrape_before, scrape_after)
        for family in ("espnuca_queue_backlog", "espnuca_fabric_workers",
                       "espnuca_cache_hits_total", "espnuca_ready"):
            if not scrape_after.family(family):
                fail(f"/metrics is missing the {family} family")
        requests_name = "espnuca_gateway_http_requests_total"
        if (scrape_after.value(requests_name, default=0) <=
                scrape_before.value(requests_name, default=0)):
            fail("HTTP request counter did not grow between scrapes")
        if scrape_after.value("espnuca_gateway_tenants_requests_total",
                              default=0, tenant="smoke") <= 0:
            fail("per-tenant request counter missing for tenant 'smoke'")
        client.close()

        # -- the backlog to kill: JOBS uncached grids, loose quotas ----------
        bulk = GatewayClient(url, api_key=bulk_key)
        killed_pids = worker_pids(bulk.status())
        seeds = [8200 + i for i in range(JOBS)]
        for seed in seeds:
            reply = bulk.submit(ARCHS, WORKLOADS, settings=SETTINGS,
                                seeds=[seed])
            submitted[seed] = reply["job"]

        # -- SIGKILL mid-backlog (submits are ms, jobs are seconds: the
        # backlog is genuinely in flight) -----------------------------------
        os.kill(server.pid, signal.SIGKILL)
        server.wait(timeout=30)
        bulk.close()

        # The parent-death watchdog must reap every simulation worker
        # (heartbeat interval 1s; give it a few).
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline:
            alive = [pid for pid in killed_pids
                     if _pid_alive(pid)]
            if not alive:
                break
            time.sleep(0.5)
        else:
            fail(f"simulation workers survived the SIGKILL'd gateway: "
                 f"{alive}")

        # -- restart on the same store: recovery ----------------------------
        server = start_gateway(env, db, port)
        client = GatewayClient.wait_until_ready(url, timeout=BOOT_TIMEOUT,
                                                proc=server,
                                                api_key=bulk_key)
        finals = {}
        for seed, gid in submitted.items():
            snap = client.wait(gid, timeout=FINISH_TIMEOUT)
            finals[seed] = snap
        bad = {gid: s["state"] for gid, s in finals.items()
               if s["state"] != "done"}
        if bad:
            fail(f"recovered jobs did not complete: {bad}")
        status = client.status()
        recovered = status["gateway"]["recovered"]
        # At most one job can slip to terminal in the ms between the
        # last submit and the SIGKILL; everything else must have been
        # recovered from the store.
        if recovered < len(submitted) - 1:
            fail(f"expected >= {len(submitted) - 1} recovered jobs, "
                 f"status says {recovered}")

        # -- byte-identity vs direct runs ------------------------------------
        for seed, gid in submitted.items():
            got = client.results(gid)["results"]
            want = reference_results(seed)
            if canonical(got) != canonical(want):
                fail(f"job {gid} (seed {seed}) results differ from a "
                     f"direct serial run")

        # -- graceful stop: /readyz flips false while the drain finishes -----
        final_pids = worker_pids(client.status())
        client.submit(ARCHS, WORKLOADS, settings=SETTINGS, seeds=[9300])
        server.send_signal(signal.SIGTERM)
        saw_not_ready = False
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline and server.poll() is None:
            try:
                reply = client.readyz()
            except (GatewayError, OSError):
                time.sleep(0.05)  # listener mid-teardown; poll() decides
                continue
            if not reply.get("ready"):
                if reply["checks"].get("queue_accepting") is not False:
                    fail(f"draining /readyz should fail queue_accepting: "
                         f"{reply}")
                saw_not_ready = True
                break
            time.sleep(0.05)
        if not saw_not_ready:
            fail("/readyz never reported not-ready during the drain")
        client.close()
        server.wait(timeout=120)
        if server.returncode != 0:
            fail(f"gateway exited {server.returncode} after SIGTERM")
        for pid in final_pids:
            if _pid_alive(pid):
                fail(f"worker process {pid} survived the graceful stop")
        print("gateway smoke OK: "
              f"auth/rate/quota rejects typed, {len(submitted)} job(s) "
              f"survived SIGKILL (workers reaped), all recovered to "
              f"done with results byte-identical to direct runs, "
              f"/metrics monotone across scrapes, /readyz flipped "
              f"false during the drain, clean SIGTERM stop")
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()


def _pid_alive(pid):
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


if __name__ == "__main__":
    main()
