"""CI runner for the differential-oracle grid (docs/checking.md).

Runs every oracle in :mod:`repro.check.oracles` — the metamorphic
equivalences (pinned-zero, flat-unbounded, single-core) plus the
seed-randomized fuzzer that drives every registered architecture under
full invariant checking — prints one PASS/FAIL report per oracle, and
exits nonzero if any failed.

Run locally with ``PYTHONPATH=src python tools/check_sweep.py``; use
``--quick`` for a reduced grid (one seed per oracle, shorter traces)
when iterating.
"""

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.check import oracles  # noqa: E402


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="run the differential-oracle grid")
    parser.add_argument("--quick", action="store_true",
                        help="reduced grid: one seed per oracle, "
                             "shorter traces")
    parser.add_argument("--fuzz-sample", type=int, default=1,
                        help="invariant sweep period for the fuzzer "
                             "(1 = every access)")
    args = parser.parse_args(argv)
    if args.quick:
        reports = oracles.run_all(seeds=(1,), fuzz_seeds=(11,),
                                  refs_per_core=200,
                                  fuzz_refs_per_core=100,
                                  fuzz_sample=args.fuzz_sample)
    else:
        reports = oracles.run_all(fuzz_sample=args.fuzz_sample)
    failed = [r for r in reports if not r.ok]
    for report in reports:
        print(report)
    print(f"{len(reports) - len(failed)}/{len(reports)} oracles passed")
    return 1 if failed else 0


if __name__ == "__main__":
    start = time.time()
    code = main()
    print(f"({time.time() - start:.1f}s)")
    sys.exit(code)
