"""Demand-access outcome types and the Figure 6 supplier taxonomy."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Supplier(enum.Enum):
    """Who supplied the data — the decomposition axis of Figure 6."""

    L1_LOCAL = "local L1"          # hit in the requesting core's L1
    L1_REMOTE = "remote L1"        # cache-to-cache transfer from another L1
    L2_LOCAL = "local/private L2"  # bank attached to the requester's router
    L2_SHARED = "shared L2"        # shared-map bank at another router
    L2_REMOTE = "remote L2"        # another core's private-partition bank
    OFFCHIP = "off-chip"


# Dense per-member index for hot paths (flat per-supplier arrays in
# the vectorized engine's contention session).
for _i, _supplier in enumerate(Supplier):
    _supplier.idx = _i


@dataclass(frozen=True)
class AccessOutcome:
    """Timing result of one demand access."""

    complete: int        # absolute cycle the data is usable by the core
    supplier: Supplier
