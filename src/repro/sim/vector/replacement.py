"""Batch replacement decisions over struct-of-arrays set state.

:class:`SetMatrix` mirrors a bank's sets as dense ``(nsets, ways)``
columns — ``valid`` / ``helping`` flags and an LRU stamp matrix — the
layout described in docs/engine.md ("State layout"). On top of it,
:func:`choose_flat` and :func:`choose_protected` reproduce the decision
tables of :class:`~repro.cache.replacement.FlatLru` and
:class:`~repro.cache.replacement.ProtectedLru` for whole batches of
sets at once, including tie-breaks:

* a free way is the lowest-indexed invalid way;
* an LRU victim is the lowest-indexed block with the minimal stamp
  (``CacheSet.lru_block`` uses a strict ``<``, so the first minimum
  wins — ``argmin`` has the same convention);
* helping refusal (``limit == 0``) and the over-budget shed-before-free
  convergence rule (a first-class install into a set strictly over its
  helping budget evicts the LRU helping block even while free ways
  remain) follow Section 3.2 exactly.

``tests/test_vector_replacement.py`` pins the equivalence against the
reference policies property-style: random op sequences are driven
through a real :class:`~repro.cache.cache_set.CacheSet` and through a
:class:`SetMatrix`, and every ``choose`` must agree, on both the numpy
and the scalar fallback path.

numpy is a soft dependency (same gate as the rest of the package): the
batch entry points accept ``force_scalar=True`` and degrade to per-row
Python loops with identical results.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

try:  # soft dependency, as in soa.py
    import numpy as _np
except Exception:  # pragma: no cover - exercised only without numpy
    _np = None

HAS_NUMPY = _np is not None

#: Stamp larger than any real LRU counter, used to mask invalid ways
#: out of ``argmin`` scans. Banks stamp from a monotone int counter, so
#: anything at this magnitude would need ~10^18 touches.
_INF = (1 << 62)

#: ``choose`` result meaning "admission refused" (helping incoming into
#: a zero-budget set) — the batch analogue of the reference policy's
#: ``None``.
REFUSED = -1


class SetMatrix:
    """SoA mirror of ``nsets`` cache sets of ``ways`` ways each.

    Three parallel matrices, row per set, column per way:

    * ``valid[s][w]`` — way holds a block;
    * ``helping[s][w]`` — that block is second-class (replica/victim);
      meaningful only where ``valid``;
    * ``lru[s][w]`` — the block's LRU stamp (bank-global monotone
      counter, higher = more recent).

    Mutators mirror the reference set's bookkeeping: ``install`` places
    a block (overwriting whatever held the way), ``touch`` re-stamps,
    ``evict`` clears. ``helping_count`` is derived, never stored — one
    less counter to keep coherent.
    """

    __slots__ = ("nsets", "ways", "valid", "helping", "lru")

    def __init__(self, nsets: int, ways: int) -> None:
        self.nsets = nsets
        self.ways = ways
        self.valid: List[List[bool]] = [[False] * ways for _ in range(nsets)]
        self.helping: List[List[bool]] = [[False] * ways
                                          for _ in range(nsets)]
        self.lru: List[List[int]] = [[0] * ways for _ in range(nsets)]

    def install(self, set_idx: int, way: int, helping: bool,
                stamp: int) -> None:
        self.valid[set_idx][way] = True
        self.helping[set_idx][way] = helping
        self.lru[set_idx][way] = stamp

    def touch(self, set_idx: int, way: int, stamp: int) -> None:
        self.lru[set_idx][way] = stamp

    def reclassify(self, set_idx: int, way: int, helping: bool) -> None:
        self.helping[set_idx][way] = helping

    def evict(self, set_idx: int, way: int) -> None:
        self.valid[set_idx][way] = False
        self.helping[set_idx][way] = False
        self.lru[set_idx][way] = 0

    def helping_count(self, set_idx: int) -> int:
        valid = self.valid[set_idx]
        return sum(1 for w, h in enumerate(self.helping[set_idx])
                   if h and valid[w])


def _free_way(valid: Sequence[bool]) -> Optional[int]:
    for way, v in enumerate(valid):
        if not v:
            return way
    return None


def _lru_way(valid: Sequence[bool], lru: Sequence[int],
             mask: Optional[Sequence[bool]] = None) -> Optional[int]:
    best = None
    best_stamp = _INF
    for way, v in enumerate(valid):
        if not v or (mask is not None and not mask[way]):
            continue
        if lru[way] < best_stamp:
            best, best_stamp = way, lru[way]
    return best


def _choose_flat_row(valid: Sequence[bool], lru: Sequence[int]) -> int:
    free = _free_way(valid)
    if free is not None:
        return free
    way = _lru_way(valid, lru)
    assert way is not None
    return way


def _choose_protected_row(valid: Sequence[bool], helping: Sequence[bool],
                          lru: Sequence[int], incoming_helping: bool,
                          limit: int) -> int:
    # Mirrors ProtectedLru.choose branch for branch (see that docstring
    # for the policy rationale; this file only owes it equivalence).
    n = sum(1 for w, h in enumerate(helping) if h and valid[w])
    if incoming_helping:
        if limit == 0:
            return REFUSED
        if n >= limit:
            way = _lru_way(valid, lru, helping)
            return way if way is not None else REFUSED
        free = _free_way(valid)
        if free is not None:
            return free
        way = _lru_way(valid, lru)
        assert way is not None
        return way
    if n > limit:
        way = _lru_way(valid, lru, helping)
        if way is not None:
            return way
    free = _free_way(valid)
    if free is not None:
        return free
    if n > 0 and n >= limit:
        way = _lru_way(valid, lru, helping)
        if way is not None:
            return way
    way = _lru_way(valid, lru)
    assert way is not None
    return way


def choose_flat(matrix: SetMatrix, set_indices: Sequence[int],
                force_scalar: bool = False) -> List[int]:
    """Flat-LRU victim way for each set in ``set_indices``."""
    if not HAS_NUMPY or force_scalar:
        return [_choose_flat_row(matrix.valid[s], matrix.lru[s])
                for s in set_indices]
    idx = _np.asarray(set_indices, dtype=_np.intp)
    valid = _np.asarray(matrix.valid, dtype=bool)[idx]
    lru = _np.asarray(matrix.lru, dtype=_np.int64)[idx]
    masked = _np.where(valid, lru, _INF)
    lru_all = masked.argmin(axis=1)
    has_free = (~valid).any(axis=1)
    free = (~valid).argmax(axis=1)
    return [int(w) for w in _np.where(has_free, free, lru_all)]


def choose_protected(matrix: SetMatrix, set_indices: Sequence[int],
                     incoming_helping: Sequence[bool],
                     limits: Sequence[int],
                     force_scalar: bool = False) -> List[int]:
    """Protected-LRU victim way for each set, :data:`REFUSED` on refusal.

    ``incoming_helping[i]`` / ``limits[i]`` give the incoming block's
    class and the set's helping budget (``bank.helping_limit``) for
    ``set_indices[i]``.
    """
    if not HAS_NUMPY or force_scalar:
        return [_choose_protected_row(matrix.valid[s], matrix.helping[s],
                                      matrix.lru[s], h, limit)
                for s, h, limit in zip(set_indices, incoming_helping,
                                       limits)]
    idx = _np.asarray(set_indices, dtype=_np.intp)
    valid = _np.asarray(matrix.valid, dtype=bool)[idx]
    helping = _np.asarray(matrix.helping, dtype=bool)[idx] & valid
    lru = _np.asarray(matrix.lru, dtype=_np.int64)[idx]
    inc = _np.asarray(incoming_helping, dtype=bool)
    lim = _np.asarray(limits, dtype=_np.int64)

    n = helping.sum(axis=1)
    masked_all = _np.where(valid, lru, _INF)
    masked_help = _np.where(helping, lru, _INF)
    lru_all = masked_all.argmin(axis=1)
    lru_help = masked_help.argmin(axis=1)
    has_help = helping.any(axis=1)
    has_free = (~valid).any(axis=1)
    free = (~valid).argmax(axis=1)

    # Helping incoming: shed the LRU helping block at the budget, else
    # free way, else whole-set LRU; refuse outright at limit 0.
    way_h = _np.where(n >= lim, lru_help,
                      _np.where(has_free, free, lru_all))
    way_h = _np.where(lim == 0, REFUSED, way_h)
    # First-class incoming: the three-stage cascade, composed in
    # reverse so earlier branches override later ones.
    way_f = _np.where((n > 0) & (n >= lim) & has_help, lru_help, lru_all)
    way_f = _np.where(has_free, free, way_f)
    way_f = _np.where((n > lim) & has_help, lru_help, way_f)
    return [int(w) for w in _np.where(inc, way_h, way_f)]
