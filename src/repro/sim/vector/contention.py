"""Batched contention-path kernels (docs/engine.md, "Contention kernels").

PR 6 batched the *local* path: runs of L1 hits commit in bulk, with
their statistics folded into a handful of additions. This module does
the same for the *contention* path — the misses and upgrades the
vectorized engine still serves one at a time in exact epoch order.

The scalar timing entry points (:meth:`repro.noc.network.Network.arrival`,
:meth:`repro.mem.controller.MemoryController.service` /
``post_writeback``, :meth:`repro.architectures.base.NucaArchitecture.
bank_service`) interleave two concerns per call: the busy-until
arithmetic that *determines timing*, and the statistics counters that
*observe it*. The timing part is ordering-sensitive — each reservation
reads the state the previous one left — but the statistics are pure
commutative sums. So a :class:`ContentionSession` splits them:

* **state** stays in the same flat arrays the scalar methods use
  (``Network._link_busy`` and ``NucaArchitecture._bank_busy`` are
  aliased in place; per-controller ``_busy_until`` scalars are gathered
  into one flat list for the session and written back on uninstall), so
  the busy-until arithmetic — duplicated here instruction for
  instruction — produces byte-identical timing;
* **statistics** accumulate into flat per-link / per-controller /
  per-supplier arrays on the session and land in the live registry
  counters in one :meth:`flush` at the end of the phase — the same
  quiesce points at which the engine's local-run batching flushes, so
  warm-up resets and finalize snapshots see fully-applied counters.

The split is installed by *instance-attribute rebinding*: ``install``
assigns closures over the session arrays onto the live ``network`` /
controller / architecture objects, shadowing the class methods for the
duration of one fast phase; ``uninstall`` deletes the shadows. The
class methods themselves are untouched, so the reference engine — and
any fallback to reference granularity — pays nothing, not even a flag
test (docs/engine.md, "The functional/timing split rule").

``REPRO_CONTENTION_KERNELS=0`` disables the kernels (the engine then
serves contention through the unmodified ``CmpSystem.access`` path,
PR-6 behaviour); unset or ``1`` enables them. CI runs the equivalence
suite both ways.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, List

from repro.common.statsreg import _HIST_BUCKETS
from repro.noc.message import MessageKind
from repro.sim.request import Supplier

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.system import CmpSystem


def kernels_enabled() -> bool:
    """The ``REPRO_CONTENTION_KERNELS`` knob (default: enabled)."""
    raw = os.environ.get("REPRO_CONTENTION_KERNELS")
    if raw is None or raw.strip() == "":
        return True
    return raw.strip().lower() not in ("0", "false", "no", "off")


class ContentionSession:
    """SoA busy-state views + deferred statistics for one fast phase."""

    def __init__(self, system: "CmpSystem") -> None:
        self.system = system
        network = system.network
        self._network = network
        self._controllers = system.memory.controllers
        self._architecture = system.architecture
        self._l1s = system.l1s
        n_links = len(network._link_busy)
        n_mcs = len(self._controllers)
        n_cores = len(system.l1s)
        n_routers = len(network._route_stats)
        self._n_routers = n_routers
        # Deferred statistics (flat, flushed by flush()):
        # NoC: per-(kind, src, dst) message counts — a flat row per
        # kind indexed ``src * n_routers + dst`` (integer list ops, no
        # enum/tuple hashing per message) — expanded to the per-link
        # message counters along each DOR route at flush time — and
        # per-link queueing sums.
        self.route_counts: List[List[int]] = [
            [0] * (n_routers * n_routers) for _ in MessageKind]
        self.link_queue: List[int] = [0] * n_links
        # Memory controllers: demand/writeback counts and queueing sums.
        self.mc_demand: List[int] = [0] * n_mcs
        self.mc_writebacks: List[int] = [0] * n_mcs
        self.mc_queue: List[int] = [0] * n_mcs
        # Busy-until state for the controllers (flat for the session,
        # scattered back to the objects on uninstall). Link and bank
        # busy-until lists are already flat on their owners and are
        # aliased by the closures instead.
        self.mc_busy: List[int] = [0] * n_mcs
        # Demand-access decomposition (CmpSystem._record_access) and L1
        # hit/miss counts for CmpSystem.serve_contention. One flat
        # record per supplier — ``[count, cycles, bucket 0, bucket 1,
        # ...]`` — so a serve pays one supplier lookup, not three.
        self.sup_rec: List[List[int]] = [
            [0] * (2 + _HIST_BUCKETS) for _ in Supplier]
        self.sup_rec_local: List[int] = self.sup_rec[Supplier.L1_LOCAL.idx]
        self.l1_hits: List[int] = [0] * n_cores
        self.l1_misses: List[int] = [0] * n_cores
        # Plain link-id routes (the scalar method's triplets carry the
        # live counters; the kernel only needs the ids).
        self._routes = [
            [tuple(t[0] for t in network._route_stats[s][d])
             for d in range(n_routers)] for s in range(n_routers)]
        self._installed = False

    # -- kernel installation -------------------------------------------------

    def install(self) -> None:
        """Shadow the scalar timing methods with deferred kernels."""
        assert not self._installed
        self._installed = True
        net = self._network
        routes = self._routes
        busy = net._link_busy          # aliased: mutated in place
        hop_latency = net.hop_latency
        model = net.model_contention
        link_queue = self.link_queue
        route_counts = self.route_counts
        n_routers = self._n_routers

        def arrival(kind: MessageKind, src_router: int, dst_router: int,
                    depart: int) -> int:
            # --- timing: exact port of Network.arrival (keep in sync
            # with repro/noc/network.py) — statistics deferred. ---
            route = routes[src_router][dst_router]
            hops = len(route)
            flits = kind.flits
            now = depart
            if model and hops:
                cap = 4 * flits
                for link_id in route:
                    ready = busy[link_id]
                    if ready > now:
                        wait = ready - now
                        if wait > cap:
                            wait = cap
                        link_queue[link_id] += wait
                        now += wait
                    end = now + flits
                    busy[link_id] = ready if ready > end else end
                    now += hop_latency
            else:
                now += hop_latency * hops
            route_counts[kind.idx][src_router * n_routers + dst_router] += 1
            return now

        net.arrival = arrival

        mc_busy = self.mc_busy
        mc_demand = self.mc_demand
        mc_writebacks = self.mc_writebacks
        mc_queue = self.mc_queue
        for index, mc in enumerate(self._controllers):
            mc_busy[index] = mc._busy_until
            occupancy = mc.occupancy
            latency = mc.latency
            cap = mc.MAX_QUEUE_SERVICES * occupancy

            def service(arrive: int, _i: int = index, _occ: int = occupancy,
                        _cap: int = cap, _lat: int = latency) -> int:
                # --- timing: exact port of MemoryController.service
                # (keep in sync with repro/mem/controller.py). ---
                start = arrive
                ready = mc_busy[_i]
                if ready > start:
                    skew = ready - start
                    start += skew if skew < _cap else _cap
                    mc_queue[_i] += start - arrive
                end = start + _occ
                mc_busy[_i] = ready if ready > end else end
                mc_demand[_i] += 1
                return start + _lat

            def post_writeback(arrive: int, _i: int = index,
                               _occ: int = occupancy, _cap: int = cap) -> None:
                # --- timing: exact port of MemoryController.
                # post_writeback (keep in sync). ---
                start = arrive
                ready = mc_busy[_i]
                if ready > start:
                    skew = ready - start
                    start += skew if skew < _cap else _cap
                end = start + _occ
                mc_busy[_i] = ready if ready > end else end
                mc_writebacks[_i] += 1

            mc.service = service
            mc.post_writeback = post_writeback

        arch = self._architecture
        l2 = arch.config.l2
        tag_occ = l2.tag_latency
        hit_occ = l2.tag_latency + l2.access_latency
        bank_busy = arch._bank_busy    # aliased: mutated in place

        def bank_service(bank_id: int, t_arrive: int, hit: bool) -> int:
            # --- timing: exact port of NucaArchitecture.bank_service
            # (keep in sync with repro/architectures/base.py). ---
            occupancy = hit_occ if hit else tag_occ
            ready = bank_busy[bank_id]
            start = t_arrive
            if ready > start:
                skew = ready - start
                cap = 4 * occupancy
                start += skew if skew < cap else cap
            end = start + occupancy
            bank_busy[bank_id] = ready if ready > end else end
            return start + occupancy

        arch.bank_service = bank_service

    def uninstall(self) -> None:
        """Flush deferred statistics and restore the scalar methods."""
        if not self._installed:
            return
        self.flush()
        self._installed = False
        del self._network.arrival
        for mc in self._controllers:
            del mc.service
            del mc.post_writeback
        del self._architecture.bank_service

    # -- flushing ------------------------------------------------------------

    def flush(self) -> None:
        """Land every deferred sum in the live registry counters.

        Totals are byte-identical to what the scalar methods would have
        accumulated call by call: counter additions commute, and
        nothing reads these counters between serves during a fast phase
        (the fast path requires tracer and checker off).
        """
        net = self._network
        route_stats = net._route_stats
        n_routers = self._n_routers
        messages = flits = hops_total = 0
        for kind in MessageKind:
            row = self.route_counts[kind.idx]
            kind_total = 0
            for pair, count in enumerate(row):
                if not count:
                    continue
                row[pair] = 0
                src, dst = divmod(pair, n_routers)
                route = route_stats[src][dst]
                hops = len(route)
                kind_total += count
                hops_total += hops * count
                flits += kind.flits * hops * count
                for _, msg_c, _ in route:
                    msg_c.value += count
            if kind_total:
                messages += kind_total
                net._kind_counts[kind].value += kind_total
        if messages:
            net._messages.value += messages
            net._flits.value += flits
            net._hops.value += hops_total
        link_queue = self.link_queue
        queueing = sum(link_queue)
        if queueing:
            net._queueing.value += queueing
            for link_id, (_, queue_c) in enumerate(net._link_stats.values()):
                charged = link_queue[link_id]
                if charged:
                    queue_c.value += charged
                    link_queue[link_id] = 0
        for index, mc in enumerate(self._controllers):
            mc._busy_until = self.mc_busy[index]
            if self.mc_demand[index]:
                mc._requests.value += self.mc_demand[index]
                self.mc_demand[index] = 0
            if self.mc_writebacks[index]:
                mc._writebacks.value += self.mc_writebacks[index]
                self.mc_writebacks[index] = 0
            if self.mc_queue[index]:
                mc._queueing.value += self.mc_queue[index]
                self.mc_queue[index] = 0
        system = self.system
        for supplier in Supplier:
            rec = self.sup_rec[supplier.idx]
            count = rec[0]
            if not count:
                continue
            cycles = rec[1]
            system._access_count[supplier].value += count
            system._access_cycles[supplier].value += cycles
            hist = system._access_hist[supplier]
            hist.count += count
            hist.total += cycles
            live = hist.buckets
            for i in range(_HIST_BUCKETS):
                charged = rec[2 + i]
                if charged:
                    live[i] += charged
                    rec[2 + i] = 0
            rec[0] = 0
            rec[1] = 0
        for core, l1 in enumerate(self._l1s):
            if self.l1_hits[core]:
                l1._hits.value += self.l1_hits[core]
                self.l1_hits[core] = 0
            if self.l1_misses[core]:
                l1._misses.value += self.l1_misses[core]
                self.l1_misses[core] = 0
