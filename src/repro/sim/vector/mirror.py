"""L1 membership mirror and change journal (docs/engine.md).

The vectorized engine classifies upcoming references as *local* (L1
hit needing no other component) or *contention* (everything else)
against a snapshot of L1 state. That snapshot is only valid until a
contention event changes L1 membership or removes tokens from an L1
line; the journal records exactly those transitions so the engine can
re-classify the affected cores and nobody else.

Hook points (the complete set — verified against every architecture):

* :meth:`repro.cache.l1.L1Cache.fill` — fresh install (+ optional
  eviction) and token-merge into an existing line;
* :meth:`repro.cache.l1.L1Cache.invalidate`;
* :meth:`repro.coherence.tokens.TokenLedger.take_from_l1` — the single
  chokepoint through which L1 token counts ever *decrease*.

Token *increases* outside these hooks (``send_to_memory`` merges,
``handle_upgrade`` collection) leave the mirror's ``full`` set stale
low, which is safe: a full-token write misclassified as contention is
served through the unmodified reference path with identical results.

The hooks fire on every L1 fill — i.e. once per miss, the dominant
event on the cold grid — so they are kept to the minimum eager work:
run-invalidation checks (which must happen at the transition) plus one
staleness flag. The ``resident``/``full`` block sets exist only to
feed the *bulk* classification path, which miss-heavy phases never
reach, so they are rebuilt lazily from live L1 contents on the next
:meth:`resident_array`/:meth:`full_array` request instead of being
maintained per event.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.cache.l1 import L1Cache

from repro.sim.vector import soa


class MirrorJournal:
    """Per-core resident/full-token block sets plus a dirty-core set.

    ``resident[c]`` is exact and ``full[c]`` (resident with all tokens)
    is conservative (never stale high) — *after* :meth:`refresh`, which
    the array accessors call on demand. ``dirty`` collects cores whose
    classified run may have been invalidated since the last drain.
    """

    def __init__(self, num_cores: int, total_tokens: int) -> None:
        self.total_tokens = total_tokens
        self.resident: List[Set[int]] = [set() for _ in range(num_cores)]
        self.full: List[Set[int]] = [set() for _ in range(num_cores)]
        self.dirty: Set[int] = set()
        # Per-core block sets of the currently classified runs, owned
        # by the engine. A membership/token transition invalidates a
        # core's classification only when it touches a block *inside
        # that core's run* — anything else cannot change how the run's
        # references behave, so the core stays parked undisturbed.
        # ``None`` = no classified run (nothing to invalidate).
        self.runs: List[Optional[Set[int]]] = [None] * num_cores
        self._stale: List[bool] = [True] * num_cores
        self._l1s: List[L1Cache] = []
        self._resident_np: List[Optional[object]] = [None] * num_cores
        self._full_np: List[Optional[object]] = [None] * num_cores

    # -- lifecycle -----------------------------------------------------------

    def rebuild(self, l1s: List[L1Cache]) -> None:
        """Drop every snapshot; sets resynchronize lazily (phase start)."""
        self._l1s = l1s
        for core in range(len(self.runs)):
            self._stale[core] = True
            self.runs[core] = None
        self.dirty.clear()

    def refresh(self, core: int) -> None:
        """Resynchronize one core's sets from live L1 contents."""
        l1 = self._l1s[core]
        resident = self.resident[core]
        full = self.full[core]
        resident.clear()
        full.clear()
        total = self.total_tokens
        for cache_set in l1._sets:
            for block, line in cache_set.items():
                resident.add(block)
                if line.tokens == total:
                    full.add(block)
        self._stale[core] = False
        self._resident_np[core] = None
        self._full_np[core] = None

    def install(self, l1s: List[L1Cache], ledger) -> None:
        self.rebuild(l1s)
        for l1 in l1s:
            l1.journal = self
        ledger.l1_journal = self

    def uninstall(self, l1s: List[L1Cache], ledger) -> None:
        for l1 in l1s:
            l1.journal = None
        ledger.l1_journal = None

    # -- L1Cache hooks -------------------------------------------------------
    # NOTE: L1Cache.fill/invalidate inline these hook bodies (they fire
    # once per miss on the cold grid); the methods remain the canonical
    # definition — keep both in sync.

    def on_install(self, core: int, block: int, tokens: int,
                   evicted: Optional[int]) -> None:
        if evicted is not None:
            run = self.runs[core]
            if run is not None and evicted in run:
                self.dirty.add(core)
        self._stale[core] = True

    def on_merge(self, core: int, block: int, tokens: int) -> None:
        # Token increase: can only turn contention into locality, which
        # is re-discovered at the next classification — never dirty.
        self._stale[core] = True

    def on_invalidate(self, core: int, block: int) -> None:
        run = self.runs[core]
        if run is not None and block in run:
            self.dirty.add(core)
        self._stale[core] = True

    # -- TokenLedger hook ----------------------------------------------------
    # Canonical definition; TokenLedger.take_from_l1 inlines this body
    # against the installed ``ledger.l1_journal`` — keep both in sync.

    def _on_tokens_taken(self, block: int, core: int, remaining: int) -> None:
        run = self.runs[core]
        if run is not None and block in run:
            self.dirty.add(core)
        self._stale[core] = True

    # -- numpy views (bulk classification) -----------------------------------

    def resident_array(self, core: int):
        if self._stale[core]:
            self.refresh(core)
        arr = self._resident_np[core]
        if arr is None:
            arr = soa.as_block_array(self.resident[core])
            self._resident_np[core] = arr
        return arr

    def full_array(self, core: int):
        if self._stale[core]:
            self.refresh(core)
        arr = self._full_np[core]
        if arr is None:
            arr = soa.as_block_array(self.full[core])
            self._full_np[core] = arr
        return arr
