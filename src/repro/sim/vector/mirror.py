"""L1 membership mirror and change journal (docs/engine.md).

The vectorized engine classifies upcoming references as *local* (L1
hit needing no other component) or *contention* (everything else)
against a snapshot of L1 state. That snapshot is only valid until a
contention event changes L1 membership or removes tokens from an L1
line; the journal records exactly those transitions so the engine can
re-classify the affected cores and nobody else.

Hook points (the complete set — verified against every architecture):

* :meth:`repro.cache.l1.L1Cache.fill` — fresh install (+ optional
  eviction) and token-merge into an existing line;
* :meth:`repro.cache.l1.L1Cache.invalidate`;
* :meth:`repro.coherence.tokens.TokenLedger.take_from_l1` — the single
  chokepoint through which L1 token counts ever *decrease*.

Token *increases* outside these hooks (``send_to_memory`` merges,
``handle_upgrade`` collection) leave the mirror's ``full`` set stale
low, which is safe: a full-token write misclassified as contention is
served through the unmodified reference path with identical results.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.cache.l1 import L1Cache

from repro.sim.vector import soa


class MirrorJournal:
    """Per-core resident/full-token block sets plus a dirty-core set.

    ``resident[c]`` is exact; ``full[c]`` (resident with all tokens) is
    conservative (never stale high). ``dirty`` collects cores whose
    classified run may have been invalidated since the last drain.
    """

    def __init__(self, num_cores: int, total_tokens: int) -> None:
        self.total_tokens = total_tokens
        self.resident: List[Set[int]] = [set() for _ in range(num_cores)]
        self.full: List[Set[int]] = [set() for _ in range(num_cores)]
        self.dirty: Set[int] = set()
        # Per-core block sets of the currently classified runs, owned
        # by the engine. A membership/token transition invalidates a
        # core's classification only when it touches a block *inside
        # that core's run* — anything else cannot change how the run's
        # references behave, so the core stays parked undisturbed.
        # ``None`` = no classified run (nothing to invalidate).
        self.runs: List[Optional[Set[int]]] = [None] * num_cores
        self._resident_np: List[Optional[object]] = [None] * num_cores
        self._full_np: List[Optional[object]] = [None] * num_cores

    # -- lifecycle -----------------------------------------------------------

    def rebuild(self, l1s: List[L1Cache]) -> None:
        """Resynchronize from live L1 contents (phase start)."""
        total = self.total_tokens
        for core, l1 in enumerate(l1s):
            resident = self.resident[core]
            full = self.full[core]
            resident.clear()
            full.clear()
            for cache_set in l1._sets:
                for block, line in cache_set.items():
                    resident.add(block)
                    if line.tokens == total:
                        full.add(block)
            self._resident_np[core] = None
            self._full_np[core] = None
            self.runs[core] = None
        self.dirty.clear()

    def install(self, l1s: List[L1Cache], ledger) -> None:
        self.rebuild(l1s)
        for l1 in l1s:
            l1.journal = self
        ledger.on_l1_tokens_taken = self._on_tokens_taken

    def uninstall(self, l1s: List[L1Cache], ledger) -> None:
        for l1 in l1s:
            l1.journal = None
        ledger.on_l1_tokens_taken = None

    # -- L1Cache hooks -------------------------------------------------------

    def on_install(self, core: int, block: int, tokens: int,
                   evicted: Optional[int]) -> None:
        self.resident[core].add(block)
        if tokens == self.total_tokens:
            self.full[core].add(block)
        if evicted is not None:
            self.resident[core].discard(evicted)
            self.full[core].discard(evicted)
            run = self.runs[core]
            if run is not None and evicted in run:
                self.dirty.add(core)
        self._resident_np[core] = None
        self._full_np[core] = None

    def on_merge(self, core: int, block: int, tokens: int) -> None:
        # Token increase: can only turn contention into locality, which
        # is re-discovered at the next classification — never dirty.
        if tokens == self.total_tokens:
            self.full[core].add(block)
            self._full_np[core] = None

    def on_invalidate(self, core: int, block: int) -> None:
        self.resident[core].discard(block)
        self.full[core].discard(block)
        run = self.runs[core]
        if run is not None and block in run:
            self.dirty.add(core)
        self._resident_np[core] = None
        self._full_np[core] = None

    # -- TokenLedger hook ----------------------------------------------------

    def _on_tokens_taken(self, block: int, core: int, remaining: int) -> None:
        self.full[core].discard(block)
        run = self.runs[core]
        if run is not None and block in run:
            self.dirty.add(core)
        self._full_np[core] = None

    # -- numpy views (bulk classification) -----------------------------------

    def resident_array(self, core: int):
        arr = self._resident_np[core]
        if arr is None:
            arr = soa.as_block_array(self.resident[core])
            self._resident_np[core] = arr
        return arr

    def full_array(self, core: int):
        arr = self._full_np[core]
        if arr is None:
            arr = soa.as_block_array(self.full[core])
            self._full_np[core] = arr
        return arr
