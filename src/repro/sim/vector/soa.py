"""Struct-of-arrays trace views (docs/engine.md, "State layout").

A materialized per-core trace is decomposed into parallel columns —
``gaps``, ``blocks``, ``writes``, ``deps`` — so the engine's hot walks
index plain Python lists of scalars instead of touching ``TraceItem``
attributes, and bulk classification can run over numpy views of the
same columns. numpy is optional: when it is unavailable the engine
falls back to the scalar classification path with identical results.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.sim.cpu import TraceItem, TraceKind

try:  # soft dependency: everything below degrades to scalar paths
    import numpy as _np
except Exception:  # pragma: no cover - exercised only without numpy
    _np = None

HAS_NUMPY = _np is not None

#: Window length below which scalar classification wins: building /
#: intersecting numpy index arrays has a fixed cost that only pays off
#: when many references are classified in one shot.
BULK_THRESHOLD = 512


class SoATrace:
    """One core's trace as parallel scalar columns (+ numpy views)."""

    __slots__ = ("items", "gaps", "blocks", "writes", "deps",
                 "blocks_np", "writes_np")

    def __init__(self, items: Sequence[TraceItem]) -> None:
        self.items = items
        gaps: List[int] = []
        blocks: List[int] = []
        writes: List[bool] = []
        deps: List[bool] = []
        g_app, b_app = gaps.append, blocks.append
        w_app, d_app = writes.append, deps.append
        store, dep_load = TraceKind.STORE, TraceKind.DEP_LOAD
        for it in items:  # single pass: columns amortize over every walk
            g_app(it.gap)
            b_app(it.block)
            kind = it.kind
            w_app(kind is store)
            d_app(kind is dep_load)
        self.gaps = gaps
        self.blocks = blocks
        self.writes = writes
        self.deps = deps
        if HAS_NUMPY and len(items) >= BULK_THRESHOLD:
            self.blocks_np = _np.asarray(self.blocks, dtype=_np.int64)
            self.writes_np = _np.asarray(self.writes, dtype=bool)
        else:
            self.blocks_np = None
            self.writes_np = None

    def __len__(self) -> int:
        return len(self.items)


def local_prefix_length(trace: SoATrace, pos: int, limit: int,
                        resident_np, full_np) -> Optional[int]:
    """Length of the maximal local prefix of ``trace[pos:limit]``, or
    ``None`` when the bulk path does not apply.

    A reference is *local* when its block is L1-resident (reads) or
    resident with all tokens (writes). ``resident_np`` must be exact;
    ``full_np`` may be conservatively stale-low (a write misclassified
    as contention is served through the full reference path with
    identical results — see docs/engine.md, "Conservative
    classification").
    """
    if not HAS_NUMPY or trace.blocks_np is None or resident_np is None:
        return None
    blocks = trace.blocks_np[pos:limit]
    writes = trace.writes_np[pos:limit]
    local = _np.isin(blocks, resident_np, assume_unique=False)
    if writes.any():
        if full_np is None or len(full_np) == 0:
            local &= ~writes
        else:
            local &= (~writes) | _np.isin(blocks, full_np)
    stops = _np.flatnonzero(~local)
    return int(stops[0]) if len(stops) else limit - pos


def as_block_array(blocks: set):
    """A set of block ids as a numpy array (``None`` without numpy)."""
    if not HAS_NUMPY:
        return None
    return _np.fromiter(blocks, dtype=_np.int64, count=len(blocks))
