"""Vectorized batch engine (docs/engine.md).

Struct-of-arrays trace views, an L1 membership mirror with a change
journal, batch replacement kernels over SoA set state, and the
epoch-batched :class:`~repro.sim.vector.engine.VectorizedEngine` that
commits contention-free reference runs in bulk between contention
points while producing byte-identical results to the reference engine.
"""

from repro.sim.vector.engine import VectorizedEngine

__all__ = ["VectorizedEngine"]
