"""Epoch-batched simulation engine (docs/engine.md).

Identical simulated machine, different schedule. The reference engine
interleaves every memory reference of every core through one heap; this
engine observes that most references are *local* — L1 read hits, and
write hits holding all coherence tokens — which touch nothing outside
their own core (own L1 LRU/dirty bits, own timing state, commutative
counters). Between two *contention points* (L1 misses and token
upgrades, which traverse shared banks, the NoC, the ledger and the
policy machinery), local runs from different cores commute, so they can
be committed in uninterrupted batches instead of round-tripping through
the heap per reference.

The schedule per epoch:

1. **classify + scout** — for each core whose classification was
   invalidated, walk its upcoming references against current L1 state
   to find the maximal local run, simulating core timing on scratch
   state (an exact port of :class:`~repro.sim.cpu.CoreModel`); the
   clock after the run is the core's *park key* — the heap key at which
   its next contention point would fire.
2. **owner** — the minimum (park clock, core id) over active cores,
   K*, is globally the next contention in reference order.
3. **bounded commits** — every other core commits the prefix of its
   local run whose keys order strictly before K* (a write hit's dirty
   bit must be visible to a later contention, and must not be visible
   to an earlier one).
4. **full commit + serve** — the owner commits its entire run (its own
   references are FIFO, so its locals precede its contention at any
   key), then its contention reference is served through the untouched
   reference path (``CmpSystem.access``).
5. **journal drain** — the contention may have changed L1 membership or
   taken L1 tokens; the :class:`~repro.sim.vector.mirror.MirrorJournal`
   names the affected cores, whose classifications are invalidated.

Runs with live tracing, an invariant checker, or a check period fall
back to the reference schedule (``super()._run_phase``): those
observers sample machine state *between individual references*, which
batching would skip past. Statistics for batched hits are applied in
bulk but land in the same counters at the same quiesce points, so
snapshots stay byte-identical (tests/test_engine_equivalence.py).
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Iterator, List, Optional, Sequence

from repro.common.statsreg import _HIST_BUCKETS
from repro.sim.cpu import TraceItem
from repro.sim.engine import SimulationEngine
from repro.sim.request import Supplier
from repro.sim.system import CmpSystem
from repro.sim.vector import contention, soa
from repro.sim.vector.mirror import MirrorJournal
from repro.sim.vector.soa import SoATrace


class VectorizedEngine(SimulationEngine):
    """Drop-in engine producing byte-identical results to the reference.

    Traces are materialized up front (the engine needs random access
    for classification); the struct-of-arrays views live in
    :class:`~repro.sim.vector.soa.SoATrace`.
    """

    def __init__(self, system: CmpSystem,
                 traces: Sequence[Optional[Iterator[TraceItem]]]) -> None:
        items = [t if isinstance(t, list) else (list(t) if t is not None
                                                else None) for t in traces]
        super().__init__(system, items)
        n = len(items)
        self._pos = [0] * n
        self._soa: List[Optional[SoATrace]] = [
            SoATrace(t) if t is not None else None for t in items]
        self._journal: Optional[MirrorJournal] = None
        # Contention-kernel session (docs/engine.md): lazily built,
        # installed only for the span of a fast phase. ``_session``
        # caches the object; ``_session_active`` is non-None exactly
        # while its kernels are installed.
        self._session: Optional[contention.ContentionSession] = None
        self._session_active: Optional[contention.ContentionSession] = None
        self._run_len = [0] * n
        self._park_clock = [0] * n
        self._scout: List[Optional[tuple]] = [None] * n
        # Reusable per-core scratch (cleared at each classification):
        # the blocks of the classified run, and the L1 line object per
        # run reference (None where the bulk path skipped the probe).
        self._run_blocks: List[set] = [set() for _ in range(n)]
        self._run_lines: List[list] = [[] for _ in range(n)]
        self._limit = [0] * n
        # Hot-path state hoisted into flat per-core lists: the epoch
        # loop, classifier and serve path index these instead of
        # chasing object attributes per reference.
        self._blocks = [t.blocks if t is not None else None
                        for t in self._soa]
        self._writes = [t.writes if t is not None else None
                        for t in self._soa]
        self._gaps = [t.gaps if t is not None else None
                      for t in self._soa]
        self._deps = [t.deps if t is not None else None
                      for t in self._soa]
        self._l1s = system.l1s
        self._l1_sets = [l1._sets for l1 in system.l1s]
        self._l1_nsets = [l1.num_sets for l1 in system.l1s]
        self._total_tokens = system.ledger.total_tokens
        self._handle_miss = system.architecture.handle_miss
        self._handle_upgrade = system.architecture.handle_upgrade
        self._l1_lat = system.config.l1.access_latency
        self._l1_tag = system.config.l1.tag_latency
        core_cfg = system.config.core
        self._iw = core_cfg.issue_width
        self._win = core_cfg.window_size
        self._mo = core_cfg.max_outstanding
        self._l1_bucket = min(self._l1_lat.bit_length(), _HIST_BUCKETS - 1)
        self._local_count = system._access_count[Supplier.L1_LOCAL]
        self._local_cycles = system._access_cycles[Supplier.L1_LOCAL]
        self._local_hist = system._access_hist[Supplier.L1_LOCAL]
        # Core timing state (CoreModel.clock/instructions/stall_cycles/
        # memory_refs/_outstanding) hoisted into flat per-core lists for
        # the span of a fast phase; loaded from and resynchronized to
        # the live CoreModel objects at the phase boundaries.
        self._clock_v = [0] * n
        self._instr_v = [0] * n
        self._stall_v = [0] * n
        self._mem_v = [0] * n
        self._out_v: List[deque] = [deque() for _ in range(n)]

    # -- reference-path integration ------------------------------------------

    def _next_item(self, core_id: int) -> Optional[TraceItem]:
        # The fallback heap loop consumes via this hook; positions are
        # shared with the fast path so phases can never double-process.
        items = self.traces[core_id]
        if items is None:
            return None
        pos = self._pos[core_id]
        if pos >= len(items):
            self.traces[core_id] = None
            return None
        self._pos[core_id] = pos + 1
        return items[pos]

    def _run_phase(self, cap: Optional[int]) -> None:
        if (self.system.tracer.enabled or self.system.checker is not None
                or self._check_every > 0):
            # Observers need reference granularity (docs/engine.md,
            # "Fallback"); results are identical either way.
            super()._run_phase(cap)
            return
        self._run_phase_fast(cap)

    # -- the epoch loop ------------------------------------------------------

    def _run_phase_fast(self, cap: Optional[int]) -> None:
        system = self.system
        cores = self.cores
        ncores = len(cores)
        journal = self._journal
        if journal is None:
            journal = MirrorJournal(ncores, system.ledger.total_tokens)
            self._journal = journal
        journal.install(system.l1s, system.ledger)
        session: Optional[contention.ContentionSession] = None
        if contention.kernels_enabled():
            session = self._session
            if session is None:
                session = contention.ContentionSession(system)
                self._session = session
            session.install()
        self._session_active = session
        # Load core timing state into the flat per-phase lists; the
        # ``finally`` below writes them back so the CoreModel objects
        # are authoritative again whenever observers can look (between
        # phases, and on any exception).
        clocks = self._clock_v
        instrs_v = self._instr_v
        stalls_v = self._stall_v
        mems_v = self._mem_v
        outs_v = self._out_v
        for cid in range(ncores):
            c = cores[cid]
            clocks[cid] = c.clock
            instrs_v[cid] = c.instructions
            stalls_v[cid] = c.stall_cycles
            mems_v[cid] = c.memory_refs
            outs_v[cid] = c._outstanding
        try:
            limits = self._limit
            pos = self._pos
            run_len = self._run_len
            need: List[int] = []
            for cid in range(ncores):
                trace = self.traces[cid]
                if trace is None:
                    limits[cid] = pos[cid]
                    continue
                limits[cid] = (len(trace) if cap is None
                               else min(cap, len(trace)))
                if pos[cid] < limits[cid]:
                    need.append(cid)
            vers = [0] * ncores
            park_heap: List[tuple] = []
            commit_heap: List[tuple] = []
            # Per-phase constants hoisted out of the serve burst.
            l1s = self._l1s
            total = self._total_tokens
            iw = self._iw
            win = self._win
            mo = self._mo
            l1_lat = self._l1_lat
            l1_tag = self._l1_tag
            handle_miss = self._handle_miss
            handle_upgrade = self._handle_upgrade
            dirty_set = journal.dirty   # mutated in place, never rebound
            if session is not None:
                sup_rec = session.sup_rec
                rec_local = session.sup_rec_local
                hits_c = session.l1_hits
                misses_c = session.l1_misses
            while True:
                for cid in need:
                    self._classify_and_scout(cid)
                    v = vers[cid]
                    heappush(park_heap, (self._park_clock[cid], cid, v))
                    if run_len[cid]:
                        heappush(commit_heap, (clocks[cid], cid, v))
                need = []
                owner = -1
                while park_heap:
                    kc, cid, v = heappop(park_heap)
                    if v == vers[cid]:
                        owner = cid
                        break
                if owner < 0:
                    break
                while commit_heap:
                    ck, cid, v = commit_heap[0]
                    if v != vers[cid]:
                        heappop(commit_heap)
                        continue
                    if not (ck < kc or (ck == kc and cid < owner)):
                        break
                    heappop(commit_heap)
                    if cid == owner:
                        continue
                    self._commit_bounded(cid, kc, owner)
                    if run_len[cid]:
                        heappush(commit_heap,
                                 (clocks[cid], cid, vers[cid]))
                if run_len[owner]:
                    self._commit_full(owner)
                vers[owner] += 1
                if pos[owner] >= limits[owner]:
                    continue
                if session is None:
                    # Reference-granularity serve, one per pop
                    # (REPRO_CONTENTION_KERNELS=0).
                    self._serve(owner)
                    if pos[owner] < limits[owner]:
                        need.append(owner)
                    dirty = journal.dirty
                    if dirty:
                        self._requeue_dirty(dirty, owner, vers, need)
                    continue
                parked = False
                # Serve burst: the freshly popped owner is the global
                # minimum, and misses cluster, so it usually stays the
                # minimum across several serves. Keep serving it
                # without heap churn while (a) nothing got dirtied —
                # re-classification only ever moves park keys earlier,
                # so it must precede owner selection — and (b) no valid
                # parked core orders before the owner. Short local
                # stretches are served eagerly too (their effects stay
                # on the owner's own L1, so they commute with
                # everything the heaps defer); runs longer than a small
                # streak fall back to the classifier so the bulk numpy
                # path keeps owning high-hit phases. Core timing state
                # lives in locals across the whole burst and is stored
                # back once at the end.
                blocks = self._blocks[owner]
                writes = self._writes[owner]
                gaps = self._gaps[owner]
                deps = self._deps[owner]
                l1_sets = self._l1_sets[owner]
                nsets = self._l1_nsets[owner]
                l1 = l1s[owner]
                clock = clocks[owner]
                instr = instrs_v[owner]
                stalls = stalls_v[owner]
                mem = mems_v[owner]
                out = outs_v[owner]
                p = pos[owner]
                limit = limits[owner]
                streak = 0
                while True:
                    block = blocks[p]
                    line = l1_sets[block % nsets].get(block)
                    local = line is not None and (not writes[p]
                                                  or line.tokens == total)
                    if local and streak >= 16:
                        # Long local run: hand off to the classifier,
                        # whose bulk numpy path owns high-hit stretches.
                        break
                    # Owner must be confirmed the global minimum BEFORE
                    # each serve: an earlier-keyed parked core's serve
                    # may steal tokens from (or invalidate) the very
                    # line this probe saw. (On the first iteration the
                    # check trivially passes — the owner was just
                    # popped as the minimum.)
                    while (park_heap
                           and park_heap[0][2] != vers[park_heap[0][1]]):
                        heappop(park_heap)
                    if park_heap:
                        pk = park_heap[0]
                        if pk[0] < clock or (pk[0] == clock
                                             and pk[1] < owner):
                            if local:
                                # Classify instead: a scout run lets
                                # other cores commit around us.
                                break
                            # Another core orders first. The probe
                            # above already said the next reference is
                            # contention — exactly what a fresh
                            # classification's first-probe would
                            # conclude — so park directly on
                            # (clock, owner) without the
                            # _classify_and_scout round trip.
                            self._run_len[owner] = 0
                            self._park_clock[owner] = clock
                            self._scout[owner] = None
                            heappush(park_heap, (clock, owner,
                                                 vers[owner]))
                            parked = True
                            break
                    # Bounded commits drain before contention serves
                    # only: a local serve touches nothing but the
                    # owner's own L1 lines and deferred sums, so it
                    # commutes with other cores' local-run commits.
                    if not local:
                        while commit_heap:
                            ck, ccid, cv = commit_heap[0]
                            if cv != vers[ccid]:
                                heappop(commit_heap)
                                continue
                            if not (ck < clock
                                    or (ck == clock and ccid < owner)):
                                break
                            heappop(commit_heap)
                            self._commit_bounded(ccid, clock, owner)
                            if run_len[ccid]:
                                heappush(commit_heap,
                                         (clocks[ccid], ccid,
                                          vers[ccid]))
                    # --- timing step: exact CoreModel port (keep in
                    # sync with repro/sim/cpu.py; also mirrored in
                    # _classify_and_scout) ---
                    gap = gaps[p]
                    if gap:
                        instr += gap
                        clock += -(-gap // iw)
                        while out and out[0][0] <= clock:
                            out.popleft()
                        while out and instr - out[0][1] >= win:
                            when = out[0][0]
                            if when > clock:
                                stalls += when - clock
                                clock = when
                            while out and out[0][0] <= clock:
                                out.popleft()
                            if out and out[0][0] <= clock:  # pragma: no cover - guard
                                out.popleft()
                    # --- serve: exact port of the reference access
                    # path — L1 hit effects from L1Cache.access,
                    # miss/upgrade policy through the live architecture
                    # methods, statistics deferred (keep in sync with
                    # repro/sim/system.py access/_serve_access and
                    # repro/cache/l1.py access). ---
                    if line is not None:
                        stamp = l1._stamp + 1
                        l1._stamp = stamp
                        line.lru = stamp
                        line.reused = True
                        hits_c[owner] += 1
                        t_done = clock + l1_lat
                        if writes[p]:
                            if line.tokens < total:
                                t_up = handle_upgrade(owner, block, line,
                                                      clock + l1_tag)
                                if t_up > t_done:
                                    t_done = t_up
                            line.dirty = True
                        rec = rec_local
                    else:
                        misses_c[owner] += 1
                        t_done, supplier = handle_miss(owner, block,
                                                       writes[p],
                                                       clock + l1_tag)
                        rec = sup_rec[supplier.idx]
                    latency = t_done - clock
                    rec[0] += 1
                    rec[1] += latency
                    bucket = latency.bit_length() + 2
                    if bucket >= len(rec):
                        bucket = len(rec) - 1
                    rec[bucket] += 1
                    # --- completion step: exact CoreModel port
                    # (continued) ---
                    instr += 1
                    mem += 1
                    while out and out[0][0] <= clock:
                        out.popleft()
                    while len(out) >= mo:
                        earliest = min(out)[0]
                        if earliest > clock:
                            stalls += earliest - clock
                            clock = earliest
                        while out and out[0][0] <= clock:
                            out.popleft()
                        before = len(out)
                        out = deque(q for q in out if q[0] > clock)
                        if len(out) == before:  # pragma: no cover - guard
                            break
                    if deps[p]:
                        if t_done > clock:
                            stalls += t_done - clock
                            clock = t_done
                        while out and out[0][0] <= clock:
                            out.popleft()
                    else:
                        out.append((t_done, instr))
                        while out and instr - out[0][1] >= win:
                            when = out[0][0]
                            if when > clock:
                                stalls += when - clock
                                clock = when
                            while out and out[0][0] <= clock:
                                out.popleft()
                            if out and out[0][0] <= clock:  # pragma: no cover - guard
                                out.popleft()
                    # --- end timing step ---
                    p += 1
                    if p >= limit:
                        break
                    if local:
                        # A hit cannot change membership or tokens
                        # anywhere, so no dirty check is needed.
                        streak += 1
                    else:
                        streak = 0
                        if dirty_set:
                            break
                clocks[owner] = clock
                instrs_v[owner] = instr
                stalls_v[owner] = stalls
                mems_v[owner] = mem
                outs_v[owner] = out
                pos[owner] = p
                if not parked and p < limit:
                    need.append(owner)
                if dirty_set:
                    self._requeue_dirty(dirty_set, owner, vers, need)
        finally:
            self._session_active = None
            if session is not None:
                session.uninstall()  # flushes deferred stats first
            journal.uninstall(system.l1s, system.ledger)
            for cid in range(ncores):
                c = cores[cid]
                c.clock = clocks[cid]
                c.instructions = instrs_v[cid]
                c.stall_cycles = stalls_v[cid]
                c.memory_refs = mems_v[cid]
                c._outstanding = outs_v[cid]
            # Per-serve progress bookkeeping is deferred to here:
            # ``_refs``/``_processed`` are only read between phases.
            refs = self._refs
            for cid in range(ncores):
                if pos[cid] != refs[cid]:
                    self._processed += pos[cid] - refs[cid]
                    refs[cid] = pos[cid]

    def _requeue_dirty(self, dirty: set, owner: int, vers: List[int],
                       need: List[int]) -> None:
        """Invalidate and requeue classified runs touched by the
        owner's serves. Parked-at-contention cores keep an exact park
        key (timing of committed refs only); their contention is
        re-examined at serve time through the full reference path."""
        run_len = self._run_len
        pos = self._pos
        limits = self._limit
        journal = self._journal
        for cid in dirty:
            if (cid == owner or self.traces[cid] is None
                    or run_len[cid] == 0 or pos[cid] >= limits[cid]):
                continue
            vers[cid] += 1
            journal.runs[cid] = None
            need.append(cid)
        dirty.clear()

    # -- classification + scout timing walk ----------------------------------

    def _classify_and_scout(self, cid: int) -> None:
        pos = self._pos[cid]
        blocks = self._blocks[cid]
        writes = self._writes[cid]
        sets = self._l1_sets[cid]
        nsets = self._l1_nsets[cid]
        total = self._total_tokens
        # Cheap first-reference probe: contention-parked cores (the
        # common case on miss-heavy phases) never pay the scratch-state
        # copy below.
        block = blocks[pos]
        line = sets[block % nsets].get(block)
        if line is None or (writes[pos] and line.tokens != total):
            self._run_len[cid] = 0
            self._park_clock[cid] = self._clock_v[cid]
            self._scout[cid] = None
            self._journal.runs[cid] = None
            return
        trace = self._soa[cid]
        limit = self._limit[cid]
        journal = self._journal
        gaps = trace.gaps
        deps = trace.deps
        iw = self._iw
        win = self._win
        mo = self._mo
        l1_lat = self._l1_lat
        clock = self._clock_v[cid]
        instr = self._instr_v[cid]
        stalls = self._stall_v[cid]
        mem = self._mem_v[cid]
        out = deque(self._out_v[cid])
        run_blocks = self._run_blocks[cid]
        run_blocks.clear()
        add_block = run_blocks.add
        run_lines = self._run_lines[cid]
        run_lines.clear()
        add_line = run_lines.append
        # Scalar membership probes with a bulk escape hatch: once 64
        # consecutive references classify local, upcoming chunks are
        # classified in one numpy pass over the SoA columns (high-hit
        # traces spend almost no time probing; miss-heavy traces never
        # reach the streak and never pay the numpy fixed costs).
        streak = 0
        bulk_until = pos
        i = pos
        while i < limit:
            block = blocks[i]
            line = None
            if i >= bulk_until:
                if streak >= 64 and limit - i >= 128:
                    chunk = min(i + 1024, limit) - i
                    known = soa.local_prefix_length(
                        trace, i, i + chunk,
                        journal.resident_array(cid), journal.full_array(cid))
                    if known is not None:
                        if known < chunk:
                            # The chunk contains a (possibly
                            # conservative) stop; demand a fresh streak
                            # before scanning again.
                            streak = 0
                        if known == 0:
                            break
                        bulk_until = i + known
                if i >= bulk_until:
                    line = sets[block % nsets].get(block)
                    if line is None or (writes[i] and line.tokens != total):
                        break
                    streak += 1
            add_block(block)
            add_line(line)  # None in bulk regions: committed via lookup
            # --- timing step: exact CoreModel port (keep in sync with
            # repro/sim/cpu.py; also mirrored in _commit_bounded) ---
            gap = gaps[i]
            if gap:
                instr += gap
                clock += -(-gap // iw)
                while out and out[0][0] <= clock:
                    out.popleft()
                while out and instr - out[0][1] >= win:
                    when = out[0][0]
                    if when > clock:
                        stalls += when - clock
                        clock = when
                    while out and out[0][0] <= clock:
                        out.popleft()
                    if out and out[0][0] <= clock:  # pragma: no cover - guard
                        out.popleft()
            complete = clock + l1_lat
            instr += 1
            mem += 1
            while out and out[0][0] <= clock:
                out.popleft()
            while len(out) >= mo:
                earliest = min(out)[0]
                if earliest > clock:
                    stalls += earliest - clock
                    clock = earliest
                while out and out[0][0] <= clock:
                    out.popleft()
                before = len(out)
                out = deque(p for p in out if p[0] > clock)
                if len(out) == before:  # pragma: no cover - guard
                    break
            if deps[i]:
                if complete > clock:
                    stalls += complete - clock
                    clock = complete
                while out and out[0][0] <= clock:
                    out.popleft()
            else:
                out.append((complete, instr))
                while out and instr - out[0][1] >= win:
                    when = out[0][0]
                    if when > clock:
                        stalls += when - clock
                        clock = when
                    while out and out[0][0] <= clock:
                        out.popleft()
                    if out and out[0][0] <= clock:  # pragma: no cover - guard
                        out.popleft()
            # --- end timing step ---
            i += 1
        self._run_len[cid] = i - pos
        self._park_clock[cid] = clock
        self._scout[cid] = (clock, instr, stalls, mem, out)
        journal.runs[cid] = run_blocks if i > pos else None

    # -- committing local runs -----------------------------------------------

    def _commit_full(self, cid: int) -> None:
        """Apply the whole classified run: functional effects per
        reference, timing state assigned from the scout walk."""
        n = self._run_len[cid]
        if n == 0:
            return
        pos = self._pos[cid]
        trace = self._soa[cid]
        blocks = trace.blocks
        writes = trace.writes
        l1 = self.system.l1s[cid]
        sets = l1._sets
        nsets = l1.num_sets
        stamp = l1._stamp
        run_lines = self._run_lines[cid]
        for i in range(pos, pos + n):
            line = run_lines[i - pos]
            if line is None:  # classified by the bulk path: look up now
                block = blocks[i]
                line = sets[block % nsets][block]
            stamp += 1
            line.lru = stamp
            line.reused = True
            if writes[i]:
                line.dirty = True
        l1._stamp = stamp
        (self._clock_v[cid], self._instr_v[cid], self._stall_v[cid],
         self._mem_v[cid], self._out_v[cid]) = self._scout[cid]
        self._scout[cid] = None
        self._run_len[cid] = 0
        self._journal.runs[cid] = None
        self._flush_committed(cid, l1, n, pos + n)

    def _commit_bounded(self, cid: int, kc: int, kcid: int) -> None:
        """Commit run references whose keys order strictly before the
        owner's park key ``(kc, kcid)``; timing replayed per reference
        (the walk is deterministic, so a later full commit of the
        remainder still lands exactly on the scout state)."""
        n = self._run_len[cid]
        trace = self._soa[cid]
        gaps = trace.gaps
        blocks = trace.blocks
        writes = trace.writes
        deps = trace.deps
        l1 = self.system.l1s[cid]
        sets = l1._sets
        nsets = l1.num_sets
        stamp = l1._stamp
        run_lines = self._run_lines[cid]
        iw = self._iw
        win = self._win
        mo = self._mo
        l1_lat = self._l1_lat
        clock = self._clock_v[cid]
        instr = self._instr_v[cid]
        stalls = self._stall_v[cid]
        mem = self._mem_v[cid]
        out = self._out_v[cid]
        pos = self._pos[cid]
        end = pos + n
        i = pos
        while i < end and (clock < kc or (clock == kc and cid < kcid)):
            # --- timing step: exact CoreModel port (keep in sync with
            # repro/sim/cpu.py; also mirrored in _classify_and_scout) ---
            gap = gaps[i]
            if gap:
                instr += gap
                clock += -(-gap // iw)
                while out and out[0][0] <= clock:
                    out.popleft()
                while out and instr - out[0][1] >= win:
                    when = out[0][0]
                    if when > clock:
                        stalls += when - clock
                        clock = when
                    while out and out[0][0] <= clock:
                        out.popleft()
                    if out and out[0][0] <= clock:  # pragma: no cover - guard
                        out.popleft()
            complete = clock + l1_lat
            instr += 1
            mem += 1
            while out and out[0][0] <= clock:
                out.popleft()
            while len(out) >= mo:
                earliest = min(out)[0]
                if earliest > clock:
                    stalls += earliest - clock
                    clock = earliest
                while out and out[0][0] <= clock:
                    out.popleft()
                before = len(out)
                out = deque(p for p in out if p[0] > clock)
                if len(out) == before:  # pragma: no cover - guard
                    break
            if deps[i]:
                if complete > clock:
                    stalls += complete - clock
                    clock = complete
                while out and out[0][0] <= clock:
                    out.popleft()
            else:
                out.append((complete, instr))
                while out and instr - out[0][1] >= win:
                    when = out[0][0]
                    if when > clock:
                        stalls += when - clock
                        clock = when
                    while out and out[0][0] <= clock:
                        out.popleft()
                    if out and out[0][0] <= clock:  # pragma: no cover - guard
                        out.popleft()
            # --- end timing step ---
            line = run_lines[i - pos]
            if line is None:  # classified by the bulk path: look up now
                block = blocks[i]
                line = sets[block % nsets][block]
            stamp += 1
            line.lru = stamp
            line.reused = True
            if writes[i]:
                line.dirty = True
            i += 1
        committed = i - pos
        if not committed:
            return
        l1._stamp = stamp
        self._clock_v[cid] = clock
        self._instr_v[cid] = instr
        self._stall_v[cid] = stalls
        self._mem_v[cid] = mem
        self._out_v[cid] = out
        self._run_len[cid] = n - committed
        if self._run_len[cid] == 0:
            self._scout[cid] = None
            self._journal.runs[cid] = None
        else:
            # Keep the cached-line list aligned with the new run start.
            del run_lines[:committed]
        self._flush_committed(cid, l1, committed, i)

    def _flush_committed(self, cid: int, l1, n: int, new_pos: int) -> None:
        """Batched equivalent of n reference-path L1 hits' statistics.

        Every local reference records Supplier.L1_LOCAL with a constant
        latency (the L1 access latency), so the counter and histogram
        updates fold to one addition each — landing in the *same live
        counters* the reference path uses, so warm-up resets and
        finalize snapshots need no special handling.
        """
        lat = self._l1_lat
        session = self._session_active
        if session is not None:
            session.l1_hits[cid] += n
            rec = session.sup_rec_local
            rec[0] += n
            rec[1] += n * lat
            rec[2 + self._l1_bucket] += n
        else:
            l1._hits.value += n
            self._local_count.value += n
            self._local_cycles.value += n * lat
            hist = self._local_hist
            hist.buckets[self._l1_bucket] += n
            hist.count += n
            hist.total += n * lat
        self._pos[cid] = new_pos

    # -- serving contention points -------------------------------------------

    def _serve(self, cid: int) -> None:
        """One reference at reference granularity: ``CoreModel``
        methods and the unmodified ``CmpSystem.access``, exactly as
        under the reference engine. Used when contention kernels are
        disabled (``REPRO_CONTENTION_KERNELS=0``); with kernels on,
        serves happen inline in the epoch loop's burst."""
        core = self.cores[cid]
        # Rehydrate the live CoreModel from the phase-flat lists around
        # the reference-granularity call (the fast phase keeps core
        # timing state in the lists; CoreModel methods read/write the
        # object attributes).
        core.clock = self._clock_v[cid]
        core.instructions = self._instr_v[cid]
        core.stall_cycles = self._stall_v[cid]
        core.memory_refs = self._mem_v[cid]
        core._outstanding = self._out_v[cid]
        i = self._pos[cid]
        trace = self._soa[cid]
        core.advance_gap(trace.gaps[i])
        outcome = self.system.access(cid, trace.blocks[i], trace.writes[i],
                                     core.issue_time())
        core.complete_memory(trace.items[i].kind, outcome.complete)
        self._pos[cid] = i + 1
        self._clock_v[cid] = core.clock
        self._instr_v[cid] = core.instructions
        self._stall_v[cid] = core.stall_cycles
        self._mem_v[cid] = core.memory_refs
        self._out_v[cid] = core._outstanding
