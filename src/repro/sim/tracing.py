"""Per-access event tracing for protocol debugging.

``AccessTracer`` records, for every demand reference, what the protocol
did: supplier, latency, the block's classification afterwards. The
directed protocol tests assert on aggregate behaviour; the tracer is
for *watching* a handful of accesses when something looks wrong — the
simulator's printf.

Since the unified tracing layer (:mod:`repro.obs`) this is a **view
over the system's event stream**, not a monkey-patcher: it subscribes
to the system's tracer (installing a private listener-only tracer via
the supported :meth:`CmpSystem.set_tracer` seam when tracing is off)
and rebuilds :class:`AccessEvent` records from the ``access`` span
events the system emits. Use it as a context manager::

    with AccessTracer(system) as tracer:
        engine.run(...)
    print(tracer.format(last=20))

so an exception mid-run cannot leave the subscription installed.
``install()``/``uninstall()`` remain for older callers but are
deprecated in favour of the ``with`` form. When a user tracer is
already active the view shares its sampling and category filters (a
``--sample 100`` trace shows the view 1 in 100 accesses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.obs.trace import PH_SPAN, TraceEvent, TracerView
from repro.sim.request import Supplier
from repro.sim.system import CmpSystem


@dataclass
class AccessEvent:
    sequence: int
    core: int
    block: int
    is_write: bool
    issue: int
    complete: int
    supplier: Supplier
    classification: str = ""
    note: str = ""

    @property
    def latency(self) -> int:
        return self.complete - self.issue

    def format(self) -> str:
        rw = "W" if self.is_write else "R"
        cls = f" [{self.classification}]" if self.classification else ""
        return (f"#{self.sequence:<6d} t={self.issue:<9d} core {self.core} "
                f"{rw} {self.block:#012x} -> {self.supplier.value:16s} "
                f"{self.latency:5d} cyc{cls}{self.note}")


class AccessTracer(TracerView):
    """Record (optionally filtered) access events of a live system."""

    def __init__(self, system: CmpSystem, limit: int = 10_000,
                 block_filter: Optional[Callable[[int], bool]] = None,
                 core_filter: Optional[Callable[[int], bool]] = None) -> None:
        TracerView.__init__(self, system, categories=("access",))
        self.system = system
        self.limit = limit
        self.block_filter = block_filter
        self.core_filter = core_filter
        self.events: List[AccessEvent] = []
        self.dropped = 0
        self._sequence = 0

    # -- lifecycle ---------------------------------------------------------------

    def __enter__(self) -> "AccessTracer":
        self._attach()
        return self

    def __exit__(self, *exc_info) -> None:
        self._detach()

    def install(self) -> "AccessTracer":
        """Deprecated — use the context-manager form, which uninstalls
        even when the traced block raises."""
        return self.__enter__()

    def uninstall(self) -> None:
        """Deprecated — use the context-manager form."""
        self._detach()

    # -- the view ----------------------------------------------------------------

    def _view_event(self, event: TraceEvent) -> None:
        if event.phase != PH_SPAN or event.category != "access":
            return
        self._sequence += 1
        block = int(event.args["block"], 16)
        core = int(event.tid[len("core"):])
        if self.block_filter and not self.block_filter(block):
            return
        if self.core_filter and not self.core_filter(core):
            return
        if len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append(AccessEvent(
            sequence=self._sequence, core=core, block=block,
            is_write=event.name == "write",
            issue=int(event.ts), complete=int(event.ts + event.dur),
            supplier=Supplier(event.args["supplier"]),
            classification=self._classification(block)))

    def _classification(self, block: int) -> str:
        classifier = getattr(self.system.architecture, "classifier", None)
        if classifier is None:
            return ""
        return classifier.classify(block).value

    # -- queries ---------------------------------------------------------------

    def for_block(self, block: int) -> List[AccessEvent]:
        return [e for e in self.events if e.block == block]

    def by_supplier(self, supplier: Supplier) -> List[AccessEvent]:
        return [e for e in self.events if e.supplier is supplier]

    def format(self, last: Optional[int] = None) -> str:
        events = self.events[-last:] if last else self.events
        lines = [e.format() for e in events]
        if self.dropped:
            lines.append(f"... {self.dropped} events beyond the "
                         f"{self.limit}-event limit were dropped")
        return "\n".join(lines)
