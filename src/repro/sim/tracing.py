"""Per-access event tracing for protocol debugging.

``AccessTracer`` wraps a system's ``access`` entry point and records,
for every demand reference, what the protocol did: supplier, latency,
the block's classification before/after, and which L2 banks were
touched. The directed protocol tests assert on aggregate behaviour;
the tracer is for *watching* a handful of accesses when something
looks wrong — the simulator's printf.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.sim.request import Supplier
from repro.sim.system import CmpSystem


@dataclass
class AccessEvent:
    sequence: int
    core: int
    block: int
    is_write: bool
    issue: int
    complete: int
    supplier: Supplier
    classification: str = ""
    note: str = ""

    @property
    def latency(self) -> int:
        return self.complete - self.issue

    def format(self) -> str:
        rw = "W" if self.is_write else "R"
        cls = f" [{self.classification}]" if self.classification else ""
        return (f"#{self.sequence:<6d} t={self.issue:<9d} core {self.core} "
                f"{rw} {self.block:#012x} -> {self.supplier.value:16s} "
                f"{self.latency:5d} cyc{cls}{self.note}")


class AccessTracer:
    """Record (optionally filtered) access events of a live system."""

    def __init__(self, system: CmpSystem, limit: int = 10_000,
                 block_filter: Optional[Callable[[int], bool]] = None,
                 core_filter: Optional[Callable[[int], bool]] = None) -> None:
        self.system = system
        self.limit = limit
        self.block_filter = block_filter
        self.core_filter = core_filter
        self.events: List[AccessEvent] = []
        self.dropped = 0
        self._sequence = 0
        self._inner = None

    def install(self) -> "AccessTracer":
        if self._inner is not None:
            return self
        self._inner = self.system.access

        def traced(core, block, is_write, t_issue):
            outcome = self._inner(core, block, is_write, t_issue)
            self._sequence += 1
            if self.block_filter and not self.block_filter(block):
                return outcome
            if self.core_filter and not self.core_filter(core):
                return outcome
            if len(self.events) >= self.limit:
                self.dropped += 1
                return outcome
            event = AccessEvent(
                sequence=self._sequence, core=core, block=block,
                is_write=is_write, issue=t_issue,
                complete=outcome.complete, supplier=outcome.supplier,
                classification=self._classification(block))
            self.events.append(event)
            return outcome

        self.system.access = traced
        return self

    def uninstall(self) -> None:
        if self._inner is not None:
            # Drop the instance attribute so the class method resolves.
            self.system.__dict__.pop("access", None)
            self._inner = None

    def _classification(self, block: int) -> str:
        classifier = getattr(self.system.architecture, "classifier", None)
        if classifier is None:
            return ""
        return classifier.classify(block).value

    # -- queries ---------------------------------------------------------------

    def for_block(self, block: int) -> List[AccessEvent]:
        return [e for e in self.events if e.block == block]

    def by_supplier(self, supplier: Supplier) -> List[AccessEvent]:
        return [e for e in self.events if e.supplier is supplier]

    def format(self, last: Optional[int] = None) -> str:
        events = self.events[-last:] if last else self.events
        lines = [e.format() for e in events]
        if self.dropped:
            lines.append(f"... {self.dropped} events beyond the "
                         f"{self.limit}-event limit were dropped")
        return "\n".join(lines)
