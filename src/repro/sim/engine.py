"""The *reference* simulation engine: one reference at a time, in
global ``(core clock, core id)`` order.

A heap keyed by per-core clocks interleaves the cores' trace streams so
cross-core interactions (sharing, bank and controller contention,
private-bit demotions) happen in a globally consistent time order. Each
pop processes exactly one memory reference of the earliest core to
completion — the standard trace-driven approximation for memory-system
studies (DESIGN.md §6.1).

This engine is the repository's differential oracle (docs/engine.md):
the default :class:`~repro.sim.vector.engine.VectorizedEngine` batches
contention-free runs but must reproduce this engine's results byte for
byte (``tests/test_engine_equivalence.py``). Keep this loop boring —
its auditability is what the equivalence claims bottom out in; speed
work belongs in the vectorized engine or on the shared
``CmpSystem.access`` path.

Runs may start with a warm-up phase: cache and coherence state carries
over but statistics are reset, so reported numbers reflect steady-state
behaviour (the paper measures warmed full-system checkpoints).
"""

from __future__ import annotations

import heapq
from typing import Iterator, List, Optional, Sequence

from repro.sim.cpu import CoreModel, TraceItem
from repro.sim.results import SimResult
from repro.sim.system import CmpSystem


class SimulationEngine:
    def __init__(self, system: CmpSystem,
                 traces: Sequence[Optional[Iterator[TraceItem]]]) -> None:
        if len(traces) != system.config.num_cores:
            raise ValueError("one trace (or None) required per core")
        self.system = system
        self.traces = list(traces)
        self.cores = [CoreModel(i, system.config.core)
                      for i in range(system.config.num_cores)]
        self._refs = [0] * len(self.cores)
        self._check_every = 0
        self._processed = 0

    def run(self, max_refs_per_core: Optional[int] = None,
            warmup_refs_per_core: int = 0,
            invariant_check_every: int = 0) -> SimResult:
        """Run until every trace is exhausted or capped.

        ``warmup_refs_per_core`` references per core are simulated first
        with statistics discarded. ``invariant_check_every``: if > 0,
        run the full token/directory cross-check every that-many
        processed references (tests only — it is O(resident blocks)).
        """
        self._check_every = invariant_check_every
        base_cycles = [0] * len(self.cores)
        base_instr = [0] * len(self.cores)
        tracer = self.system.tracer
        if warmup_refs_per_core:
            before = self._processed
            with tracer.wall_span("engine", "warmup phase", tid="engine",
                                  args={"arch": self.system.architecture.name}
                                  ) as span:
                self._run_phase(warmup_refs_per_core)
                span["refs"] = self._processed - before
            self.system.reset_stats()
            base_cycles = [c.clock for c in self.cores]
            base_instr = [c.instructions for c in self.cores]
        cap = (None if max_refs_per_core is None
               else warmup_refs_per_core + max_refs_per_core)
        before = self._processed
        with tracer.wall_span("engine", "measure phase", tid="engine",
                              args={"arch": self.system.architecture.name}
                              ) as span:
            self._run_phase(cap)
            span["refs"] = self._processed - before
        for core in self.cores:
            core.drain()
        return self.system.finalize(
            per_core_cycles=[c.clock - b
                             for c, b in zip(self.cores, base_cycles)],
            per_core_instructions=[c.instructions - b
                                   for c, b in zip(self.cores, base_instr)],
        )

    def _run_phase(self, cap: Optional[int]) -> None:
        heap: List[tuple] = []
        for core_id, trace in enumerate(self.traces):
            if trace is not None and (cap is None or self._refs[core_id] < cap):
                heapq.heappush(heap, (self.cores[core_id].clock, core_id))
        while heap:
            _, core_id = heapq.heappop(heap)
            item = self._next_item(core_id)
            if item is None:
                continue
            core = self.cores[core_id]
            core.advance_gap(item.gap)
            outcome = self.system.access(core_id, item.block,
                                         item.kind.is_write,
                                         core.issue_time())
            core.complete_memory(item.kind, outcome.complete)
            self._refs[core_id] += 1
            self._processed += 1
            if self._check_every and self._processed % self._check_every == 0:
                self.system.check_invariants()
            if cap is None or self._refs[core_id] < cap:
                heapq.heappush(heap, (core.clock, core_id))

    def _next_item(self, core_id: int) -> Optional[TraceItem]:
        trace = self.traces[core_id]
        if trace is None:
            return None
        try:
            return next(trace)
        except StopIteration:
            self.traces[core_id] = None
            return None
