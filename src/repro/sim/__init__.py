"""CMP system assembly and the timing simulation kernel."""

from repro.sim.cpu import CoreModel, TraceItem, TraceKind
from repro.sim.engine import SimulationEngine
from repro.sim.request import Supplier
from repro.sim.results import SimResult
from repro.sim.system import CmpSystem

__all__ = [
    "CoreModel",
    "TraceItem",
    "TraceKind",
    "SimulationEngine",
    "Supplier",
    "SimResult",
    "CmpSystem",
]
