"""Engine selection: the reference/vectorized pair (docs/engine.md).

Two engines produce byte-identical :class:`~repro.sim.results.SimResult`
snapshots for the same (config, settings, workload, seed):

* ``reference`` — :class:`~repro.sim.engine.SimulationEngine`, the
  per-reference heap loop. Simple, slow, and the differential oracle:
  every equivalence claim bottoms out in "same result as the reference
  engine".
* ``vectorized`` — :class:`~repro.sim.vector.engine.VectorizedEngine`,
  epoch-batched processing of local (contention-free) reference runs
  between contention points. The default.

Resolution order for the engine name: explicit argument, then the
``REPRO_ENGINE`` environment variable, then the default. Because both
engines are result-equivalent, the persistent run cache is deliberately
*not* keyed by engine — a cached result answers for either engine.
"""

from __future__ import annotations

import os
from typing import Iterator, List, Optional, Sequence

from repro.sim.cpu import TraceItem
from repro.sim.engine import SimulationEngine
from repro.sim.system import CmpSystem

#: Engine names accepted by --engine / REPRO_ENGINE / RunSettings.engine.
ENGINES = ("reference", "vectorized")

DEFAULT_ENGINE = "vectorized"


def resolve_engine(name: Optional[str] = None) -> str:
    """The effective engine name after defaulting.

    ``name=None`` defers to ``REPRO_ENGINE`` (unset/blank means the
    default). An unknown name raises a :class:`ValueError` listing the
    choices, so a typo in ``REPRO_ENGINE`` fails at startup.
    """
    if name is None:
        raw = os.environ.get("REPRO_ENGINE")
        name = raw.strip() if raw is not None and raw.strip() else DEFAULT_ENGINE
    if name not in ENGINES:
        raise ValueError(
            f"unknown engine {name!r}; choices: {', '.join(ENGINES)}")
    return name


def build_engine(system: CmpSystem,
                 traces: Sequence[Optional[Iterator[TraceItem]]],
                 engine: Optional[str] = None) -> SimulationEngine:
    """Construct the selected engine over ``system`` and ``traces``.

    ``traces`` entries may be iterators or materialized lists (lists are
    adopted without copying — the vectorized engine indexes them in
    place, and they are wrapped in fresh iterators for the reference
    engine). The single construction seam: the executor, the oracle
    sweep and the equivalence tests all come through here, so engine
    selection is honored identically in serial, pooled and service
    execution.
    """
    name = resolve_engine(engine)
    if name == "reference":
        return SimulationEngine(
            system, [iter(t) if t is not None else None for t in traces])
    from repro.sim.vector.engine import VectorizedEngine

    return VectorizedEngine(system, traces)
