"""Out-of-order core timing model (Table 2 'Core' row).

The model is trace-driven: the workload supplies a stream of
``TraceItem``s, each carrying the number of non-memory instructions
preceding a memory reference. Timing rules:

* non-memory instructions retire at ``issue_width`` per cycle;
* a load occupies a miss slot until its data returns; the core stalls
  when ``max_outstanding`` (16) loads are in flight;
* the reorder window holds ``window_size`` (64) instructions: the core
  cannot run further ahead of the oldest incomplete load than that;
* ``DEP_LOAD`` items are serializing loads (pointer chases): the core
  waits for the data before issuing anything else — how low-MLP,
  latency-bound applications such as mcf and art express themselves;
* stores retire into the same outstanding-request budget but do not
  close the window (fire-and-forget past the store buffer).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Deque, Tuple

from repro.common.config import CoreConfig


class TraceKind(enum.Enum):
    LOAD = "load"
    STORE = "store"
    DEP_LOAD = "dep_load"

    @property
    def is_write(self) -> bool:
        return self is TraceKind.STORE


@dataclass(frozen=True)
class TraceItem:
    """``gap`` non-memory instructions, then one reference to ``block``."""

    gap: int
    block: int
    kind: TraceKind


class CoreModel:
    """Per-core clock, window and miss-level-parallelism bookkeeping."""

    def __init__(self, core_id: int, config: CoreConfig) -> None:
        self.core_id = core_id
        self.config = config
        self.clock = 0
        self.instructions = 0
        self.memory_refs = 0
        self.stall_cycles = 0
        # (completion_time, instruction_index) of in-flight loads/stores,
        # in issue order (completion order may differ; window checks use
        # the head, MLP checks use the earliest completion).
        self._outstanding: Deque[Tuple[int, int]] = deque()

    # -- bookkeeping helpers ---------------------------------------------------

    def _retire_completed(self) -> None:
        out = self._outstanding
        while out and out[0][0] <= self.clock:
            out.popleft()

    def _wait_until(self, when: int) -> None:
        if when > self.clock:
            self.stall_cycles += when - self.clock
            self.clock = when
        self._retire_completed()

    def _wait_for_slot(self) -> None:
        """Block until an outstanding-request slot frees (MLP limit)."""
        while len(self._outstanding) >= self.config.max_outstanding:
            earliest = min(t for t, _ in self._outstanding)
            self._wait_until(earliest)
            before = len(self._outstanding)
            self._outstanding = deque(
                (t, i) for t, i in self._outstanding if t > self.clock)
            if len(self._outstanding) == before:  # pragma: no cover - guard
                break

    def _enforce_window(self) -> None:
        """The core cannot issue past window_size of the oldest miss."""
        out = self._outstanding
        while out and self.instructions - out[0][1] >= self.config.window_size:
            self._wait_until(out[0][0])
            if out and out[0][0] <= self.clock:
                out.popleft()

    # -- the trace-driven step --------------------------------------------------

    def advance_gap(self, gap: int) -> None:
        """Execute ``gap`` non-memory instructions at issue_width IPC."""
        if gap:
            self.instructions += gap
            self.clock += -(-gap // self.config.issue_width)  # ceil div
            self._retire_completed()
            self._enforce_window()

    def issue_time(self) -> int:
        """The cycle at which the next memory reference issues."""
        return self.clock

    def complete_memory(self, kind: TraceKind, complete_time: int) -> None:
        """Account a memory reference whose data returns at
        ``complete_time`` (absolute cycles)."""
        self.instructions += 1
        self.memory_refs += 1
        self._retire_completed()
        self._wait_for_slot()
        if kind is TraceKind.DEP_LOAD:
            # Serializing load: nothing issues until the data is back.
            self._wait_until(complete_time)
            return
        self._outstanding.append((complete_time, self.instructions))
        self._enforce_window()

    def drain(self) -> None:
        """Wait for all in-flight requests (end of trace)."""
        if self._outstanding:
            last = max(t for t, _ in self._outstanding)
            self._wait_until(last)
            self._outstanding.clear()

    @property
    def outstanding(self) -> int:
        return len(self._outstanding)
