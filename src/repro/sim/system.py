"""The simulated CMP: cores' L1s, the NUCA L2, mesh, memory, coherence.

``CmpSystem`` owns every hardware component and the access entry point;
the bound :class:`~repro.architectures.base.NucaArchitecture` supplies
the L2 placement/search/replacement policy. One system instance equals
one run: build, feed references, read the :class:`SimResult`.

Statistics live in one :class:`~repro.common.statsreg.StatsRegistry`:
every component keeps its own :class:`Scope` and the system mounts them
all here (``l2.bank<i>``, ``l1.core<i>``, ``noc``, ``mem``,
``coherence``, ``arch``, plus the system-level ``access`` scope with
the per-supplier latency decomposition). Warm-up reset is one tree walk
and :class:`SimResult` is a snapshot of the tree — see
docs/observability.md.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Dict, List

from repro.cache.l1 import L1Cache, L1Line
from repro.common.addresses import AddressMap
from repro.common.config import CheckConfig, SystemConfig
from repro.common.statsreg import Counter, Histogram, StatsRegistry
from repro.mem.controller import MemorySystem
from repro.noc.network import Network
from repro.noc.topology import MeshTopology
from repro.coherence.tokens import TokenLedger
from repro.obs import trace as obs
from repro.sim.request import AccessOutcome, Supplier
from repro.sim.results import SimResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.architectures.base import NucaArchitecture


def _effective_checks(configured: CheckConfig) -> CheckConfig:
    """The check policy after the ``REPRO_CHECKS`` override.

    ``REPRO_CHECKS=<N>`` forces invariant checking on with sample
    period N (``REPRO_CHECKS=1`` checks every access) regardless of the
    run's config — the hook CI uses to run existing suites fully
    checked. ``REPRO_CHECKS=0`` forces it off. Unset/blank defers to
    ``SystemConfig.checks``.
    """
    raw = os.environ.get("REPRO_CHECKS")
    if raw is None or raw.strip() == "":
        return configured
    try:
        value = int(raw.strip())
    except ValueError:
        raise ValueError(
            f"REPRO_CHECKS must be an integer sample period (0 disables), "
            f"got {raw!r}") from None
    if value <= 0:
        return CheckConfig(enabled=False)
    return CheckConfig(enabled=True, sample=value,
                       raise_on_violation=configured.raise_on_violation)


class CmpSystem:
    def __init__(self, config: SystemConfig, architecture: "NucaArchitecture",
                 check_tokens: bool = False) -> None:
        self.config = config
        checks = _effective_checks(config.checks)
        self.amap = AddressMap(config)
        self.topology = MeshTopology(config)
        self.network = Network(config, self.topology)
        self.memory = MemorySystem(config)
        self.ledger = TokenLedger(config.num_cores,
                                  checking=check_tokens or checks.enabled)
        self.l1s: List[L1Cache] = [
            L1Cache(core, config.l1.num_sets, config.l1.assoc)
            for core in range(config.num_cores)
        ]
        self.stats = StatsRegistry()
        l1_scope = self.stats.scope("l1")
        for l1 in self.l1s:
            l1_scope.mount(f"core{l1.core_id}", l1.stats)
        self.stats.mount("noc", self.network.stats)
        self.stats.mount("mem", self.memory.stats)
        self.stats.mount("coherence", self.ledger.stats)
        # Demand-access decomposition by data supplier (Figure 6): per
        # supplier an access count, a latency sum and a power-of-two
        # latency histogram.
        access_scope = self.stats.scope("access")
        self._access_count: Dict[Supplier, Counter] = {}
        self._access_cycles: Dict[Supplier, Counter] = {}
        self._access_hist: Dict[Supplier, Histogram] = {}
        for supplier in Supplier:
            sub = access_scope.scope(supplier.name.lower())
            self._access_count[supplier] = sub.counter("count")
            self._access_cycles[supplier] = sub.counter("cycles")
            self._access_hist[supplier] = sub.histogram("latency")
        # Event tracing (docs/observability.md, "Tracing"): the tracer
        # active at construction time is captured so the hot path pays
        # exactly one attribute check when tracing is off. Set before
        # bind() so on_bound hooks (the duel controller) see it.
        self.tracer = obs.active()
        self.trace_now = 0          # t_issue of the in-flight access
        self._trace_pid: int = 0    # this run's sim-clock pid (lazy)
        self._trace_label: str = ""
        self.architecture = architecture
        architecture.bind(self)
        l2_scope = self.stats.scope("l2")
        for bank in architecture.banks:
            l2_scope.mount(f"bank{bank.bank_id}", bank.stats)
        self.stats.mount("arch", architecture.stats)
        # Invariant checking (docs/checking.md): one ``is None`` test
        # per access when off; a full machine sweep every ``sample``
        # accesses when on.
        self.checker = None
        if checks.enabled:
            from repro.check.invariants import InvariantChecker

            self.checker = InvariantChecker(
                self, sample=checks.sample,
                raise_on_violation=checks.raise_on_violation)
            self.stats.mount("check", self.checker.stats)

    # -- event tracing -----------------------------------------------------------

    def set_tracer(self, tracer) -> object:
        """Swap this system's tracer (the supported rebinding seam —
        components capture the tracer by reference at construction, so
        installing one later must go through here). Returns the
        previous tracer; ``None`` means :data:`~repro.obs.trace.NULL_TRACER`.
        """
        previous = self.tracer
        self.tracer = tracer if tracer is not None else obs.NULL_TRACER
        self._trace_pid = 0
        self.architecture.on_tracer(self.tracer)
        return previous

    def set_trace_label(self, label: str) -> None:
        """Name this run's sim-clock trace process (e.g.
        ``"esp-nuca/apache s42"``); must be set before the first event."""
        self._trace_label = label

    def trace_pid(self) -> int:
        """This run's sim-clock trace process id (allocated lazily:
        untraced systems never register a process)."""
        if not self._trace_pid:
            label = self._trace_label or f"sim {self.architecture.name}"
            self._trace_pid = self.tracer.process(label, clock="sim")
        return self._trace_pid

    # -- demand access entry point -----------------------------------------------

    def access(self, core: int, block: int, is_write: bool, t_issue: int
               ) -> AccessOutcome:
        """One demand reference from ``core`` issued at ``t_issue``.

        Functional state is updated eagerly (the reference completes
        logically now); the returned completion time is when the data
        becomes usable by the core.
        """
        tracer = self.tracer
        if tracer.enabled:
            outcome = self._traced_access(core, block, is_write, t_issue)
        else:
            outcome = self._serve_access(core, block, is_write, t_issue)
        if self.checker is not None:
            self.checker.after_access()
        return outcome

    def _serve_access(self, core: int, block: int, is_write: bool,
                      t_issue: int) -> AccessOutcome:
        l1 = self.l1s[core]
        line = l1.access(block)
        if line is not None:
            t_done = t_issue + self.config.l1.access_latency
            if is_write:
                if line.tokens < self.ledger.total_tokens:
                    t_done = max(t_done, self.architecture.handle_upgrade(
                        core, block, line, t_issue + self.config.l1.tag_latency))
                line.dirty = True
            self._record_access(Supplier.L1_LOCAL, t_done - t_issue)
            return AccessOutcome(t_done, Supplier.L1_LOCAL)
        t_miss = t_issue + self.config.l1.tag_latency
        t_done, supplier = self.architecture.handle_miss(core, block,
                                                         is_write, t_miss)
        self._record_access(supplier, t_done - t_issue)
        return AccessOutcome(t_done, supplier)

    def _traced_access(self, core: int, block: int, is_write: bool,
                       t_issue: int) -> AccessOutcome:
        """The access path with tracing live: publish the in-flight
        timestamp (functional-path instants use it), open a child-span
        context on the architecture when this access is sampled, and
        record the demand span once the outcome is known."""
        tracer = self.tracer
        self.trace_now = t_issue
        sampled = tracer.wants("access") and tracer.sample_step()
        if sampled:
            self.architecture._trace_ctx = obs.SpanContext(
                tracer, self.trace_pid())
            try:
                outcome = self._serve_access(core, block, is_write, t_issue)
            finally:
                self.architecture._trace_ctx = None
            tracer.complete(
                "access", "write" if is_write else "read",
                ts=t_issue, dur=outcome.complete - t_issue,
                pid=self.trace_pid(), tid=f"core{core}",
                args={"block": f"{block:#x}",
                      "supplier": outcome.supplier.value})
            return outcome
        return self._serve_access(core, block, is_write, t_issue)

    def _record_access(self, supplier: Supplier, latency: int) -> None:
        self._access_count[supplier].value += 1
        self._access_cycles[supplier].value += latency
        self._access_hist[supplier].record(latency)

    # -- helpers used by architectures ---------------------------------------------

    def l1_fill(self, core: int, block: int, tokens: int, dirty: bool,
                t: int = 0) -> L1Line:
        """Install a line in ``core``'s L1, routing any displaced line
        into the L2 per the architecture's eviction policy. ``t`` is the
        cycle the fill happens (the serving access's completion time);
        eviction traffic it triggers is charged then, not at t=0."""
        if tokens <= 0:
            raise ValueError("an L1 fill needs at least one token")
        line, evicted, merged = self.l1s[core].fill(block, tokens, dirty)
        if not merged:
            # Fresh line; fill() merges into an existing (already
            # registered) line otherwise.
            self.ledger.register_l1(block, core, line)
        if evicted is not None:
            self.architecture.route_l1_eviction(core, evicted, t)
        return line

    def send_to_memory(self, block: int, tokens: int, dirty: bool,
                       router: int, t: int = 0) -> None:
        """Release tokens from an evicted/refused copy at cycle ``t``.

        Token coherence lets evicted tokens be forwarded to any current
        holder, and doing so matters: parking them in memory while L1
        copies remain would force a later writer into an off-chip
        round trip just to collect them. So: merge into an on-chip L1
        holder if one exists, else into an L2 copy, else write back to
        memory (the only case generating off-chip traffic).
        """
        state = self.ledger.state(block)
        if state.l1:
            line = next(iter(state.l1.values()))
            line.tokens += tokens
            line.dirty = line.dirty or dirty
            return
        if state.l2:
            holding = next(iter(state.l2.values()))
            holding.entry.tokens += tokens
            holding.entry.dirty = holding.entry.dirty or dirty
            return
        if dirty:
            mc, _ = self.topology.controller_hops(router)
            self.memory.controller(mc).post_writeback(t)
        self.ledger.give_to_memory(block, tokens)
        if not self.ledger.on_chip(block):
            self.architecture.on_block_left_chip(block)

    def reset_stats(self) -> None:
        """Clear all statistics while keeping cache/coherence state —
        used to exclude the warm-up phase from measurements.

        One registry walk: every mounted component scope (banks, L1s,
        links, controllers, token ledger, duel controller, policy
        counters) is zeroed, so a newly added component cannot be
        forgotten here. Mechanism state (duel EMAs, ``nmax``, ASR
        levels) is deliberately *not* stored in the registry and
        survives — resetting it would change simulated behaviour.
        """
        self.stats.reset()

    # -- snapshots ---------------------------------------------------------------------

    @property
    def result(self) -> SimResult:
        """Live aggregate view of the registry (cheap, rebuilt per read).

        Timing totals (``cycles``/``instructions``) belong to the
        engine and appear only in the result built by :meth:`finalize`.
        """
        result = SimResult(architecture=self.architecture.name)
        result.supplier_count = {s: self._access_count[s].value
                                 for s in Supplier}
        result.supplier_cycles = {s: self._access_cycles[s].value
                                  for s in Supplier}
        result.memory_accesses = sum(result.supplier_count.values())
        result.l1_hits = sum(l1.hits for l1 in self.l1s)
        result.l1_misses = sum(l1.misses for l1 in self.l1s)
        for bank in self.architecture.banks:
            result.l2_hits += bank.total_hits
            result.l2_demand_lookups += bank.total_hits + bank.misses
        result.offchip_demand = self.memory.demand_requests
        result.offchip_writebacks = self.memory.writebacks
        result.noc_messages = self.network.messages_sent
        result.noc_queueing = self.network.total_queueing
        return result

    # -- end-of-run aggregation -------------------------------------------------------

    def finalize(self, per_core_cycles: List[int],
                 per_core_instructions: List[int]) -> SimResult:
        result = self.result
        result.per_core_cycles = list(per_core_cycles)
        result.per_core_instructions = list(per_core_instructions)
        result.cycles = max(per_core_cycles) if per_core_cycles else 0
        result.instructions = sum(per_core_instructions)
        result.stats = self.stats.to_dict()
        return result

    # -- introspection (tests, examples) ------------------------------------------------

    def l2_occupancy(self) -> int:
        return sum(bank.occupancy() for bank in self.architecture.banks)

    def check_invariants(self) -> None:
        """Full token-conservation and directory cross-check."""
        self.ledger.check_all()
        for block in list(self.ledger.known_blocks()):
            state = self.ledger.state(block)
            for core, line in state.l1.items():
                resident = self.l1s[core].lookup(block, touch=False)
                assert resident is line, (
                    f"ledger/L1 divergence for block {block:#x} at core {core}")
            for holding in state.l2.values():
                bank = self.architecture.banks[holding.bank_id]
                found = bank.sets[holding.set_index].find(block)
                entries = [e for e in bank.sets[holding.set_index].blocks
                           if e is holding.entry]
                assert found is not None and entries, (
                    f"ledger/L2 divergence for block {block:#x} "
                    f"in bank {holding.bank_id}")
