"""Aggregated results of one simulation run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.sim.request import Supplier


@dataclass
class SimResult:
    """Counters a run produces; the metrics layer derives everything else.

    ``supplier_count`` / ``supplier_cycles`` accumulate, per data
    supplier, the number of demand accesses and the sum of their
    latencies — exactly the decomposition plotted in Figure 6.
    """

    architecture: str = ""
    workload: str = ""
    seed: int = 0
    cycles: int = 0
    instructions: int = 0
    memory_accesses: int = 0
    per_core_cycles: List[int] = field(default_factory=list)
    per_core_instructions: List[int] = field(default_factory=list)
    supplier_count: Dict[Supplier, int] = field(
        default_factory=lambda: {s: 0 for s in Supplier})
    supplier_cycles: Dict[Supplier, int] = field(
        default_factory=lambda: {s: 0 for s in Supplier})
    l1_hits: int = 0
    l1_misses: int = 0
    l2_demand_lookups: int = 0
    l2_hits: int = 0
    offchip_demand: int = 0
    offchip_writebacks: int = 0
    noc_messages: int = 0
    noc_queueing: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    # -- derived metrics -----------------------------------------------------

    @property
    def performance(self) -> float:
        """Work per cycle: the run's figure of merit (higher is better).

        All runs of a workload execute the same instruction totals, so
        normalizing this across architectures equals normalizing
        execution time, the paper's metric.
        """
        if self.cycles == 0:
            raise ValueError("empty run")
        return self.instructions / self.cycles

    @property
    def ipc(self) -> float:
        return self.performance

    @property
    def average_access_time(self) -> float:
        """Mean latency of a demand memory access (Figure 6 height)."""
        if self.memory_accesses == 0:
            return 0.0
        return sum(self.supplier_cycles.values()) / self.memory_accesses

    def access_time_component(self, supplier: Supplier) -> float:
        """Contribution of one supplier to the average access time."""
        if self.memory_accesses == 0:
            return 0.0
        return self.supplier_cycles[supplier] / self.memory_accesses

    @property
    def offchip_accesses_per_kilo_access(self) -> float:
        """Off-chip demand traffic, normalized (Figure 7 x-series)."""
        if self.memory_accesses == 0:
            return 0.0
        return 1000.0 * self.offchip_demand / self.memory_accesses

    @property
    def onchip_latency(self) -> float:
        """Average latency of accesses served on chip (Figure 7 y-series)."""
        onchip = [s for s in Supplier if s is not Supplier.OFFCHIP]
        count = sum(self.supplier_count[s] for s in onchip)
        if count == 0:
            return 0.0
        return sum(self.supplier_cycles[s] for s in onchip) / count

    @property
    def l2_miss_rate(self) -> float:
        if self.l2_demand_lookups == 0:
            return 0.0
        return 1.0 - self.l2_hits / self.l2_demand_lookups

    def record_access(self, supplier: Supplier, latency: int) -> None:
        self.memory_accesses += 1
        self.supplier_count[supplier] += 1
        self.supplier_cycles[supplier] += latency
