"""Aggregated results of one simulation run.

A :class:`SimResult` is a *snapshot*: the flat aggregate counters every
experiment consumes (with the derived-metric API the metrics layer
builds on) plus ``stats`` — the full hierarchical registry snapshot
(see :mod:`repro.common.statsreg`) with per-bank, per-link,
per-controller and per-policy breakdowns. ``to_dict``/``from_dict``
round-trip the whole object through JSON losslessly; that form is the
repo's one result serialization — the persistent run cache stores it,
the ``esp-nuca stats`` renderer (and its ``--json`` mode) prints it,
and the simulation service streams it over the wire (see
docs/service.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional

from repro.sim.request import Supplier

#: Fields keyed by the Supplier enum, serialized by member name.
_SUPPLIER_FIELDS = ("supplier_count", "supplier_cycles")


@dataclass
class SimResult:
    """Counters a run produces; the metrics layer derives everything else.

    ``supplier_count`` / ``supplier_cycles`` accumulate, per data
    supplier, the number of demand accesses and the sum of their
    latencies — exactly the decomposition plotted in Figure 6.
    ``stats`` is the hierarchical per-component snapshot exported by
    :meth:`repro.sim.system.CmpSystem.finalize`; empty for results
    built by hand (unit tests, synthetic fixtures).
    """

    architecture: str = ""
    workload: str = ""
    seed: int = 0
    cycles: int = 0
    instructions: int = 0
    memory_accesses: int = 0
    per_core_cycles: List[int] = field(default_factory=list)
    per_core_instructions: List[int] = field(default_factory=list)
    supplier_count: Dict[Supplier, int] = field(
        default_factory=lambda: {s: 0 for s in Supplier})
    supplier_cycles: Dict[Supplier, int] = field(
        default_factory=lambda: {s: 0 for s in Supplier})
    l1_hits: int = 0
    l1_misses: int = 0
    l2_demand_lookups: int = 0
    l2_hits: int = 0
    offchip_demand: int = 0
    offchip_writebacks: int = 0
    noc_messages: int = 0
    noc_queueing: int = 0
    stats: Dict[str, object] = field(default_factory=dict)

    # -- derived metrics -----------------------------------------------------

    @property
    def performance(self) -> float:
        """Work per cycle: the run's figure of merit (higher is better).

        All runs of a workload execute the same instruction totals, so
        normalizing this across architectures equals normalizing
        execution time, the paper's metric.
        """
        if self.cycles == 0:
            raise ValueError("empty run")
        return self.instructions / self.cycles

    @property
    def ipc(self) -> float:
        return self.performance

    @property
    def average_access_time(self) -> float:
        """Mean latency of a demand memory access (Figure 6 height)."""
        if self.memory_accesses == 0:
            return 0.0
        return sum(self.supplier_cycles.values()) / self.memory_accesses

    def access_time_component(self, supplier: Supplier) -> float:
        """Contribution of one supplier to the average access time."""
        if self.memory_accesses == 0:
            return 0.0
        return self.supplier_cycles[supplier] / self.memory_accesses

    @property
    def offchip_accesses_per_kilo_access(self) -> float:
        """Off-chip demand traffic, normalized (Figure 7 x-series)."""
        if self.memory_accesses == 0:
            return 0.0
        return 1000.0 * self.offchip_demand / self.memory_accesses

    @property
    def onchip_latency(self) -> float:
        """Average latency of accesses served on chip (Figure 7 y-series)."""
        onchip = [s for s in Supplier if s is not Supplier.OFFCHIP]
        count = sum(self.supplier_count[s] for s in onchip)
        if count == 0:
            return 0.0
        return sum(self.supplier_cycles[s] for s in onchip) / count

    @property
    def l2_miss_rate(self) -> float:
        if self.l2_demand_lookups == 0:
            return 0.0
        return 1.0 - self.l2_hits / self.l2_demand_lookups

    def record_access(self, supplier: Supplier, latency: int) -> None:
        self.memory_accesses += 1
        self.supplier_count[supplier] += 1
        self.supplier_cycles[supplier] += latency

    # -- structured serialization --------------------------------------------

    @classmethod
    def schema_keys(cls) -> List[str]:
        """Sorted top-level key set of :meth:`to_dict` — the *result
        schema*. The persistent run cache derives its version from a
        hash of this list, so any field add/remove/rename invalidates
        stale entries automatically."""
        return sorted(f.name for f in fields(cls))

    def to_dict(self) -> Dict[str, object]:
        """JSON-clean structured form (exact round-trip via from_dict)."""
        out: Dict[str, object] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name in _SUPPLIER_FIELDS:
                value = {s.name: value.get(s, 0) for s in Supplier}
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> Optional["SimResult"]:
        """Rebuild from :meth:`to_dict` output (or its JSON round-trip).

        Returns ``None`` when the payload's top-level key set does not
        match the current schema — the stale-cache signal.
        """
        if not isinstance(data, dict) or sorted(data) != cls.schema_keys():
            return None
        kwargs = dict(data)
        try:
            for name in _SUPPLIER_FIELDS:
                kwargs[name] = {Supplier[k]: v
                                for k, v in kwargs[name].items()}
        except (KeyError, AttributeError, TypeError):
            return None
        return cls(**kwargs)
