"""Adaptive Selective Replication (ASR, Beckmann et al. [3]) — Section 6.1.

ASR starts from private L2s but replicates *shared read* blocks into
the local partition only probabilistically, with a per-core replication
level adapted at run time from a cost/benefit estimate:

* **benefit** of replication — local replica hits that would otherwise
  have been remote (counted directly, weighted by the latency gap);
* **cost** of replication — extra misses caused by the capacity that
  replicas consume (estimated by re-touches of recently evicted
  non-replica blocks, a victim-tag-buffer style sample).

Every epoch each core compares the two and moves its replication level
one step up or down through {0, 1/4, 1/2, 3/4, 1} (the paper's level
set). This is a behaviourally faithful simplification of ASR's paired
SPR benefit/cost counters — documented in DESIGN.md; the paper's own
finding (ASR tracks a plain private cache on most suites) is what the
mechanism reproduces.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, List, Tuple

from repro.architectures.private import TiledPrivate
from repro.cache.block import BlockClass, CacheBlock
from repro.cache.l1 import L1Line
from repro.common.config import SystemConfig
from repro.sim.request import Supplier

#: Replication probability levels (paper: 0, 1/4, 1/2, 3/4, 1).
LEVELS = (0.0, 0.25, 0.5, 0.75, 1.0)


class AdaptiveSelectiveReplication(TiledPrivate):
    name = "asr"

    def __init__(self, config: SystemConfig, epoch: int = 4096,
                 victim_tags: int = 512, initial_level: int = 2) -> None:
        super().__init__(config)
        self.epoch = epoch
        self.victim_tag_depth = victim_tags
        self.initial_level = initial_level

    def bind(self, system) -> None:
        super().bind(system)
        n = self.config.num_cores
        self.level_index: List[int] = [self.initial_level] * n
        self._rng = random.Random(0xA5A5)
        # Per-core epoch counters.
        self._events: List[int] = [0] * n
        self._replica_hits: List[int] = [0] * n
        self._remote_shared_hits: List[int] = [0] * n
        self._capacity_recaptures: List[int] = [0] * n
        # Recently evicted non-replica blocks (victim-tag sample).
        self._victim_tags: List[Deque[int]] = [
            deque(maxlen=self.victim_tag_depth) for _ in range(n)]
        self._victim_sets: List[set] = [set() for _ in range(n)]
        # Observability: per-core replication level (a gauge — the level
        # itself is mechanism state and survives warm-up reset) and the
        # number of adaptation steps taken.
        repl = self.stats.scope("replication")
        self._level_changes = repl.counter("level_changes")
        self._level_gauges = [repl.scope(f"core{c}").gauge("level_index")
                              for c in range(n)]
        for c in range(n):
            self._level_gauges[c].set(self.level_index[c])

    @property
    def level_changes(self) -> int:
        return self._level_changes.value

    # -- level bookkeeping -------------------------------------------------------

    def replication_probability(self, core: int) -> float:
        return LEVELS[self.level_index[core]]

    def _note_event(self, core: int) -> None:
        self._events[core] += 1
        if self._events[core] >= self.epoch:
            self._adapt(core)

    def _adapt(self, core: int) -> None:
        remote_gap = 2 * self.config.noc.hop_latency * 2  # remote round trip
        miss_penalty = self.config.mem.latency
        benefit = self._replica_hits[core] * remote_gap
        growth = self._remote_shared_hits[core] * remote_gap
        cost = self._capacity_recaptures[core] * miss_penalty
        index = self.level_index[core]
        if cost > benefit and index > 0:
            index -= 1
            self._level_changes.value += 1
        elif growth > cost and index < len(LEVELS) - 1:
            index += 1
            self._level_changes.value += 1
        self.level_index[core] = index
        self._level_gauges[core].set(index)
        self._events[core] = 0
        self._replica_hits[core] = 0
        self._remote_shared_hits[core] = 0
        self._capacity_recaptures[core] = 0

    # -- hooks into the private-cache flow ---------------------------------------------

    def handle_miss(self, core: int, block: int, is_write: bool, t: int
                    ) -> Tuple[int, Supplier]:
        # Victim-tag recapture: a miss on a recently evicted first-class
        # block is evidence replicas are squeezing the local partition.
        if block in self._victim_sets[core]:
            self._victim_sets[core].discard(block)
            self._capacity_recaptures[core] += 1
        t_done, supplier = super().handle_miss(core, block, is_write, t)
        if supplier in (Supplier.L2_REMOTE, Supplier.L1_REMOTE):
            self._remote_shared_hits[core] += 1
        self._note_event(core)
        return t_done, supplier

    def _on_local_hit(self, core: int, entry) -> None:
        if entry.meta.get("replica"):
            self._replica_hits[core] += 1

    # -- selective replication on writeback ---------------------------------------------

    def route_l1_eviction(self, core: int, line: L1Line, t: int = 0) -> None:
        block = line.block
        state = self.ledger.state(block)
        other_copies = (any(h != core for h in state.l1) or bool(state.l2))
        if not other_copies:
            # Sole copy: the owner keeps it locally (the "home" copy).
            super().route_l1_eviction(core, line, t)
            return
        tokens = self.ledger.take_from_l1(block, core)
        if self._rng.random() < self.replication_probability(core):
            bank_id = self.amap.private_bank(block, core)
            index = self.amap.private_index(block)
            bank = self.banks[bank_id]
            existing = bank.peek(index, block, owner=core)
            if existing is not None:
                existing.tokens += tokens
                existing.dirty = existing.dirty or line.dirty
                bank.touch(existing)
                return
            entry = CacheBlock(block=block, cls=BlockClass.PRIVATE,
                               owner=core, dirty=line.dirty, tokens=tokens)
            entry.meta["replica"] = True
            if self.l2_allocate(bank_id, index, entry, t=t):
                return
            self.system.send_to_memory(block, tokens, line.dirty,
                                       self.router_of_core(core), t)
            return
        # No replication: return the tokens to an existing copy.
        for holding in self.ledger.l2_holdings(block):
            holding.entry.tokens += tokens
            holding.entry.dirty = holding.entry.dirty or line.dirty
            self.banks[holding.bank_id].touch(holding.entry)
            return
        self.system.send_to_memory(block, tokens, line.dirty,
                                   self.router_of_core(core), t)

    def on_l2_eviction(self, bank_id: int, set_index: int, entry: CacheBlock,
                       tokens: int, cascade: bool, t: int = 0) -> None:
        owner = entry.owner
        if 0 <= owner < self.config.num_cores and not entry.meta.get("replica"):
            tags = self._victim_tags[owner]
            if len(tags) == tags.maxlen:
                self._victim_sets[owner].discard(tags[0])
            tags.append(entry.block)
            self._victim_sets[owner].add(entry.block)
        super().on_l2_eviction(bank_id, set_index, entry, tokens, cascade,
                               t)
