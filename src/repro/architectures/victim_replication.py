"""Victim Replication (Zhang & Asanović [22]).

The paper excludes VR from its headline comparison "because it has been
outperformed by both ASR and Cooperative Caching", but it is the
closest ancestor of ESP-NUCA's replica mechanism, so it is provided as
an extra baseline (and an ablation target: ESP-NUCA minus victims,
minus protection, on a shared substrate).

Mechanism: a shared S-NUCA in which an L1 eviction whose home bank is
remote leaves a *replica* in the evicting core's local bank (same
shared-map index, local cluster), evicted on demand by plain LRU —
replication without any admission control, which is exactly the
weakness ESP-NUCA's protected LRU addresses.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.architectures.shared import SharedNuca
from repro.cache.block import BlockClass, CacheBlock
from repro.cache.l1 import L1Line
from repro.sim.request import Supplier


class VictimReplication(SharedNuca):
    name = "victim-replication"

    def bind(self, system) -> None:
        super().bind(system)
        helping = self.stats.scope("helping")
        self._replicas_created = helping.counter("replicas_created")
        self._replica_hits = helping.counter("replica_hits")

    @property
    def replicas_created(self) -> int:
        return self._replicas_created.value

    @property
    def replica_hits(self) -> int:
        return self._replica_hits.value

    def _local_bank(self, block: int, core: int) -> Tuple[int, int]:
        """The local-cluster bank slot VR uses for replicas: the bank
        of the home bankset column within the core's own cluster."""
        local = self.amap.shared_bank(block) % self.config.noc.banks_per_router
        bank = core * self.config.noc.banks_per_router + local
        return bank, self.amap.shared_index(block)

    # -- probe order: local replica first, then the home bank ----------------------

    def handle_miss(self, core: int, block: int, is_write: bool, t: int
                    ) -> Tuple[int, Supplier]:
        bank_id, index = self._local_bank(block, core)
        home = self.amap.shared_bank(block)
        if bank_id != home:
            entry = self.banks[bank_id].lookup(
                index, block, classes=(BlockClass.REPLICA,), owner=core)
            if entry is not None:
                self._replica_hits.value += 1
                t_hit = self.bank_service(bank_id, t, hit=True)
                tokens, dirty, _ = self.take_from_l2_entry(
                    block, bank_id, index, entry,
                    want_all=is_write, exclusive_if_sole=False)
                t_done = t_hit
                if is_write:
                    t_coll, extra, _ = self.collect_for_write(
                        core, block, self.router_of_core(core), t_hit)
                    tokens += extra
                    t_done = max(t_done, t_coll)
                self.system.l1_fill(core, block, tokens, dirty or is_write,
                                    t_done)
                return t_done, Supplier.L2_LOCAL
            t = self.bank_service(bank_id, t, hit=False)
        return super().handle_miss(core, block, is_write, t)

    # -- unrestricted replication on writeback --------------------------------------

    def route_l1_eviction(self, core: int, line: L1Line, t: int = 0) -> None:
        block = line.block
        home = self.amap.shared_bank(block)
        bank_id, index = self._local_bank(block, core)
        state = self.ledger.state(block)
        other_copies = (any(h != core for h in state.l1) or bool(state.l2))
        if bank_id == home or not other_copies:
            # Home is already local, or this is the last on-chip copy
            # (the home bank must keep the authoritative copy).
            super().route_l1_eviction(core, line, t)
            return
        tokens = self.ledger.take_from_l1(block, core)
        bank = self.banks[bank_id]
        existing = bank.peek(index, block, classes=(BlockClass.REPLICA,),
                             owner=core)
        if existing is not None:
            existing.tokens += tokens
            existing.dirty = existing.dirty or line.dirty
            bank.touch(existing)
            return
        entry = CacheBlock(block=block, cls=BlockClass.REPLICA, owner=core,
                           dirty=line.dirty, tokens=tokens)
        if self.l2_allocate(bank_id, index, entry, t=t):
            self._replicas_created.value += 1
            return
        self.system.send_to_memory(block, tokens, line.dirty,
                                   self.router_of_bank(bank_id), t)
