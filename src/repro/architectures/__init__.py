"""Cache architectures under evaluation (Section 6.1).

The package contains the five counterpart architectures; the paper's
own proposals (SP-NUCA, ESP-NUCA) live in :mod:`repro.core` but
implement the same :class:`~repro.architectures.base.NucaArchitecture`
interface over the same bank substrate, so comparisons differ only by
policy.
"""

from repro.architectures.base import NucaArchitecture
from repro.architectures.private import TiledPrivate
from repro.architectures.shared import SharedNuca

__all__ = ["NucaArchitecture", "SharedNuca", "TiledPrivate"]
