"""The architecture-policy interface and its shared machinery.

An architecture decides *where blocks live and how requests find them*;
everything else — banks, tokens, network, memory, the L1s — is common
substrate owned by :class:`repro.sim.system.CmpSystem`. Concrete
architectures implement:

* ``build_banks``      — bank array with the right replacement policy;
* ``handle_miss``      — the full L2-and-beyond path after an L1 miss
  (functional updates + returned timing);
* ``route_l1_eviction`` — where an L1 writeback allocates;
* ``on_l2_eviction``   — what happens to blocks evicted from L2
  (default: tokens and dirty data go to memory).

The base class provides timing helpers (bank service with busy-until
contention, off-chip fetches, remote-L1 supply, write-token collection)
so concrete policies read like the protocol walkthroughs in the paper.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.cache.bank import CacheBank
from repro.cache.block import BlockClass, CacheBlock
from repro.cache.l1 import L1Line
from repro.common.config import SystemConfig
from repro.common.statsreg import Scope
from repro.noc.message import MessageKind
from repro.sim.request import Supplier

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.system import CmpSystem


class NucaArchitecture:
    """Base class: bind-time wiring plus shared functional/timing helpers."""

    name = "base"

    #: Classifier contract strength, read by the invariant checker: a
    #: True value declares that a SHARED-classified block may keep
    #: stale PRIVATE/VICTIM entries (a documented approximation, e.g.
    #: R-NUCA's lazy page demotion) instead of the strict SP-NUCA
    #: guarantee that demotion scrubs owned copies on touch.
    classifier_stale_owned_ok = False

    #: Child-span context of the in-flight *sampled* demand access
    #: (published by :meth:`CmpSystem._traced_access`); ``None`` means
    #: tracing is off or this access is unsampled — the timing helpers
    #: below pay exactly one ``is not None`` test for it.
    _trace_ctx = None

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.system: "CmpSystem" = None  # type: ignore[assignment]
        # Policy-level statistics (helping-block creation, demotions,
        # ...). Subclasses register counters here; the system mounts
        # the scope at ``arch``.
        self.stats = Scope()

    # -- wiring ---------------------------------------------------------------

    def bind(self, system: "CmpSystem") -> None:
        self.system = system
        self.amap = system.amap
        self.topology = system.topology
        self.network = system.network
        self.memory = system.memory
        self.ledger = system.ledger
        self.banks: List[CacheBank] = self.build_banks()
        self._bank_busy = [0] * len(self.banks)
        # Dense geometry tables: router_of_core is the identity on this
        # mesh and router_of_bank a division, but both sit on the
        # per-miss hot path — flatten to list lookups.
        topo = self.topology
        self._core_router = [topo.router_of_core(c)
                             for c in range(self.config.num_cores)]
        self._bank_router = [topo.router_of_bank(b)
                             for b in range(len(self.banks))]
        # Shadow the method wrappers with the tables' C-level
        # ``__getitem__``: every ``self.router_of_core(c)`` call across
        # the architectures dispatches straight into the list lookup,
        # with no Python frame. The class methods below stay as the
        # documented interface (and serve any unbound architecture).
        self.router_of_core = self._core_router.__getitem__
        self.router_of_bank = self._bank_router.__getitem__
        # A rebound architecture starts its statistics from zero (the
        # mechanism state is rebuilt by build_banks/on_bound anyway).
        self.stats.reset()
        self.on_bound()

    def build_banks(self) -> List[CacheBank]:
        cfg = self.config.l2
        return [CacheBank(b, cfg.sets_per_bank, cfg.assoc)
                for b in range(cfg.num_banks)]

    def on_bound(self) -> None:
        """Hook for post-bind setup (e.g. ESP attaches its duel controller)."""

    def on_tracer(self, tracer) -> None:
        """Hook: the owning system swapped its tracer
        (:meth:`CmpSystem.set_tracer`); push it to any components that
        captured the old one (ESP forwards it to the duel controller)."""

    # -- interface ------------------------------------------------------------

    def handle_miss(self, core: int, block: int, is_write: bool, t: int
                    ) -> Tuple[int, Supplier]:
        """Resolve an L1 miss detected at cycle ``t``.

        Must locate the data, move tokens, fill the requester's L1 (via
        ``system.l1_fill``) and return ``(completion_cycle, supplier)``.
        """
        raise NotImplementedError

    def route_l1_eviction(self, core: int, line: L1Line, t: int = 0) -> None:
        """Place a line evicted from ``core``'s L1 somewhere in L2 (or
        memory) at cycle ``t``. Off the critical path: traffic only, no
        latency charged to the evicting access — but any off-chip
        writeback it triggers reserves controller bandwidth at ``t``."""
        raise NotImplementedError

    def on_l2_eviction(self, bank_id: int, set_index: int, entry: CacheBlock,
                       tokens: int, cascade: bool, t: int = 0) -> None:
        """An L2 replacement pushed ``entry`` out (its tokens already
        withdrawn from the ledger) at cycle ``t``. Default: return it to
        memory. ``cascade`` is True when the eviction was itself caused
        by a helping-block insertion — implementations must not create
        new helping blocks then (bounds recursion)."""
        self.system.send_to_memory(entry.block, tokens, entry.dirty,
                                   self.router_of_bank(bank_id), t)

    def on_block_left_chip(self, block: int) -> None:
        """Called when the last on-chip copy of ``block`` is gone."""

    # -- geometry shorthands ------------------------------------------------------

    def router_of_core(self, core: int) -> int:
        return self._core_router[core]

    def router_of_bank(self, bank_id: int) -> int:
        return self._bank_router[bank_id]

    def is_local_bank(self, core: int, bank_id: int) -> bool:
        return self.router_of_bank(bank_id) == self.router_of_core(core)

    # -- timing helpers -----------------------------------------------------------

    def req(self, src_router: int, dst_router: int, t: int) -> int:
        """Request-message traversal (contended)."""
        if src_router == dst_router:
            return t
        t_arrive = self.network.arrival(MessageKind.REQUEST, src_router,
                                        dst_router, t)
        ctx = self._trace_ctx
        if ctx is not None and ctx.tracer.wants("noc"):
            ctx.tracer.complete(
                "noc", "req", ts=t, dur=t_arrive - t, pid=ctx.pid,
                tid="noc", args={"src": src_router, "dst": dst_router})
        return t_arrive

    def data(self, src_router: int, dst_router: int, t: int) -> int:
        """Data-response traversal (contended)."""
        if src_router == dst_router:
            return t
        t_arrive = self.network.arrival(MessageKind.RESPONSE_DATA, src_router,
                                        dst_router, t)
        ctx = self._trace_ctx
        if ctx is not None and ctx.tracer.wants("noc"):
            ctx.tracer.complete(
                "noc", "data", ts=t, dur=t_arrive - t, pid=ctx.pid,
                tid="noc", args={"src": src_router, "dst": dst_router})
        return t_arrive

    def bank_service(self, bank_id: int, t_arrive: int, hit: bool) -> int:
        """Sequential tag(+data) access with busy-until bank contention.

        A miss is detected after the tag latency; a hit additionally
        pays the data-array access (Table 2: 2 + 5 cycles). The wait is
        capped at a few services to bound out-of-time-order skew (see
        Network.arrival).
        """
        cfg = self.config.l2
        occupancy = cfg.tag_latency + (cfg.access_latency if hit else 0)
        ready = self._bank_busy[bank_id]
        start = t_arrive
        if ready > start:
            start += min(ready - start, 4 * occupancy)
        self._bank_busy[bank_id] = max(ready, start + occupancy)
        ctx = self._trace_ctx
        if ctx is not None and ctx.tracer.wants("l2"):
            ctx.tracer.complete(
                "l2", "bank hit" if hit else "bank miss", ts=start,
                dur=occupancy, pid=ctx.pid, tid=f"bank{bank_id}",
                args={"wait": start - t_arrive} if start > t_arrive else None)
        return start + occupancy

    def fetch_offchip(self, dispatch_router: int, t_dispatch: int,
                      dest_router: int) -> int:
        """Dispatch a demand fetch to the nearest controller; return the
        cycle the data reaches ``dest_router``."""
        hop = self.config.noc.hop_latency
        mc, hops_req = self.topology.controller_hops(dispatch_router)
        controller = self.memory.controller(mc)
        t_data = controller.service(t_dispatch + hops_req * hop)
        hops_resp = self.topology.controller_distance(mc, dest_router)
        t_done = t_data + hops_resp * hop
        ctx = self._trace_ctx
        if ctx is not None and ctx.tracer.wants("mem"):
            ctx.tracer.complete(
                "mem", "off-chip fetch", ts=t_dispatch,
                dur=t_done - t_dispatch, pid=ctx.pid, tid=f"mc{mc}",
                args=None)
        return t_done

    def supply_from_l1(self, requester: int, holder: int, via_router: int,
                       t: int) -> int:
        """Forward a request from ``via_router`` to ``holder``'s L1 and
        ship the data to the requester (TokenD forwarding)."""
        t1 = self.req(via_router, self.router_of_core(holder), t)
        t2 = t1 + self.config.l1.access_latency
        return self.data(self.router_of_core(holder),
                         self.router_of_core(requester), t2)

    # -- functional token-movement helpers ----------------------------------------

    def take_read_from_l1(self, block: int, holder: int) -> Tuple[int, bool]:
        """Take a read token from ``holder``; invalidate its line when it
        would be left tokenless. Returns (tokens, dirty_transferred)."""
        state = self.ledger.state(block)
        line = state.l1[holder]
        if line.tokens > 1:
            return self.ledger.take_from_l1(block, holder, 1), False
        dirty = line.dirty
        tokens = self.ledger.take_from_l1(block, holder)
        self.system.l1s[holder].invalidate(block)
        return tokens, dirty

    def take_from_l2_entry(self, block: int, bank_id: int, set_index: int,
                           entry: CacheBlock, want_all: bool,
                           exclusive_if_sole: bool = True
                           ) -> Tuple[int, bool, bool]:
        """Withdraw tokens from an L2 entry.

        Shared entries give a single token to each new reader so the
        copy keeps serving others; sole copies (all tokens) move wholly
        into the requesting L1 when ``exclusive_if_sole`` (the E-state
        analogue: a sole user can later write silently), as do entries
        asked with ``want_all``. Returns
        ``(tokens, dirty_transferred, removed)``.
        """
        take_all = (want_all or entry.tokens == 1
                    or (exclusive_if_sole
                        and entry.tokens == self.ledger.total_tokens))
        if take_all:
            dirty = entry.dirty
            tokens = self.ledger.take_from_l2(block, entry)
            self.banks[bank_id].remove(set_index, entry)
            return tokens, dirty, True
        return self.ledger.take_from_l2(block, entry, 1), False, False

    def collect_for_write(self, core: int, block: int, home_router: int,
                          t: int) -> Tuple[int, int, bool]:
        """Invalidate every copy except ``core``'s own L1 line and gather
        all their tokens at the requester (write/upgrade path).

        Returns ``(t_all_tokens_at_core, tokens, dirty_any)``; the
        completion time is the max over per-holder round trips.
        """
        state = self.ledger.state(block)
        requester_router = self.router_of_core(core)
        t_done = t
        tokens = 0
        dirty = False
        for holder in list(state.l1):
            if holder == core:
                continue
            line = state.l1[holder]
            dirty = dirty or line.dirty
            tokens += self.ledger.take_from_l1(block, holder)
            self.system.l1s[holder].invalidate(block)
            t1 = self.req(home_router, self.router_of_core(holder), t)
            t_done = max(t_done, self.data(self.router_of_core(holder),
                                           requester_router, t1))
        for holding in list(state.l2.values()):
            entry = holding.entry
            dirty = dirty or entry.dirty
            tokens += self.ledger.take_from_l2(block, entry)
            self.banks[holding.bank_id].remove(holding.set_index, entry)
            t1 = self.req(home_router, self.router_of_bank(holding.bank_id), t)
            t1 = self.bank_service(holding.bank_id, t1, hit=True)
            t_done = max(t_done, self.data(self.router_of_bank(holding.bank_id),
                                           requester_router, t1))
        if state.memory_tokens > 0:
            # Rare: some tokens parked in memory while copies are on chip
            # (e.g. after a refused helping-block allocation). The writer
            # must round-trip off chip for them.
            tokens += self.ledger.take_from_memory(block)
            t_done = max(t_done, self.fetch_offchip(home_router, t,
                                                    requester_router))
        return t_done, tokens, dirty

    def handle_upgrade(self, core: int, block: int, line: L1Line, t: int) -> int:
        """Write hit on a line lacking exclusivity: collect the missing
        tokens. Returns the completion cycle."""
        t_done, tokens, _ = self.collect_for_write(
            core, block, self.router_of_core(core), t)
        line.tokens += tokens
        assert line.tokens == self.ledger.total_tokens
        line.dirty = True
        return t_done

    # -- functional allocation helpers -----------------------------------------------

    def l2_allocate(self, bank_id: int, set_index: int, entry: CacheBlock,
                    cascade: bool = False, t: int = 0,
                    dup_checked: bool = False) -> bool:
        """Install an entry in a bank, registering tokens and handling
        the displaced block. Returns False if the policy refused it.
        ``dup_checked`` as in :meth:`CacheBank.allocate`."""
        bank = self.banks[bank_id]
        admitted, evicted = bank.allocate(set_index, entry,
                                          dup_checked=dup_checked)
        if not admitted:
            tr = self.system.tracer
            if tr.enabled and tr.wants("l2"):
                tr.instant(
                    "l2", "allocation refused", ts=self.system.trace_now,
                    pid=self.system.trace_pid(), tid=f"bank{bank_id}",
                    args={"block": f"{entry.block:#x}",
                          "class": entry.cls.name.lower()})
            return False
        if evicted is not None:
            tokens = self.ledger.take_from_l2(evicted.block, evicted)
            self.on_l2_eviction(bank_id, set_index, evicted, tokens, cascade,
                                t)
        self.ledger.register_l2(entry.block, bank_id, set_index, entry)
        return True

    def merge_or_allocate(self, bank_id: int, set_index: int, block: int,
                          cls: BlockClass, owner: int, tokens: int,
                          dirty: bool, cascade: bool = False, t: int = 0
                          ) -> bool:
        """Merge tokens into an existing same-class copy at the target
        location, or allocate a fresh entry there."""
        bank = self.banks[bank_id]
        # Direct scan instead of bank.peek(): same (block, class, owner)
        # filters without the lookup() call layers — this runs once per
        # L1 writeback.
        existing = None
        for resident in bank.sets[set_index].blocks:
            if (resident is not None and resident.block == block
                    and resident.cls is cls and resident.owner == owner):
                existing = resident
                break
        if existing is None and cls is BlockClass.PRIVATE:
            # An owner's writeback may also merge into its own replica.
            for resident in bank.sets[set_index].blocks:
                if (resident is not None and resident.block == block
                        and resident.owner == owner):
                    existing = resident
                    break
        if existing is not None:
            existing.tokens += tokens
            existing.dirty = existing.dirty or dirty
            bank.touch(existing)
            return True
        entry = CacheBlock(block=block, cls=cls, owner=owner,
                           dirty=dirty, tokens=tokens)
        # The merge probe above already proved no resident shares this
        # (block, class, owner) — install can skip its duplicate scan.
        if self.l2_allocate(bank_id, set_index, entry, cascade, t,
                            dup_checked=True):
            return True
        self.system.send_to_memory(block, tokens, dirty,
                                   self.router_of_bank(bank_id), t)
        return False

    # -- reporting -------------------------------------------------------------------

    def describe(self) -> str:
        return self.name
