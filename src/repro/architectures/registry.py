"""Name → architecture factory, covering every configuration the
evaluation uses (Section 6.1 plus the Figure 4/5 SP/ESP variants)."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.architectures.base import NucaArchitecture
from repro.common.config import SystemConfig


def _factories() -> Dict[str, Callable[[SystemConfig], NucaArchitecture]]:
    from repro.architectures.asr import AdaptiveSelectiveReplication
    from repro.architectures.cc import CooperativeCaching
    from repro.architectures.dnuca import DNuca
    from repro.architectures.private import TiledPrivate
    from repro.architectures.shared import SharedNuca
    from repro.architectures.rnuca import RNucaLite
    from repro.architectures.victim_replication import VictimReplication
    from repro.core.esp_nuca import EspNuca
    from repro.core.qos import QosEspNuca
    from repro.core.sp_nuca import SpNuca

    return {
        "shared": SharedNuca,
        "victim-replication": VictimReplication,
        "r-nuca": RNucaLite,
        "esp-nuca-qos": QosEspNuca,
        "private": TiledPrivate,
        "d-nuca": DNuca,
        "asr": AdaptiveSelectiveReplication,
        "cc00": lambda cfg: CooperativeCaching(cfg, cooperation=0.0),
        "cc30": lambda cfg: CooperativeCaching(cfg, cooperation=0.3),
        "cc70": lambda cfg: CooperativeCaching(cfg, cooperation=0.7),
        "cc100": lambda cfg: CooperativeCaching(cfg, cooperation=1.0),
        "sp-nuca": SpNuca,
        "sp-nuca-static": lambda cfg: SpNuca(cfg, partitioning="static"),
        "sp-nuca-shadow": lambda cfg: SpNuca(cfg, partitioning="shadow"),
        "esp-nuca": EspNuca,
        "esp-nuca-flat": lambda cfg: EspNuca(cfg, variant="flat"),
    }


#: The six architecture families of Figures 6-10 (CC shown as its four
#: cooperation probabilities, aggregated by the harness).
FIGURE_ARCHITECTURES: List[str] = [
    "shared", "private", "d-nuca", "asr",
    "cc00", "cc30", "cc70", "cc100", "esp-nuca",
]

CC_VARIANTS: List[str] = ["cc00", "cc30", "cc70", "cc100"]


def architecture_names() -> List[str]:
    return list(_factories())


def make_architecture(name: str, config: SystemConfig) -> NucaArchitecture:
    try:
        factory = _factories()[name]
    except KeyError:
        known = ", ".join(sorted(_factories()))
        raise KeyError(f"unknown architecture {name!r}; known: {known}") from None
    return factory(config)
