"""Tiled private L2 — the paper's "Private" counterpart (Section 6.1).

Each core treats its four nearest banks as a fully private L2 under the
private interpretation of Figure 1b, with unrestricted replication:
every L1 writeback allocates in the local partition. Low on-chip
latency and full isolation, but shared data is replicated (capacity
loss) and an idle core's partition helps nobody.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.architectures.base import NucaArchitecture
from repro.cache.block import BlockClass
from repro.cache.l1 import L1Line
from repro.sim.request import Supplier


class TiledPrivate(NucaArchitecture):
    name = "private"

    def handle_miss(self, core: int, block: int, is_write: bool, t: int
                    ) -> Tuple[int, Supplier]:
        bank_id = self.amap.private_bank(block, core)
        index = self.amap.private_index(block)
        core_router = self.router_of_core(core)  # == the bank's router
        entry = self.banks[bank_id].lookup(index, block, owner=core)
        if entry is not None:
            self._on_local_hit(core, entry)
            t2 = self.bank_service(bank_id, t, hit=True)
            tokens, dirty, _ = self.take_from_l2_entry(
                block, bank_id, index, entry, want_all=True)
            if is_write and tokens < self.ledger.total_tokens:
                t_coll, extra, _ = self.collect_for_write(core, block,
                                                          core_router, t2)
                tokens += extra
                t2 = max(t2, t_coll)
            self.system.l1_fill(core, block, tokens, dirty or is_write, t2)
            return t2, Supplier.L2_LOCAL
        t2 = self.bank_service(bank_id, t, hit=False)
        if is_write and self.ledger.on_chip(block):
            source = self._nearest_source(core, block)
            t_done, tokens, _ = self.collect_for_write(core, block,
                                                       core_router, t2)
            self.system.l1_fill(core, block, tokens, True, t_done)
            supplier = (Supplier.L1_REMOTE if source and source[0] == "l1"
                        else Supplier.L2_REMOTE)
            return t_done, supplier
        source = self._nearest_source(core, block)
        if source is not None:
            kind, obj = source
            if kind == "l1":
                tokens, dirty = self.take_read_from_l1(block, obj)
                t_done = self.supply_from_l1(core, obj, core_router, t2)
                self.system.l1_fill(core, block, tokens, dirty, t_done)
                return t_done, Supplier.L1_REMOTE
            holding = obj
            remote_router = self.router_of_bank(holding.bank_id)
            t3 = self.req(core_router, remote_router, t2)
            t4 = self.bank_service(holding.bank_id, t3, hit=True)
            tokens, dirty, _ = self.take_from_l2_entry(
                block, holding.bank_id, holding.set_index, holding.entry,
                want_all=False, exclusive_if_sole=False)
            t_done = self.data(remote_router, core_router, t4)
            self.system.l1_fill(core, block, tokens, dirty, t_done)
            return t_done, Supplier.L2_REMOTE
        t_done = self.fetch_offchip(core_router, t2, core_router)
        tokens = self.ledger.take_from_memory(block)
        assert tokens > 0
        self.system.l1_fill(core, block, tokens, is_write, t_done)
        return t_done, Supplier.OFFCHIP

    def _on_local_hit(self, core: int, entry) -> None:
        """Hook for subclasses (ASR counts replica hits here)."""

    def _nearest_source(self, core: int, block: int
                        ) -> Optional[Tuple[str, object]]:
        state = self.ledger.state(block)
        core_router = self.router_of_core(core)
        best: Optional[Tuple[int, str, object]] = None
        for holder in state.l1:
            if holder == core:
                continue
            hops = self.topology.hops(core_router, self.router_of_core(holder))
            if best is None or hops < best[0]:
                best = (hops, "l1", holder)
        for holding in state.l2.values():
            hops = self.topology.hops(core_router,
                                      self.router_of_bank(holding.bank_id))
            if best is None or hops < best[0]:
                best = (hops, "l2", holding)
        if best is None:
            return None
        return best[1], best[2]

    def route_l1_eviction(self, core: int, line: L1Line, t: int = 0) -> None:
        block = line.block
        tokens = self.ledger.take_from_l1(block, core)
        self.merge_or_allocate(self.amap.private_bank(block, core),
                               self.amap.private_index(block),
                               block, BlockClass.PRIVATE, core,
                               tokens, line.dirty, t=t)
