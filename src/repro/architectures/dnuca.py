"""Dynamically-mapped NUCA (D-NUCA, Kim et al. [13]) — Section 6.1.

The implementation follows the variant the paper compares against
(Beckmann & Wood's CMP D-NUCA [4] "which assumes an idealized
perfect-search and uses replication"):

* the 32 banks form ``banks_per_router`` **banksets**; a block's
  address picks its bankset, and the block may reside in that bankset's
  bank of *any* cluster;
* **perfect search**: a request goes straight to the bank currently
  holding the block (no multicast probes are charged — idealized, as in
  the paper);
* **gradual migration**: a hit by a core in another cluster pulls a
  sole copy one cluster-step toward the requester (swapping with the
  victim way of the target bank);
* **replication**: a remote hit on a multi-reader copy (spare tokens)
  leaves a one-token replica in the requester's own cluster instead of
  migrating — this is where D-NUCA buys its on-chip locality and pays
  with the higher L2 miss rate the paper reports.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.architectures.base import NucaArchitecture
from repro.cache.block import BlockClass, CacheBlock
from repro.cache.l1 import L1Line
from repro.coherence.tokens import L2Holding
from repro.sim.request import Supplier


class DNuca(NucaArchitecture):
    name = "d-nuca"

    def bind(self, system) -> None:
        super().bind(system)
        self._bankset_mask = self.config.noc.banks_per_router - 1
        self._bankset_bits = self._bankset_mask.bit_length()
        self._index_mask = self.config.l2.sets_per_bank - 1
        self.migrations = 0
        self.replications = 0

    # -- bankset geometry ---------------------------------------------------------

    def bankset(self, block: int) -> int:
        return block & self._bankset_mask

    def dnuca_index(self, block: int) -> int:
        return (block >> self._bankset_bits) & self._index_mask

    def bank_of(self, block: int, cluster: int) -> int:
        return cluster * self.config.noc.banks_per_router + self.bankset(block)

    # -- miss path -------------------------------------------------------------------

    def handle_miss(self, core: int, block: int, is_write: bool, t: int
                    ) -> Tuple[int, Supplier]:
        index = self.dnuca_index(block)
        core_router = self.router_of_core(core)
        holding = self._nearest_holding(block, core_router)
        if holding is not None:
            # Perfect search: go straight to the holder bank.
            bank_id = holding.bank_id
            bank_router = self.router_of_bank(bank_id)
            t1 = self.req(core_router, bank_router, t)
            # Count the demand lookup in the holder bank's statistics.
            entry = self.banks[bank_id].lookup(index, block)
            assert entry is holding.entry
            t2 = self.bank_service(bank_id, t1, hit=True)
            local = bank_router == core_router
            if is_write:
                tokens, _, _ = self.take_from_l2_entry(block, bank_id, index,
                                                       entry, want_all=True)
                t_coll, extra, _ = self.collect_for_write(core, block,
                                                          bank_router, t2)
                t_done = max(self.data(bank_router, core_router, t2), t_coll)
                self.system.l1_fill(core, block, tokens + extra, True, t_done)
                return t_done, (Supplier.L2_LOCAL if local else Supplier.L2_SHARED)
            t_done = self.data(bank_router, core_router, t2)
            if local:
                # Local hits swallow sole copies (cheap later upgrades).
                tokens, dirty, _ = self.take_from_l2_entry(
                    block, bank_id, index, entry, want_all=False)
                self.system.l1_fill(core, block, tokens, dirty, t_done)
                return t_done, Supplier.L2_LOCAL
            # Remote hit: borrow a token and pull the copy one
            # cluster-step toward the requester (gradual migration);
            # replication happens on the requester's later writeback.
            tokens, dirty, removed = self.take_from_l2_entry(
                block, bank_id, index, entry,
                want_all=False, exclusive_if_sole=False)
            self.system.l1_fill(core, block, tokens, dirty, t_done)
            if not removed:
                self._migrate_toward(block, entry, holding, core_router,
                                     t_done)
            return t_done, Supplier.L2_SHARED
        # Not in L2: remote L1s, then memory. Miss detection is charged
        # at the requester's own cluster bank of the bankset.
        own_bank = self.bank_of(block, core)
        self.banks[own_bank].lookup(index, block)  # records the miss
        t2 = self.bank_service(own_bank, t, hit=False)
        state = self.ledger.state(block)
        holders = [h for h in state.l1 if h != core]
        if holders:
            if is_write:
                t_done, tokens, _ = self.collect_for_write(core, block,
                                                           core_router, t2)
                self.system.l1_fill(core, block, tokens, True, t_done)
                return t_done, Supplier.L1_REMOTE
            holder = min(holders, key=lambda h: self.topology.hops(
                core_router, self.router_of_core(h)))
            tokens, dirty = self.take_read_from_l1(block, holder)
            t_done = self.supply_from_l1(core, holder, core_router, t2)
            self.system.l1_fill(core, block, tokens, dirty, t_done)
            return t_done, Supplier.L1_REMOTE
        t_done = self.fetch_offchip(core_router, t2, core_router)
        tokens = self.ledger.take_from_memory(block)
        assert tokens > 0
        self.system.l1_fill(core, block, tokens, is_write, t_done)
        return t_done, Supplier.OFFCHIP

    # -- movement -----------------------------------------------------------------------

    def _nearest_holding(self, block: int, router: int) -> Optional[L2Holding]:
        holdings = self.ledger.l2_holdings(block)
        if not holdings:
            return None
        if len(holdings) == 1:  # no replica: nothing to rank
            return holdings[0]
        return min(holdings, key=lambda h: self.topology.hops(
            router, self.router_of_bank(h.bank_id)))

    def _migrate_toward(self, block: int, entry: CacheBlock,
                        holding: L2Holding, requester_router: int,
                        t: int = 0) -> None:
        """Move the entry one cluster-step toward the requester,
        swapping with the LRU block of the target set."""
        src_router = self.router_of_bank(holding.bank_id)
        route = self.topology.dor_route(src_router, requester_router)
        if len(route) < 2:
            return
        target_cluster = route[1]
        src_bank, src_index = holding.bank_id, holding.set_index
        dst_bank = self.bank_of(block, target_cluster)
        dst_index = self.dnuca_index(block)
        dst_set = self.banks[dst_bank].sets[dst_index]
        # If the destination already holds a copy, merge instead of
        # moving (the bankset may contain several replicas).
        existing = dst_set.find(block)
        tokens = self.ledger.take_from_l2(block, entry)
        self.banks[src_bank].remove(src_index, entry)
        if existing is not None:
            existing.tokens += tokens
            existing.dirty = existing.dirty or entry.dirty
            self.banks[dst_bank].touch(existing)
            self.migrations += 1
            return
        entry.tokens = tokens
        victim = dst_set.lru_block()
        if victim is not None:
            # Swap: the displaced block takes the vacated way — unless
            # the source set already has a copy of it, which absorbs
            # its tokens instead (no duplicate entries per set).
            vtokens = self.ledger.take_from_l2(victim.block, victim)
            self.banks[dst_bank].remove(dst_index, victim)
            src_copy = self.banks[src_bank].sets[src_index].find(victim.block)
            if src_copy is not None:
                src_copy.tokens += vtokens
                src_copy.dirty = src_copy.dirty or victim.dirty
            else:
                victim.tokens = vtokens
                admitted, evicted = self.banks[src_bank].allocate(src_index,
                                                                  victim)
                assert admitted and evicted is None
                self.ledger.register_l2(victim.block, src_bank, src_index,
                                        victim)
        admitted, evicted = self.banks[dst_bank].allocate(dst_index, entry)
        assert admitted
        if evicted is not None:  # only when the set had a free way race
            etokens = self.ledger.take_from_l2(evicted.block, evicted)
            self.on_l2_eviction(dst_bank, dst_index, evicted, etokens, False,
                                t)
        self.ledger.register_l2(block, dst_bank, dst_index, entry)
        self.migrations += 1

    # -- eviction routing ------------------------------------------------------------------

    def route_l1_eviction(self, core: int, line: L1Line, t: int = 0) -> None:
        """Writebacks land in the evicting core's own cluster bank: a
        same-cluster copy is merged, otherwise a new (replicated) entry
        is created there — unrestricted L2 replication within the
        bankset, the source of D-NUCA's extra capacity pressure."""
        block = line.block
        tokens = self.ledger.take_from_l1(block, core)
        own_bank = self.bank_of(block, core)
        holdings = self.ledger.l2_holdings(block)
        for holding in holdings:
            if holding.bank_id == own_bank:
                holding.entry.tokens += tokens
                holding.entry.dirty = holding.entry.dirty or line.dirty
                self.banks[own_bank].touch(holding.entry)
                return
        if holdings:
            self.replications += 1  # a second bankset copy is born
        self.merge_or_allocate(own_bank, self.dnuca_index(block),
                               block, BlockClass.SHARED, -1,
                               tokens, line.dirty, t=t)
