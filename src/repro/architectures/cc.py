"""Cooperative Caching (CC, Chang & Sohi [5]) — Section 6.1.

Private L2s cooperating through three mechanisms:

* **cache-to-cache sharing** — an L2 miss is served from any on-chip
  copy (the central-directory CCE role is played by the token ledger,
  exactly the knowledge a CCE would have);
* **replication-aware replacement** — a tile prefers evicting blocks
  that have other on-chip copies ("replicated") over sole copies
  ("singlets"), keeping unique on-chip content resident longer;
* **spilling** — an evicted singlet is, with the statically configured
  cooperation probability (the paper evaluates 0%, 30%, 70% and 100%),
  forwarded once to a random peer tile instead of going off chip
  (1-chance forwarding: a spilled block is not re-spilled).

``cooperation=0.0`` degenerates to a private cache with cache-to-cache
sharing — the paper's CC00.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.architectures.private import TiledPrivate
from repro.cache.bank import CacheBank
from repro.cache.block import BlockClass, CacheBlock
from repro.cache.cache_set import CacheSet
from repro.cache.replacement import ReplacementPolicy
from repro.common.config import SystemConfig
from repro.sim.request import Supplier


class ReplicationAwareLru(ReplacementPolicy):
    """LRU that victimizes replicated blocks before singlets.

    The replication status is the *allocation-time hint* recorded in
    ``meta['replicated_hint']`` — the imprecise, lazily updated
    knowledge a real CCE piggybacks on coherence traffic — not the
    ledger's live truth (an oracle version of this policy turns CC
    into a near-perfect global cache, which the real design is not).
    """

    def name(self) -> str:
        return "ReplicationAwareLru"

    @staticmethod
    def _is_replicated(entry: CacheBlock) -> bool:
        return bool(entry.meta.get("replicated_hint"))

    def choose(self, cache_set: CacheSet, incoming: CacheBlock,
               bank: CacheBank, set_index: int) -> Optional[int]:
        free = cache_set.free_way()
        if free is not None:
            return free
        victim = cache_set.lru_block(self._is_replicated)
        if victim is None:
            victim = cache_set.lru_block()
        assert victim is not None
        return cache_set.find_way(victim)


class CooperativeCaching(TiledPrivate):
    def __init__(self, config: SystemConfig, cooperation: float = 0.3) -> None:
        super().__init__(config)
        if not 0.0 <= cooperation <= 1.0:
            raise ValueError("cooperation probability must be in [0, 1]")
        self.cooperation = cooperation
        self.name = f"cc{int(round(cooperation * 100)):02d}"
        coop = self.stats.scope("cooperation")
        self._spills = coop.counter("spills")
        self._spill_hits = coop.counter("spill_hits")

    @property
    def spills(self) -> int:
        return self._spills.value

    @property
    def spill_hits(self) -> int:
        return self._spill_hits.value

    def build_banks(self) -> List[CacheBank]:
        cfg = self.config.l2
        policy = ReplicationAwareLru()
        return [CacheBank(b, cfg.sets_per_bank, cfg.assoc, policy)
                for b in range(cfg.num_banks)]

    def route_l1_eviction(self, core: int, line, t: int = 0) -> None:
        """Like the private base, but stamping the CCE's allocation-time
        replication hint on fresh entries."""
        block = line.block
        state = self.ledger.state(block)
        hint = (any(h != core for h in state.l1) or bool(state.l2))
        super().route_l1_eviction(core, line, t)
        bank_id = self.amap.private_bank(block, core)
        entry = self.banks[bank_id].peek(self.amap.private_index(block),
                                         block, owner=core)
        if entry is not None and "replicated_hint" not in entry.meta:
            entry.meta["replicated_hint"] = hint

    def bind(self, system) -> None:
        super().bind(system)
        self._rng = random.Random(0xCC00 + int(self.cooperation * 100))

    def handle_miss(self, core: int, block: int, is_write: bool, t: int
                    ) -> Tuple[int, "object"]:
        source = self._nearest_source(core, block)
        spilled_source = (source is not None and source[0] == "l2"
                          and source[1].entry.meta.get("spilled"))
        t_done, supplier = super().handle_miss(core, block, is_write, t)
        if spilled_source:
            self._spill_hits.value += 1
        if supplier in (Supplier.L1_REMOTE, Supplier.L2_REMOTE):
            # Cache-to-cache transfers are brokered by the central
            # coherence engine (CCE): charge the directory indirection
            # the paper's CC pays and our perfect-knowledge ledger
            # would otherwise hide.
            t_done += 2 * self.config.noc.hop_latency
        return t_done, supplier

    # -- spilling --------------------------------------------------------------------

    def on_l2_eviction(self, bank_id: int, set_index: int, entry: CacheBlock,
                       tokens: int, cascade: bool, t: int = 0) -> None:
        block = entry.block
        state = self.ledger.state(block)
        singlet = not state.l1 and not state.l2
        if (singlet and not cascade and not entry.meta.get("spilled")
                and self.cooperation > 0.0
                and self._rng.random() < self.cooperation):
            host = self._pick_host(bank_id)
            if host is not None:
                spilled = CacheBlock(block=block, cls=BlockClass.VICTIM,
                                     owner=entry.owner, dirty=entry.dirty,
                                     tokens=tokens)
                spilled.meta["spilled"] = True
                host_bank = self.amap.private_bank(block, host)
                host_index = self.amap.private_index(block)
                if self.l2_allocate(host_bank, host_index, spilled,
                                    cascade=True, t=t):
                    self._spills.value += 1
                    return
        self.system.send_to_memory(block, tokens, entry.dirty,
                                   self.router_of_bank(bank_id), t)

    def _pick_host(self, bank_id: int) -> Optional[int]:
        evictor = self.amap.owner_of_bank(bank_id)
        others = [c for c in range(self.config.num_cores) if c != evictor]
        return self._rng.choice(others) if others else None
