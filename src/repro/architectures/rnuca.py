"""R-NUCA-lite (Hardavellas et al. [9]) — page-grained classification.

Section 6.1: "Reactive-NUCA is similar to our proposal, but it makes
coarser-grain decisions (page-based) and requires modifications to the
OS. ... R-NUCA seems to perform similarly to a shared NUCA, only
winning in one benchmark." This baseline exists to let that comparison
be made: it reuses SP-NUCA's entire machinery but classifies at page
granularity (the OS-page role is played by a page-keyed private-bit
directory), with no replicas or victims.

The known approximation: when a page is demoted, blocks of it already
resident in the owner's private banks stay there until touched by
another core (SP-NUCA's 3' path migrates them on demand); a real OS
would re-map the page eagerly.
"""

from __future__ import annotations

from typing import Dict

from repro.common.config import SystemConfig
from repro.core.private_bit import Classification, PrivateBitDirectory
from repro.core.sp_nuca import SpNuca


class PageBitDirectory(PrivateBitDirectory):
    """A private-bit directory keyed by page instead of block.

    Classification queries take *block* addresses (the SP-NUCA code is
    unchanged); internally the state lives per page, with an on-chip
    block refcount so the page's status resets only when its last
    block leaves the chip.
    """

    def __init__(self, page_blocks: int = 64) -> None:
        super().__init__()
        if page_blocks <= 0 or page_blocks & (page_blocks - 1):
            raise ValueError("page size (in blocks) must be a power of two")
        self.page_bits = page_blocks.bit_length() - 1
        self._resident: Dict[int, int] = {}

    def _page(self, block: int) -> int:
        return block >> self.page_bits

    # -- queries (block-keyed API, page-keyed state) ------------------------

    def classify(self, block: int) -> Classification:
        return super().classify(self._page(block))

    def owner(self, block: int):
        return super().owner(self._page(block))

    def note_access(self, block: int, core: int) -> bool:
        return super().note_access(self._page(block), core)

    def force_shared(self, block: int) -> None:
        super().force_shared(self._page(block))

    # -- lifecycle with refcounting -------------------------------------------

    def on_arrival(self, block: int, core: int) -> None:
        page = self._page(block)
        self._resident[page] = self._resident.get(page, 0) + 1
        if super().classify(page) is Classification.ABSENT:
            super().on_arrival(page, core)
        else:
            # A block of a live page arriving for another core is an
            # access by that core: it must demote a private page, just
            # as a demand hit would. (SP-NUCA never needs this — a
            # per-block arrival is by definition unclassified — so the
            # off-chip path only calls on_arrival, and skipping the
            # demotion here left private pages with second-core L1
            # copies; found by the invariant fuzzer.)
            super().note_access(page, core)

    def on_left_chip(self, block: int) -> None:
        page = self._page(block)
        remaining = self._resident.get(page, 0) - 1
        if remaining > 0:
            self._resident[page] = remaining
            return
        self._resident.pop(page, None)
        super().on_left_chip(page)


class RNucaLite(SpNuca):
    name = "r-nuca"

    # The lazy-demotion approximation above: a SHARED page may keep
    # stale PRIVATE entries in the old owner's banks until touched.
    classifier_stale_owned_ok = True

    def __init__(self, config: SystemConfig, page_blocks: int = 64) -> None:
        super().__init__(config, partitioning="lru")
        self.classifier = PageBitDirectory(page_blocks)
