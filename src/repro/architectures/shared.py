"""Static shared NUCA — the paper's "Shared" counterpart (Section 6.1).

Every block has a single home bank determined by its address under the
shared interpretation of Figure 1b; requests go straight there (Figure
2a). Low off-chip miss rate (no replication), but no locality: the home
bank is on average several hops away.
"""

from __future__ import annotations

from typing import Tuple

from repro.architectures.base import NucaArchitecture
from repro.cache.block import BlockClass
from repro.cache.l1 import L1Line
from repro.sim.request import Supplier


class SharedNuca(NucaArchitecture):
    name = "shared"

    def handle_miss(self, core: int, block: int, is_write: bool, t: int
                    ) -> Tuple[int, Supplier]:
        bank_id = self.amap.shared_bank(block)
        index = self.amap.shared_index(block)
        home_router = self.router_of_bank(bank_id)
        core_router = self.router_of_core(core)
        t1 = self.req(core_router, home_router, t)
        entry = self.banks[bank_id].lookup(index, block)
        if entry is not None:
            t2 = self.bank_service(bank_id, t1, hit=True)
            tokens, dirty, _ = self.take_from_l2_entry(
                block, bank_id, index, entry, want_all=is_write)
            t_done = self.data(home_router, core_router, t2)
            if is_write:
                t_coll, extra, _ = self.collect_for_write(core, block,
                                                          home_router, t2)
                tokens += extra
                dirty = True
                t_done = max(t_done, t_coll)
            self.system.l1_fill(core, block, tokens, dirty, t_done)
            supplier = (Supplier.L2_LOCAL if home_router == core_router
                        else Supplier.L2_SHARED)
            return t_done, supplier
        t2 = self.bank_service(bank_id, t1, hit=False)
        state = self.ledger.state(block)
        holders = [h for h in state.l1 if h != core]
        if holders:
            if is_write:
                t_done, tokens, _ = self.collect_for_write(core, block,
                                                           home_router, t2)
                self.system.l1_fill(core, block, tokens, True, t_done)
                return t_done, Supplier.L1_REMOTE
            holder = min(holders, key=lambda h: self.topology.hops(
                home_router, self.router_of_core(h)))
            tokens, dirty = self.take_read_from_l1(block, holder)
            t_done = self.supply_from_l1(core, holder, home_router, t2)
            self.system.l1_fill(core, block, tokens, dirty, t_done)
            return t_done, Supplier.L1_REMOTE
        holdings = self.ledger.l2_holdings(block)
        if holdings:
            # Possible only in subclasses that keep extra L2 copies
            # (e.g. Victim Replication's local replicas): the home bank
            # forwards to the copy's bank.
            holding = min(holdings, key=lambda h: self.topology.hops(
                home_router, self.router_of_bank(h.bank_id)))
            remote_router = self.router_of_bank(holding.bank_id)
            t3 = self.req(home_router, remote_router, t2)
            t4 = self.bank_service(holding.bank_id, t3, hit=True)
            tokens, dirty, _ = self.take_from_l2_entry(
                block, holding.bank_id, holding.set_index, holding.entry,
                want_all=is_write, exclusive_if_sole=False)
            if is_write:
                t_coll, extra, _ = self.collect_for_write(core, block,
                                                          home_router, t4)
                tokens += extra
                dirty = True
                t4 = max(t4, t_coll)
            t_done = self.data(remote_router, core_router, t4)
            self.system.l1_fill(core, block, tokens, dirty, t_done)
            return t_done, Supplier.L2_REMOTE
        # Off chip: the home bank dispatches to its nearest controller.
        t_done = self.fetch_offchip(home_router, t2, core_router)
        tokens = self.ledger.take_from_memory(block)
        assert tokens > 0, "no on-chip copy implies memory holds tokens"
        self.system.l1_fill(core, block, tokens, is_write, t_done)
        return t_done, Supplier.OFFCHIP

    def route_l1_eviction(self, core: int, line: L1Line, t: int = 0) -> None:
        block = line.block
        tokens = self.ledger.take_from_l1(block, core)
        self.merge_or_allocate(self.amap.shared_bank(block),
                               self.amap.shared_index(block),
                               block, BlockClass.SHARED, -1,
                               tokens, line.dirty, t=t)
