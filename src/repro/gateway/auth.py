"""Gateway authentication and admission-control primitives.

API keys are bearer tokens: generated once (``esp-nuca gateway
add-tenant``), stored only as a sha256 hex digest, presented as
``Authorization: Bearer <key>``. Hashing is deliberately plain sha256
rather than a password KDF — keys are 256-bit random strings, not
human-chosen secrets, so brute force against the digest is already
infeasible and the lookup must stay cheap (it runs on every request).

Rate limiting is a token bucket per tenant: ``capacity`` burst tokens
refilled at ``refill`` tokens/second. Like the scheduler's
all-or-nothing queue admission, a request either takes a whole token or
is rejected with a typed 429 carrying ``Retry-After`` — there is no
partial service and no unbounded waiting queue in front of the
gateway.
"""

from __future__ import annotations

import hashlib
import re
import secrets
import time
from typing import Callable, Tuple

#: Tenant names become statistics scope names (``gateway.tenants.<name>``)
#: and appear in URLs and logs — so: lowercase, no dots, bounded length.
TENANT_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9_-]{0,31}$")

KEY_PREFIX = "esp_"


def validate_tenant(name: str) -> str:
    """The tenant-name contract (raises ``ValueError``)."""
    if not isinstance(name, str) or not TENANT_NAME_RE.match(name):
        raise ValueError(
            f"invalid tenant name {name!r}: must match "
            f"{TENANT_NAME_RE.pattern} (lowercase alphanumeric plus '-'/'_', "
            f"max 32 chars — it becomes a stats scope name)")
    return name


def generate_key() -> str:
    """A fresh API key: 256 bits of urlsafe randomness, prefixed so keys
    are recognizable in configs and never collide with user data."""
    return KEY_PREFIX + secrets.token_urlsafe(32)


def hash_key(key: str) -> str:
    """Stored/lookup form of an API key."""
    return hashlib.sha256(key.encode("utf-8")).hexdigest()


class TokenBucket:
    """Classic token bucket with an injectable clock (deterministic in
    tests: pass a fake ``clock`` and advance it by hand)."""

    def __init__(self, capacity: float, refill: float,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if capacity < 1 or refill <= 0:
            raise ValueError(f"need capacity >= 1 and refill > 0, got "
                             f"capacity={capacity} refill={refill}")
        self.capacity = float(capacity)
        self.refill = float(refill)
        self._clock = clock
        self._tokens = float(capacity)
        self._last = clock()

    def _advance(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._last)
        self._last = now
        self._tokens = min(self.capacity, self._tokens + elapsed * self.refill)

    def take(self) -> Tuple[bool, float]:
        """Try to take one token. Returns ``(True, 0.0)`` on success or
        ``(False, retry_after_seconds)`` when the bucket is empty."""
        self._advance()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True, 0.0
        return False, (1.0 - self._tokens) / self.refill

    @property
    def tokens(self) -> float:
        self._advance()
        return self._tokens
