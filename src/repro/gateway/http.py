"""Minimal asyncio HTTP/1.1 server plumbing for the gateway.

Stdlib only, same as the rest of the service stack — ``http.server`` is
synchronous and thread-per-request, which cannot share an event loop
with the :class:`~repro.service.core.ServiceCore` dispatchers, so the
gateway parses HTTP itself. Deliberately small: request-line + headers
+ ``Content-Length`` bodies, keep-alive, JSON responses, and chunked
transfer encoding for Server-Sent Events. No TLS (deploy behind a
terminating proxy), no multipart, no compression.

Hardening mirrors the JSON-lines protocol's: every limit is explicit
and every violation is a *typed* error response, never a hung
connection or an exception escaping to the accept loop —

* request line longer than :data:`MAX_REQUEST_LINE` → ``431``;
* more than :data:`MAX_HEADERS` headers or one longer than
  :data:`MAX_HEADER_LINE` → ``431``;
* body larger than :data:`MAX_BODY_BYTES` (or chunked upload, which the
  gateway does not accept) → ``413``;
* anything unparseable → ``400`` with a machine-readable ``code``.

Error bodies are always ``{"error": {"code", "message"}}`` — the HTTP
rendering of the daemon's typed reject contract.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

MAX_REQUEST_LINE = 8192
MAX_HEADER_LINE = 8192
MAX_HEADERS = 64
MAX_BODY_BYTES = 1024 * 1024  # requests are small grids, not uploads

REASONS = {
    200: "OK", 201: "Created", 204: "No Content",
    400: "Bad Request", 401: "Unauthorized", 403: "Forbidden",
    404: "Not Found", 405: "Method Not Allowed", 409: "Conflict",
    413: "Content Too Large", 429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class HttpError(Exception):
    """A typed HTTP rejection; handlers raise it, the connection loop
    renders it. ``close=True`` additionally forces connection close
    (mandatory when the parser cannot resync, e.g. after 431/413)."""

    def __init__(self, status: int, code: str, message: str, *,
                 headers: Optional[Dict[str, str]] = None,
                 close: bool = False) -> None:
        super().__init__(f"{status} [{code}] {message}")
        self.status = status
        self.code = code
        self.message = message
        self.headers = headers or {}
        self.close = close


class Request:
    """One parsed request. ``path`` is the decoded path, ``query`` the
    parsed query string, ``headers`` lower-cased."""

    __slots__ = ("method", "path", "query", "headers", "body")

    def __init__(self, method: str, path: str, query: Dict[str, str],
                 headers: Dict[str, str], body: bytes) -> None:
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body

    def json(self) -> Dict[str, Any]:
        """The JSON object body (raises :class:`HttpError` 400 on
        malformed JSON or a non-object)."""
        if not self.body:
            return {}
        try:
            obj = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise HttpError(400, "bad-json",
                            f"request body is not valid JSON: {exc}")
        if not isinstance(obj, dict):
            raise HttpError(400, "bad-json",
                            "request body must be a JSON object")
        return obj

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


async def _read_line(reader: asyncio.StreamReader, limit: int,
                     what: str) -> bytes:
    """One CRLF-terminated line with an explicit length cap, mapped to
    431 on violation (the stream's own limit is set higher so we
    control the error, not the StreamReader)."""
    try:
        line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError):
        raise HttpError(431, "line-too-long",
                        f"{what} exceeds the stream limit", close=True)
    if len(line) > limit:
        raise HttpError(431, "line-too-long",
                        f"{what} longer than {limit} bytes", close=True)
    return line


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request; ``None`` on clean EOF between requests.
    Raises :class:`HttpError` on any protocol violation."""
    line = await _read_line(reader, MAX_REQUEST_LINE, "request line")
    if not line:
        return None
    try:
        text = line.decode("ascii").rstrip("\r\n")
        method, target, version = text.split(" ", 2)
    except (UnicodeDecodeError, ValueError):
        raise HttpError(400, "bad-request-line",
                        "malformed HTTP request line", close=True)
    if not version.startswith("HTTP/1."):
        raise HttpError(400, "bad-request-line",
                        f"unsupported protocol {version!r}", close=True)
    headers: Dict[str, str] = {}
    while True:
        raw = await _read_line(reader, MAX_HEADER_LINE, "header line")
        if raw in (b"\r\n", b"\n"):
            break
        if not raw:
            raise HttpError(400, "truncated-headers",
                            "connection closed inside headers", close=True)
        if len(headers) >= MAX_HEADERS:
            raise HttpError(431, "too-many-headers",
                            f"more than {MAX_HEADERS} headers", close=True)
        try:
            name, _, value = raw.decode("latin-1").partition(":")
        except UnicodeDecodeError:
            raise HttpError(400, "bad-header", "undecodable header",
                            close=True)
        if not _ or not name.strip():
            raise HttpError(400, "bad-header",
                            f"malformed header line {raw[:64]!r}", close=True)
        headers[name.strip().lower()] = value.strip()

    if headers.get("transfer-encoding"):
        raise HttpError(413, "chunked-upload",
                        "chunked request bodies are not accepted "
                        "(send Content-Length)", close=True)
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "bad-header",
                            "Content-Length is not an integer", close=True)
        if length < 0:
            raise HttpError(400, "bad-header",
                            "negative Content-Length", close=True)
        if length > MAX_BODY_BYTES:
            raise HttpError(413, "body-too-large",
                            f"request body {length} bytes exceeds the "
                            f"{MAX_BODY_BYTES}-byte limit", close=True)
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise HttpError(400, "truncated-body",
                                "connection closed mid-body", close=True)

    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    return Request(method.upper(), split.path or "/", query, headers, body)


def _head(status: int, headers: Dict[str, str]) -> bytes:
    reason = REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    lines += [f"{name}: {value}" for name, value in headers.items()]
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def send_json(writer: asyncio.StreamWriter, status: int, obj: Any, *,
                    keep_alive: bool = True,
                    headers: Optional[Dict[str, str]] = None) -> None:
    """One complete JSON response (the non-streaming reply path)."""
    body = json.dumps(obj, sort_keys=True).encode("utf-8") + b"\n"
    head = {
        "Content-Type": "application/json",
        "Content-Length": str(len(body)),
        "Connection": "keep-alive" if keep_alive else "close",
    }
    if headers:
        head.update(headers)
    writer.write(_head(status, head) + body)
    await writer.drain()


async def send_text(writer: asyncio.StreamWriter, status: int, text: str, *,
                    content_type: str = "text/plain; charset=utf-8",
                    keep_alive: bool = True,
                    headers: Optional[Dict[str, str]] = None) -> None:
    """One complete plain-text response (the /metrics exposition path)."""
    body = text.encode("utf-8")
    head = {
        "Content-Type": content_type,
        "Content-Length": str(len(body)),
        "Connection": "keep-alive" if keep_alive else "close",
    }
    if headers:
        head.update(headers)
    writer.write(_head(status, head) + body)
    await writer.drain()


async def send_error(writer: asyncio.StreamWriter, exc: HttpError, *,
                     keep_alive: bool = True) -> None:
    await send_json(writer, exc.status,
                    {"error": {"code": exc.code, "message": exc.message}},
                    keep_alive=keep_alive and not exc.close,
                    headers=exc.headers)


class SseStream:
    """A Server-Sent-Events response over chunked transfer encoding.

    ::

        sse = SseStream(writer)
        await sse.start()
        await sse.send({"event": "progress", ...})
        await sse.end()

    Each :meth:`send` emits one ``data: <json>\\n\\n`` frame as one HTTP
    chunk, flushed immediately — curl and EventSource render events as
    they happen. The stream always closes the connection (a terminated
    chunked response could keep-alive, but progress watchers are
    one-shot by nature and closing is the robust choice).
    """

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self._writer = writer

    async def start(self) -> None:
        self._writer.write(_head(200, {
            "Content-Type": "text/event-stream",
            "Cache-Control": "no-store",
            "Transfer-Encoding": "chunked",
            "Connection": "close",
        }))
        await self._writer.drain()

    async def send(self, obj: Any) -> None:
        frame = (b"data: " + json.dumps(obj, sort_keys=True).encode("utf-8")
                 + b"\n\n")
        self._writer.write(f"{len(frame):x}\r\n".encode("ascii") + frame
                           + b"\r\n")
        await self._writer.drain()

    async def end(self) -> None:
        self._writer.write(b"0\r\n\r\n")
        await self._writer.drain()
