"""The gateway's OpenAPI 3.0 document, served at ``GET /openapi.json``.

Hand-maintained alongside the routes in :mod:`repro.gateway.app` (the
route table is small enough that a generator would be more code than
the document); ``tests/test_gateway.py`` asserts the two stay in sync —
every route the app dispatches appears here and vice versa.
"""

from __future__ import annotations

from typing import Any, Dict

_ERROR = {"type": "object", "properties": {
    "error": {"type": "object", "properties": {
        "code": {"type": "string"},
        "message": {"type": "string"}}}}}

_JOB = {"type": "object", "properties": {
    "job": {"type": "string", "description": "public job id (g<n>)"},
    "state": {"type": "string",
              "enum": ["queued", "running", "done", "failed", "cancelled"]},
    "unique_points": {"type": "integer"},
    "counts": {"type": "object", "additionalProperties":
               {"type": "integer"}},
}}

_SUBMIT = {"type": "object",
           "required": ["architectures", "workloads"],
           "properties": {
               "architectures": {"type": "array",
                                 "items": {"type": "string"}},
               "workloads": {"type": "array", "items": {"type": "string"}},
               "seeds": {"type": "array", "items": {"type": "integer"}},
               "settings": {"type": "object", "properties": {
                   "refs_per_core": {"type": "integer"},
                   "warmup_refs_per_core": {"type": "integer"},
                   "capacity_factor": {"type": "integer"},
                   "num_seeds": {"type": "integer"},
                   "base_seed": {"type": "integer"},
                   "engine": {"type": "string"}}},
               "priority": {"type": "integer"},
               "check": {"type": "integer"},
           }}


def _op(summary: str, responses: Dict[str, Any], *,
        body: Any = None, security: bool = True) -> Dict[str, Any]:
    op: Dict[str, Any] = {"summary": summary, "responses": responses}
    if body is not None:
        op["requestBody"] = {"required": True, "content": {
            "application/json": {"schema": body}}}
    if security:
        op["security"] = [{"bearerKey": []}]
    return op


def _json_resp(description: str, schema: Any = None) -> Dict[str, Any]:
    resp: Dict[str, Any] = {"description": description}
    if schema is not None:
        resp["content"] = {"application/json": {"schema": schema}}
    return resp


def spec() -> Dict[str, Any]:
    """The complete document (a fresh dict each call — callers may
    mutate)."""
    err = _json_resp("typed error", _ERROR)
    return {
        "openapi": "3.0.3",
        "info": {
            "title": "esp-nuca simulation gateway",
            "description":
                "Durable, multi-tenant HTTP front end over the ESP-NUCA "
                "simulation service core. Jobs survive restarts (SQLite "
                "job store), results are keyed by run-point content hash "
                "and byte-identical to direct harness runs. Authenticate "
                "with `Authorization: Bearer <api-key>` (see docs/"
                "gateway.md); quota and rate-limit rejects are typed "
                "429s, queue saturation a typed 503.",
            "version": "1",
        },
        "components": {"securitySchemes": {
            "bearerKey": {"type": "http", "scheme": "bearer"}}},
        "paths": {
            "/healthz": {"get": _op(
                "liveness probe (no auth)",
                {"200": _json_resp("gateway is serving")},
                security=False)},
            "/openapi.json": {"get": _op(
                "this document (no auth)",
                {"200": _json_resp("OpenAPI 3.0 spec")}, security=False)},
            "/v1/status": {"get": _op(
                "server status: queue, workers, cache, per-tenant stats",
                {"200": _json_resp("status snapshot"), "401": err})},
            "/v1/jobs": {
                "post": _op(
                    "submit a simulation grid",
                    {"201": _json_resp("admitted job snapshot", _JOB),
                     "400": err, "401": err, "403": err,
                     "429": _json_resp(
                         "quota or rate-limit reject (Retry-After set "
                         "for rate limits)", _ERROR),
                     "503": _json_resp("queue full or draining", _ERROR)},
                    body=_SUBMIT),
                "get": _op(
                    "list this tenant's jobs (newest first)",
                    {"200": _json_resp("job summaries"), "401": err}),
            },
            "/v1/jobs/{id}": {
                "get": _op(
                    "job snapshot (live or recovered-from-store)",
                    {"200": _json_resp("job snapshot", _JOB), "401": err,
                     "404": err}),
                "delete": _op(
                    "cancel a job (queued points only; running points "
                    "finish)",
                    {"200": _json_resp("post-cancel snapshot", _JOB),
                     "401": err, "404": err}),
            },
            "/v1/jobs/{id}/results": {"get": _op(
                "full result payloads, grid order",
                {"200": _json_resp("list of SimResult payloads"),
                 "401": err, "404": err,
                 "409": _json_resp("job not finished yet", _ERROR)})},
            "/v1/jobs/{id}/events": {"get": _op(
                "Server-Sent-Events progress stream until terminal",
                {"200": {"description":
                         "text/event-stream of snapshot frames; the "
                         "final frame has event=end"},
                 "401": err, "404": err})},
        },
    }
