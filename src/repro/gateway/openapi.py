"""The gateway's OpenAPI 3.0 document, served at ``GET /openapi.json``.

Hand-maintained alongside the routes in :mod:`repro.gateway.app` (the
route table is small enough that a generator would be more code than
the document); ``tests/test_gateway.py`` asserts the two stay in sync —
every route the app dispatches appears here and vice versa.
"""

from __future__ import annotations

from typing import Any, Dict

_ERROR = {"type": "object", "properties": {
    "error": {"type": "object", "properties": {
        "code": {"type": "string"},
        "message": {"type": "string"}}}}}

_JOB = {"type": "object", "properties": {
    "job": {"type": "string", "description": "public job id (g<n>)"},
    "state": {"type": "string",
              "enum": ["queued", "running", "done", "failed", "cancelled"]},
    "unique_points": {"type": "integer"},
    "counts": {"type": "object", "additionalProperties":
               {"type": "integer"}},
}}

_SUBMIT = {"type": "object",
           "required": ["architectures", "workloads"],
           "properties": {
               "architectures": {"type": "array",
                                 "items": {"type": "string"}},
               "workloads": {"type": "array", "items": {"type": "string"}},
               "seeds": {"type": "array", "items": {"type": "integer"}},
               "settings": {"type": "object", "properties": {
                   "refs_per_core": {"type": "integer"},
                   "warmup_refs_per_core": {"type": "integer"},
                   "capacity_factor": {"type": "integer"},
                   "num_seeds": {"type": "integer"},
                   "base_seed": {"type": "integer"},
                   "engine": {"type": "string"}}},
               "priority": {"type": "integer"},
               "check": {"type": "integer"},
           }}


#: The /metrics exposition contract (docs/observability.md, "Live
#: telemetry" has the narrative catalog). Documented here so the spec
#: is the machine-readable source of truth for metric names and labels.
_METRICS_DOC = (
    "Prometheus text exposition format (version 0.0.4). All metrics "
    "carry the `espnuca_` prefix. Registry-bridged families: "
    "`espnuca_gateway_http_requests_total`, "
    "`espnuca_gateway_admits_total`, `espnuca_gateway_recovered_total`, "
    "`espnuca_gateway_results_persisted_total`, "
    "`espnuca_gateway_rejects_total{reason}` (reason in auth, "
    "bad_request, quota_jobs, quota_points, rate_limited, queue_full, "
    "draining, not_found), "
    "`espnuca_gateway_tenants_{requests,admits,rejects,rate_hits,"
    "recovered}_total{tenant}`, "
    "`espnuca_gateway_routes_{requests,errors,aborted}_total{route}` "
    "and the per-route latency histogram "
    "`espnuca_gateway_routes_latency_us{route}` (power-of-two `le` "
    "bounds, exact `_sum`/`_count`). Runtime collectors: queue "
    "(`espnuca_queue_{backlog,inflight,limit}`, "
    "`espnuca_dispatchers{,_busy}`, `espnuca_points_{requested,cached,"
    "coalesced,enqueued}_total`), fabric (`espnuca_fabric_{running,"
    "workers,busy}`, `espnuca_fabric_{dispatched,completed,requeued,"
    "crashed}_total`, `espnuca_fabric_heartbeat_age_seconds{pid}`, "
    "`espnuca_fabric_heartbeat_age_max_seconds`, "
    "`espnuca_executed_points_total`), run cache "
    "(`espnuca_cache_{hits,misses,writes}_total`, "
    "`espnuca_cache_hit_ratio`, `espnuca_cache_{entries,bytes}`), "
    "store (`espnuca_store_jobs{state}`, `espnuca_store_results`) and "
    "health (`espnuca_ready`, `espnuca_ready_check{check}`, "
    "`espnuca_draining`, `espnuca_recovering`).")


def _op(summary: str, responses: Dict[str, Any], *,
        body: Any = None, security: bool = True) -> Dict[str, Any]:
    op: Dict[str, Any] = {"summary": summary, "responses": responses}
    if body is not None:
        op["requestBody"] = {"required": True, "content": {
            "application/json": {"schema": body}}}
    if security:
        op["security"] = [{"bearerKey": []}]
    return op


def _json_resp(description: str, schema: Any = None) -> Dict[str, Any]:
    resp: Dict[str, Any] = {"description": description}
    if schema is not None:
        resp["content"] = {"application/json": {"schema": schema}}
    return resp


def spec() -> Dict[str, Any]:
    """The complete document (a fresh dict each call — callers may
    mutate)."""
    err = _json_resp("typed error", _ERROR)
    return {
        "openapi": "3.0.3",
        "info": {
            "title": "esp-nuca simulation gateway",
            "description":
                "Durable, multi-tenant HTTP front end over the ESP-NUCA "
                "simulation service core. Jobs survive restarts (SQLite "
                "job store), results are keyed by run-point content hash "
                "and byte-identical to direct harness runs. Authenticate "
                "with `Authorization: Bearer <api-key>` (see docs/"
                "gateway.md); quota and rate-limit rejects are typed "
                "429s, queue saturation a typed 503.",
            "version": "1",
        },
        "components": {"securitySchemes": {
            "bearerKey": {"type": "http", "scheme": "bearer"}}},
        "paths": {
            "/healthz": {"get": _op(
                "liveness probe (no auth)",
                {"200": _json_resp("gateway is serving")},
                security=False)},
            "/readyz": {"get": _op(
                "readiness probe (no auth): store migrated + fabric "
                "started + queue accepting; false during drain",
                {"200": _json_resp(
                    "ready — body {ready: true, checks: {...}}"),
                 "503": _json_resp(
                     "not ready — body {ready: false, checks: {...}} "
                     "with the failing checks false")},
                security=False)},
            "/metrics": {"get": _op(
                "Prometheus metrics (no auth): queue, fabric, run "
                "cache, store, health and per-tenant/per-route scopes",
                {"200": {"description": _METRICS_DOC}},
                security=False)},
            "/openapi.json": {"get": _op(
                "this document (no auth)",
                {"200": _json_resp("OpenAPI 3.0 spec")}, security=False)},
            "/v1/status": {"get": _op(
                "server status: queue, workers, cache, per-tenant stats",
                {"200": _json_resp("status snapshot"), "401": err})},
            "/v1/jobs": {
                "post": _op(
                    "submit a simulation grid",
                    {"201": _json_resp("admitted job snapshot", _JOB),
                     "400": err, "401": err, "403": err,
                     "429": _json_resp(
                         "quota or rate-limit reject (Retry-After set "
                         "for rate limits)", _ERROR),
                     "503": _json_resp("queue full or draining", _ERROR)},
                    body=_SUBMIT),
                "get": _op(
                    "list this tenant's jobs (newest first)",
                    {"200": _json_resp("job summaries"), "401": err}),
            },
            "/v1/jobs/{id}": {
                "get": _op(
                    "job snapshot (live or recovered-from-store)",
                    {"200": _json_resp("job snapshot", _JOB), "401": err,
                     "404": err}),
                "delete": _op(
                    "cancel a job (queued points only; running points "
                    "finish)",
                    {"200": _json_resp("post-cancel snapshot", _JOB),
                     "401": err, "404": err}),
            },
            "/v1/jobs/{id}/results": {"get": _op(
                "full result payloads, grid order",
                {"200": _json_resp("list of SimResult payloads"),
                 "401": err, "404": err,
                 "409": _json_resp("job not finished yet", _ERROR)})},
            "/v1/jobs/{id}/events": {"get": _op(
                "Server-Sent-Events progress stream until terminal",
                {"200": {"description":
                         "text/event-stream of snapshot frames; the "
                         "final frame has event=end"},
                 "401": err, "404": err})},
        },
    }
