"""The HTTP gateway: durable, multi-tenant front end over the core.

``esp-nuca gateway serve`` runs one :class:`Gateway`: the shared
:class:`~repro.service.core.ServiceCore` (same scheduler, coalescing,
cache fast path and worker fabric as the JSON-lines daemon) plus three
things the daemon does not have —

* **durability**: every admitted job is written to the
  :class:`~repro.gateway.store.JobStore` before the client hears
  "admitted"; results are persisted by content hash as jobs finish. On
  startup :meth:`Gateway._recover` re-expands every stored
  ``queued``/``running`` job through the exact same
  ``grid_points`` path and re-admits it — points that already ran
  resolve instantly from the run cache, so a SIGKILL'd gateway's
  backlog completes after restart with byte-identical results;
* **identity**: ``Authorization: Bearer <api-key>`` resolves to a
  tenant (sha256 lookup, :mod:`repro.gateway.auth`); every job is owned,
  listings and access are tenant-scoped (cross-tenant access is an
  indistinguishable 404), and per-tenant ``gateway.tenants.<name>``
  stats scopes count admits/rejects/rate hits;
* **admission control**: a per-tenant token bucket rate-limits
  submissions (typed 429 + ``Retry-After``), and per-tenant
  concurrent-job / queue-depth quotas bound what any one tenant can
  occupy (typed 429) — all before the core's own all-or-nothing
  queue admission (typed 503 when the shared queue itself is full).

Request→response behavior is defined by ``GET /openapi.json``
(:mod:`repro.gateway.openapi`); docs/gateway.md is the narrative
version.
"""

from __future__ import annotations

import asyncio
import json
import math
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.common.statsreg import StatsRegistry
from repro.gateway import http
from repro.gateway.auth import TokenBucket
from repro.gateway.openapi import spec as openapi_spec
from repro.gateway.store import STORED_TERMINAL, JobStore
from repro.harness.executor import Executor
from repro.harness.runner import RunSettings
from repro.obs import metrics as obsmetrics
from repro.obs.logging import get_logger, log_context
from repro.service import protocol as proto
from repro.service import queue as q
from repro.service.core import ServiceCore
from repro.service.progress import TERMINAL, Job

#: Submit fields persisted for recovery (the canonical request is what
#: re-expands to the identical grid after a restart).
REQUEST_FIELDS = ("architectures", "workloads", "seeds", "settings",
                  "priority", "check")

#: Reject-reason counter names under ``gateway.rejects`` — one per typed
#: failure class, mirroring the daemon's protocol error codes.
REJECT_REASONS = ("auth", "bad-request", "quota-jobs", "quota-points",
                  "rate-limited", "queue-full", "draining", "not-found")


@dataclass(frozen=True)
class GatewayConfig:
    """Gateway knobs. Service-core knobs mirror ``ServiceConfig``; the
    ``anon_*`` fields are the pseudo-tenant quota applied when
    ``allow_anonymous`` is set (dev/test mode — production gateways
    should require keys)."""

    bind: Tuple = ("tcp", "127.0.0.1", 8643)
    db_path: str = "gateway.sqlite"
    queue_limit: int = 256
    workers: int = 2
    batch: int = 8
    allow_anonymous: bool = False
    anon_max_jobs: int = 16
    anon_max_points: int = 1024
    anon_rate_capacity: float = 100.0
    anon_rate_refill: float = 50.0
    #: Telemetry master switch: per-route latency histograms, per-tenant
    #: request counters, and the ``/metrics`` exporter. On by default;
    #: ``False`` is the A/B baseline arm of bench_telemetry.py.
    telemetry: bool = True


@dataclass
class TenantState:
    """A resolved request identity: quotas + the in-memory rate bucket.

    Buckets are per-process (they reset on restart, which only ever
    lets a tenant burst once more — acceptable for a rate limit whose
    job is smoothing, not billing)."""

    name: str
    max_jobs: int
    max_points: int
    bucket: TokenBucket
    anonymous: bool = False

    @property
    def owner(self) -> str:
        return self.name

    @property
    def stored_tenant(self) -> Optional[str]:
        return None if self.anonymous else self.name


# -- runtime metric collectors (docs/observability.md, "Live telemetry") ------

def _queue_collector(core: ServiceCore):
    """Queue/dispatcher gauges and lifetime point counters."""

    def collect() -> Iterator[Tuple]:
        if core.scheduler is None:
            status = {"backlog": 0, "inflight": 0, "limit": core.queue_limit}
        else:
            status = core.queue_status()
        yield ("queue_backlog", "gauge",
               "grid points waiting for dispatch", {}, status["backlog"])
        yield ("queue_inflight", "gauge",
               "grid points currently executing", {}, status["inflight"])
        yield ("queue_limit", "gauge",
               "bounded queue capacity", {}, status["limit"])
        yield ("dispatchers", "gauge",
               "asyncio dispatcher tasks", {}, core.workers)
        yield ("dispatchers_busy", "gauge",
               "dispatcher tasks currently mid-batch", {}, core.busy)
        yield ("points_requested_total", "counter",
               "grid points requested since process start", {},
               core.points_requested)
        yield ("points_cached_total", "counter",
               "points answered from the run cache at admission", {},
               core.points_cached)
        yield ("points_coalesced_total", "counter",
               "points coalesced onto in-flight duplicates", {},
               core.points_coalesced)
        yield ("points_enqueued_total", "counter",
               "points enqueued for execution", {}, core.points_enqueued)

    return collect


def _fabric_collector(executor: Executor):
    """Worker-fabric gauges: population, heartbeat age, crash/requeue
    counters (zeros until the pool spins up)."""

    def collect() -> Iterator[Tuple]:
        summary = executor.fabric_summary()
        yield ("fabric_running", "gauge",
               "1 when the worker pool is up (or execution is serial)",
               {}, 1 if summary["running"] else 0)
        yield ("fabric_workers", "gauge",
               "live fabric worker processes", {}, summary["workers"])
        yield ("fabric_busy", "gauge",
               "fabric workers with an assigned batch", {},
               summary["busy"])
        yield ("fabric_dispatched_total", "counter",
               "batches handed to fabric workers", {},
               summary["dispatched"])
        yield ("fabric_completed_total", "counter",
               "batches completed by fabric workers", {},
               summary["completed"])
        yield ("fabric_requeued_total", "counter",
               "batches requeued after a worker crash", {},
               summary["requeued"])
        yield ("fabric_crashed_total", "counter",
               "fabric worker processes that died unexpectedly", {},
               summary["crashed"])
        for pid, age in summary["heartbeat_age_s"].items():
            yield ("fabric_heartbeat_age_seconds", "gauge",
                   "seconds since each live worker's last heartbeat",
                   {"pid": str(pid)}, age)
        if summary["heartbeat_age_max_s"] is not None:
            yield ("fabric_heartbeat_age_max_seconds", "gauge",
                   "worst heartbeat age across live workers", {},
                   summary["heartbeat_age_max_s"])
        yield ("executed_points_total", "counter",
               "points actually simulated (cache misses)", {},
               executor.executed)

    return collect


def _cache_collector(cache):
    """Run-cache session counters plus on-disk usage (served from the
    mtime-revalidated shard index — no directory sweep per scrape)."""

    def collect() -> Iterator[Tuple]:
        yield ("cache_hits_total", "counter",
               "run-cache lookups answered from disk", {}, cache.hits)
        yield ("cache_misses_total", "counter",
               "run-cache lookups that missed", {}, cache.misses)
        yield ("cache_writes_total", "counter",
               "run-cache entries written", {}, cache.writes)
        lookups = cache.hits + cache.misses
        yield ("cache_hit_ratio", "gauge",
               "session hit ratio (hits / lookups)", {},
               (cache.hits / lookups) if lookups else 0.0)
        if cache.enabled:
            entries, size = cache.usage()
            yield ("cache_entries", "gauge",
                   "entries in the current cache generation", {}, entries)
            yield ("cache_bytes", "gauge",
                   "bytes in the current cache generation", {}, size)

    return collect


class Gateway:
    """One HTTP gateway process: core + store + auth + admission."""

    def __init__(self, config: Optional[GatewayConfig] = None,
                 executor: Optional[Executor] = None,
                 settings: Optional[RunSettings] = None,
                 store: Optional[JobStore] = None) -> None:
        self.config = config or GatewayConfig()
        self.core = ServiceCore(executor, settings,
                                queue_limit=self.config.queue_limit,
                                workers=self.config.workers,
                                batch=self.config.batch)
        self.store = store or JobStore.open(self.config.db_path)
        self.address: Optional[Tuple] = None
        self.registry = StatsRegistry()
        gw = self.registry.scope("gateway")
        self.c_requests = gw.counter("http_requests")
        self.c_admits = gw.counter("admits")
        self.c_recovered = gw.counter("recovered")
        self.c_persisted = gw.counter("results_persisted")
        rejects = gw.scope("rejects")
        self.c_rejects = {reason: rejects.counter(reason.replace("-", "_"))
                          for reason in REJECT_REASONS}
        self._tenant_scopes = gw.scope("tenants")
        self._routes_scope = gw.scope("routes")
        self._route_stats: Dict[str, Tuple] = {}
        self._tenant_requests: Dict[str, Any] = {}
        self._telemetry = self.config.telemetry
        self.log = get_logger("gateway")
        self._buckets: Dict[str, TokenBucket] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._conns: set = set()
        self._trackers: set = set()
        self._recover_task: Optional[asyncio.Task] = None
        self._stopped: Optional[asyncio.Event] = None
        self._shutting_down = False
        self.recovery_done: Optional[asyncio.Event] = None
        self.exporter: Optional[obsmetrics.MetricsExporter] = (
            self._build_exporter() if self._telemetry else None)

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> Tuple:
        """Start the core, spin up the fabric, bind the HTTP server,
        and kick off backlog recovery in the background (startup never
        blocks on a large backlog). Returns the live address."""
        await self.core.start()
        # Recovered batches should not pay pool-spawn latency.
        self.core.executor.prestart()
        self._stopped = asyncio.Event()
        self.recovery_done = asyncio.Event()
        bind = self.config.bind
        if bind[0] == "unix":
            self._server = await asyncio.start_unix_server(
                self._serve_conn, path=bind[1])
            self.address = bind
        else:
            self._server = await asyncio.start_server(
                self._serve_conn, host=bind[1], port=bind[2])
            port = self._server.sockets[0].getsockname()[1]
            self.address = ("tcp", bind[1], port)
        self._recover_task = asyncio.ensure_future(self._recover())
        return self.address

    async def serve_forever(self) -> None:
        assert self._stopped is not None, "start() first"
        await self._stopped.wait()
        for conn in list(self._conns):
            conn.cancel()
        if self._conns:
            await asyncio.gather(*self._conns, return_exceptions=True)

    async def shutdown(self) -> Dict[str, Any]:
        """Graceful stop: finish recovery admissions, drain the core
        (all jobs resolve, fabric torn down), flush trackers so every
        result row is committed, release sockets and the store."""
        if self._stopped is not None and self._stopped.is_set():
            return {"drained": True, "already_stopped": True}
        self._shutting_down = True
        if self._recover_task is not None and not self._recover_task.done():
            # Recovery waits for queue room; draining would deadlock
            # against it. It checks _shutting_down between admissions.
            await self._recover_task
        summary = await self.core.drain()
        if self._trackers:
            await asyncio.gather(*self._trackers, return_exceptions=True)
        if self._server is not None:
            self._server.close()
            self._server = None
        summary["store"] = self.store.counts_by_state()
        self.store.close()
        if self._stopped is not None:
            self._stopped.set()
        self.log.info("gateway drained", jobs=summary.get("jobs"),
                      executed=summary.get("executed_points"))
        return summary

    # -- recovery ------------------------------------------------------------

    async def _recover(self) -> None:
        """Re-admit every stored ``queued``/``running`` job through the
        core. Runs as a background task: a 1k-job backlog cannot fit the
        bounded queue at once, so this loop waits for room between
        admissions instead of blocking startup or overrunning the
        queue's all-or-nothing contract."""
        try:
            rows = self.store.unfinished_jobs()
            for row in rows:
                if self._shutting_down:
                    break
                current = self.store.get_job(row["id"])
                if current is None or current["state"] in STORED_TERMINAL:
                    continue  # cancelled through the API while we waited
                try:
                    request = json.loads(row["request"])
                    points, priority, _check = \
                        self.core.request_points(request)
                except (ValueError, proto.ProtocolError) as exc:
                    # A request that no longer validates (schema drift,
                    # removed workload) can never run again.
                    self.store.set_job_state(
                        row["id"], "failed", f"unrecoverable: {exc}")
                    continue
                owner = row["tenant"] if row["tenant"] is not None else "anon"
                job = await self._admit_when_room(
                    points, priority, owner, job_id=f"g{row['id']}")
                if job is None:
                    break  # shutting down
                self.store.set_job_state(row["id"], "queued")
                self._start_tracker(job, row["id"])
                job.seal()
                self.c_recovered.inc()
                self._tenant_scope(owner).counter("recovered").inc()
                self.log.info("job recovered", job=f"g{row['id']}",
                              tenant=owner)
        finally:
            self.recovery_done.set()
            self.log.info("recovery complete",
                          recovered=self.c_recovered.value)

    async def _admit_when_room(self, points: List, priority: int,
                               owner: str, job_id: str) -> Optional[Job]:
        """Admit, waiting for queue capacity instead of rejecting —
        recovery must never drop a stored job on the floor. Returns
        ``None`` only when the gateway is shutting down."""
        unique_count = len({p.key for p in points})
        while True:
            if self._shutting_down:
                return None
            backlog = self.core.scheduler.backlog
            if backlog + unique_count > self.config.queue_limit and backlog:
                await asyncio.sleep(0.05)
                continue
            job, unique = self.core.create_job(points, priority, owner,
                                               job_id=job_id)
            try:
                self.core.admit(job, unique)
                return job
            except q.QueueFullError:
                # Lost a race with a live submission; retry. (The job
                # was never registered, so recreating it is clean.)
                await asyncio.sleep(0.05)

    # -- job tracking (write-behind persistence) -----------------------------

    def _start_tracker(self, job: Job, pk: int) -> None:
        task = asyncio.ensure_future(self._track(job, pk))
        self._trackers.add(task)
        task.add_done_callback(self._trackers.discard)

    async def _track(self, job: Job, pk: int) -> None:
        """Follow one job's progress stream and persist transitions:
        ``running`` on first dispatch, then at terminal state the result
        payloads (by content hash) *before* the terminal job row — so a
        crash between the two can only under-report completion, never
        claim results that are not durable. The run cache backstops the
        reverse gap."""
        channel = job.subscribe()
        stored_state = "queued"
        try:
            while True:
                snap = await channel.get()
                if snap is None:
                    break
                state = snap["state"]
                if state == "running" and stored_state == "queued":
                    self.store.set_job_state(pk, "running")
                    stored_state = "running"
        finally:
            job.unsubscribe(channel)
        state = job.state
        if state == "done":
            payloads = {key: job.payloads[key]
                        for key in dict.fromkeys(job.order)}
            self.store.record_results(payloads)
            self.c_persisted.inc(len(payloads))
            self.store.set_job_state(pk, "done")
        elif state == "failed":
            detail = "; ".join(sorted(set(job.errors.values()))) or "failed"
            self.store.set_job_state(pk, "failed", detail[:2000])
        else:
            self.store.set_job_state(pk, "cancelled")

    # -- telemetry -----------------------------------------------------------

    def _build_exporter(self) -> obsmetrics.MetricsExporter:
        """The ``/metrics`` exporter: the gateway registry (tenant /
        reject / route families folded into labels) plus runtime
        collectors over queue, fabric, cache, store and health."""
        exporter = obsmetrics.MetricsExporter()
        exporter.mount_registry(self.registry, label_scopes={
            "gateway.tenants": "tenant",
            "gateway.rejects": "reason",
            "gateway.routes": "route",
        })
        exporter.add_collector(_queue_collector(self.core))
        exporter.add_collector(_fabric_collector(self.core.executor))
        exporter.add_collector(_cache_collector(self.core.executor.cache))
        exporter.add_collector(self._health_metrics)
        exporter.add_collector(self._store_metrics)
        return exporter

    def readiness(self) -> Tuple[bool, Dict[str, bool]]:
        """The ``/readyz`` verdict: the store is fully migrated, the
        worker fabric is up (or execution is serial), and the queue
        accepts admissions (exists, not draining). False before
        migrations have run and from the moment a drain begins."""
        try:
            migrated = not self.store.pending_migrations()
        except Exception:  # noqa: BLE001 — unreadable store is not ready
            migrated = False
        checks = {
            "store_migrated": migrated,
            "fabric_started": self.core.executor.fabric_running(),
            "queue_accepting": (self.core.scheduler is not None
                                and not self.core.draining
                                and not self._shutting_down),
        }
        return all(checks.values()), checks

    def _health_metrics(self) -> Iterator[Tuple]:
        ready, checks = self.readiness()
        yield ("ready", "gauge", "1 when /readyz reports ready", {},
               1 if ready else 0)
        for name, ok in checks.items():
            yield ("ready_check", "gauge",
                   "individual /readyz check results", {"check": name},
                   1 if ok else 0)
        yield ("draining", "gauge", "1 while the core is draining", {},
               1 if self.core.draining else 0)
        yield ("recovering", "gauge",
               "1 while stored backlog recovery is in progress", {},
               0 if (self.recovery_done is None
                     or self.recovery_done.is_set()) else 1)

    def _store_metrics(self) -> Iterator[Tuple]:
        try:
            counts = self.store.counts_by_state()
            results = self.store.result_count()
        except Exception:  # noqa: BLE001 — store closed mid-scrape
            return
        for state, count in sorted(counts.items()):
            yield ("store_jobs", "gauge", "stored job rows by state",
                   {"state": state}, count)
        yield ("store_results", "gauge",
               "persisted result payloads (by content hash)", {}, results)

    #: Route templates for per-route metrics: label values and registry
    #: scope names (so they avoid ``.`` and ``/``), derived from the
    #: path alone so even rejected requests land in the right bucket.
    _ROUTE_KEYS = {
        ("healthz",): "healthz",
        ("metrics",): "metrics",
        ("readyz",): "readyz",
        ("openapi.json",): "openapi",
        ("v1", "status"): "v1_status",
        ("v1", "jobs"): "v1_jobs",
    }

    @classmethod
    def _route_key(cls, path: str) -> str:
        parts = tuple(p for p in path.split("/") if p)
        known = cls._ROUTE_KEYS.get(parts)
        if known is not None:
            return known
        if len(parts) == 3 and parts[:2] == ("v1", "jobs"):
            return "v1_jobs_id"
        if len(parts) == 4 and parts[:2] == ("v1", "jobs") and \
                parts[3] in ("results", "events"):
            return f"v1_jobs_id_{parts[3]}"
        return "other"

    def _observe_request(self, route: str, elapsed_s: float, *,
                         error: bool, aborted: bool) -> None:
        """Record one finished (or aborted) request against its route
        scope. Called from exactly one ``finally`` per request, so each
        request counts once no matter how it ended."""
        if self._telemetry:
            stats = self._route_stats.get(route)
            if stats is None:
                scope = self._routes_scope.scope(route)
                stats = (scope.counter("requests"), scope.counter("errors"),
                         scope.counter("aborted"),
                         scope.histogram("latency_us"))
                self._route_stats[route] = stats
            requests, errors, aborts, latency = stats
            requests.inc()
            if error:
                errors.inc()
            if aborted:
                aborts.inc()
            latency.record(int(elapsed_s * 1e6))
        self.log.debug("request", route=route,
                       ms=round(elapsed_s * 1000, 3), error=error,
                       aborted=aborted)

    # -- auth + admission control --------------------------------------------

    def _tenant_scope(self, name: str):
        return self._tenant_scopes.scope(name)

    def _reject(self, tenant: Optional[TenantState], reason: str,
                status: int, code: str, message: str,
                headers: Optional[Dict[str, str]] = None) -> http.HttpError:
        self.c_rejects[reason].inc()
        if tenant is not None:
            self._tenant_scope(tenant.name).counter("rejects").inc()
        self.log.debug("request rejected", reason=reason, status=status,
                       code=code,
                       tenant=None if tenant is None else tenant.name)
        return http.HttpError(status, code, message, headers=headers)

    def _authenticate(self, request: http.Request) -> TenantState:
        header = request.headers.get("authorization")
        if header is None:
            if self.config.allow_anonymous:
                cfg = self.config
                bucket = self._buckets.setdefault(
                    "anon", TokenBucket(cfg.anon_rate_capacity,
                                        cfg.anon_rate_refill))
                return TenantState("anon", cfg.anon_max_jobs,
                                   cfg.anon_max_points, bucket,
                                   anonymous=True)
            raise self._reject(
                None, "auth", 401, "auth-required",
                "missing Authorization header (Bearer <api-key>)",
                headers={"WWW-Authenticate": "Bearer"})
        scheme, _, key = header.partition(" ")
        if scheme.lower() != "bearer" or not key.strip():
            raise self._reject(None, "auth", 401, "auth-malformed",
                               "Authorization must be 'Bearer <api-key>'",
                               headers={"WWW-Authenticate": "Bearer"})
        row = self.store.find_tenant_by_key(key.strip())
        if row is None:
            raise self._reject(None, "auth", 403, "auth-invalid",
                               "unknown API key")
        bucket = self._buckets.setdefault(
            row["name"], TokenBucket(row["rate_capacity"],
                                     row["rate_refill"]))
        return TenantState(row["name"], int(row["max_jobs"]),
                           int(row["max_points"]), bucket)

    # -- HTTP plumbing -------------------------------------------------------

    async def _serve_conn(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        self._conns.add(asyncio.current_task())
        try:
            while True:
                try:
                    request = await http.read_request(reader)
                except http.HttpError as exc:
                    await http.send_error(writer, exc)
                    if exc.close:
                        break
                    continue
                if request is None:
                    break
                self.c_requests.inc()
                keep = request.keep_alive
                route = self._route_key(request.path)
                started = time.perf_counter()
                error = aborted = stream_closed = stop = False
                try:
                    try:
                        stream_closed = await self._dispatch(request, reader,
                                                             writer)
                    except http.HttpError as exc:
                        error = True
                        await http.send_error(writer, exc, keep_alive=keep)
                        if exc.close or not keep:
                            stop = True
                    except (ConnectionResetError, BrokenPipeError):
                        aborted = True
                        raise
                    except asyncio.CancelledError:
                        aborted = True
                        raise
                    except Exception as exc:  # noqa: BLE001 — keep serving
                        error = True
                        await http.send_error(writer, http.HttpError(
                            500, "internal", f"{type(exc).__name__}: {exc}"),
                            keep_alive=keep)
                        if not keep:
                            stop = True
                finally:
                    # One finally per request — runs on normal completion,
                    # typed errors, disconnects and cancellation alike, so
                    # every request is observed exactly once.
                    self._observe_request(
                        route, time.perf_counter() - started,
                        error=error, aborted=aborted)
                if stop or stream_closed or not keep:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            pass
        finally:
            self._conns.discard(asyncio.current_task())
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _dispatch(self, request: http.Request,
                        reader: asyncio.StreamReader,
                        writer: asyncio.StreamWriter) -> bool:
        """Route one request; returns True when the handler consumed
        the connection (streaming responses, which also watch ``reader``
        for the client going away)."""
        parts = [p for p in request.path.split("/") if p]
        keep = request.keep_alive

        if parts == ["healthz"]:
            self._need_method(request, "GET")
            await http.send_json(writer, 200, {
                "ok": True, "draining": self.core.draining,
                "recovering": not (self.recovery_done is None
                                   or self.recovery_done.is_set())},
                keep_alive=keep)
            return False
        if parts == ["readyz"]:
            self._need_method(request, "GET")
            ready, checks = self.readiness()
            await http.send_json(writer, 200 if ready else 503,
                                 {"ready": ready, "checks": checks},
                                 keep_alive=keep)
            return False
        if parts == ["metrics"]:
            self._need_method(request, "GET")
            if self.exporter is None:
                raise http.HttpError(503, "telemetry-disabled",
                                     "telemetry is disabled on this gateway")
            await http.send_text(writer, 200, self.exporter.render(),
                                 content_type=obsmetrics.CONTENT_TYPE,
                                 keep_alive=keep)
            return False
        if parts == ["openapi.json"]:
            self._need_method(request, "GET")
            await http.send_json(writer, 200, openapi_spec(),
                                 keep_alive=keep)
            return False

        tenant = self._authenticate(request)
        if self._telemetry:
            # Exactly once per authenticated request: _authenticate runs
            # once per dispatch, before any handler can raise or stream.
            # The counter object is cached per tenant — this is the
            # hottest telemetry site.
            counter = self._tenant_requests.get(tenant.name)
            if counter is None:
                counter = self._tenant_scope(tenant.name).counter("requests")
                self._tenant_requests[tenant.name] = counter
            counter.inc()
        if parts == ["v1", "status"]:
            self._need_method(request, "GET")
            await http.send_json(writer, 200, self.server_status(),
                                 keep_alive=keep)
            return False
        if parts == ["v1", "jobs"]:
            if request.method == "POST":
                await self._submit(request, writer, tenant)
                return False
            self._need_method(request, "GET")
            await self._list_jobs(request, writer, tenant)
            return False
        if len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
            pk, job, row = self._resolve_job(parts[2], tenant)
            if request.method == "DELETE":
                await self._cancel(writer, keep, pk, job, row)
                return False
            self._need_method(request, "GET")
            await self._job_snapshot(request, writer, keep, job, row)
            return False
        if len(parts) == 4 and parts[:2] == ["v1", "jobs"]:
            pk, job, row = self._resolve_job(parts[2], tenant)
            self._need_method(request, "GET")
            if parts[3] == "results":
                await self._results(writer, keep, job, row)
                return False
            if parts[3] == "events":
                await self._events(reader, writer, job, row)
                return True
        raise self._reject(tenant if parts[:1] == ["v1"] else None,
                           "not-found", 404, "not-found",
                           f"no route for {request.method} {request.path}")

    @staticmethod
    def _need_method(request: http.Request, method: str) -> None:
        if request.method != method:
            raise http.HttpError(
                405, "method-not-allowed",
                f"{request.path} accepts {method}, not {request.method}",
                headers={"Allow": method})

    # -- handlers ------------------------------------------------------------

    async def _submit(self, request: http.Request,
                      writer: asyncio.StreamWriter,
                      tenant: TenantState) -> None:
        if self.core.draining:
            raise self._reject(tenant, "draining", 503, "draining",
                               "gateway is draining; no new jobs",
                               headers={"Retry-After": "30"})
        ok, retry_after = tenant.bucket.take()
        if not ok:
            self._tenant_scope(tenant.name).counter("rate_hits").inc()
            raise self._reject(
                tenant, "rate-limited", 429, "rate-limited",
                f"tenant {tenant.name!r} exceeded its request rate",
                headers={"Retry-After": str(max(1, math.ceil(retry_after)))})
        body = request.json()
        try:
            points, priority, _check = self.core.request_points(body)
        except proto.ProtocolError as exc:
            raise self._reject(tenant, "bad-request", 400, "bad-request",
                               str(exc))
        active = self.core.active_jobs(owner=tenant.owner)
        if active >= tenant.max_jobs:
            raise self._reject(
                tenant, "quota-jobs", 429, "quota-jobs",
                f"tenant {tenant.name!r} already has {active} unfinished "
                f"job(s) (limit {tenant.max_jobs})")
        unique_count = len({p.key for p in points})
        in_flight = self.core.active_points(owner=tenant.owner)
        if in_flight + unique_count > tenant.max_points:
            raise self._reject(
                tenant, "quota-points", 429, "quota-points",
                f"submission would put tenant {tenant.name!r} at "
                f"{in_flight + unique_count} unfinished point(s) "
                f"(limit {tenant.max_points})")

        stored_request = {key: body[key] for key in REQUEST_FIELDS
                          if key in body and body[key] is not None}
        pk = self.store.create_job(
            stored_request, priority, tenant.stored_tenant,
            [(p.key, p.name, p.workload, p.seed) for p in points])
        with log_context(job=f"g{pk}", tenant=tenant.name):
            job, unique = self.core.create_job(points, priority,
                                               tenant.owner,
                                               job_id=f"g{pk}")
            try:
                self.core.admit(job, unique)
            except q.QueueFullError as exc:
                # Never admitted ⇒ must not be "recovered" after restart.
                self.store.delete_job(pk)
                raise self._reject(tenant, "queue-full", 503, "queue-full",
                                   str(exc), headers={"Retry-After": "5"})
            self._start_tracker(job, pk)
            job.seal()
            self.log.info("job admitted", points=len(points),
                          unique=unique_count, cached=job.cached,
                          coalesced=job.coalesced, priority=priority)
        self.c_admits.inc()
        self._tenant_scope(tenant.name).counter("admits").inc()
        reply = job.snapshot()
        reply["cached"] = job.cached
        results = job.results()
        if results is not None:  # grid served entirely from cache
            reply["results"] = results
        await http.send_json(writer, 201, reply,
                             keep_alive=request.keep_alive)

    async def _list_jobs(self, request: http.Request,
                         writer: asyncio.StreamWriter,
                         tenant: TenantState) -> None:
        try:
            limit = min(1000, max(1, int(request.query.get("limit", "100"))))
        except ValueError:
            raise http.HttpError(400, "bad-request",
                                 "limit must be an integer")
        rows = self.store.list_jobs(tenant.stored_tenant, limit)
        jobs = []
        for row in rows:
            gid = f"g{row['id']}"
            live = self.core.get_job(gid)
            jobs.append({
                "job": gid,
                "state": live.state if live is not None else row["state"],
                "priority": row["priority"],
                "created_at": row["created_at"],
                "updated_at": row["updated_at"],
                "error": row["error"],
            })
        await http.send_json(writer, 200, {"jobs": jobs},
                             keep_alive=request.keep_alive)

    def _resolve_job(self, gid: str, tenant: TenantState
                     ) -> Tuple[int, Optional[Job], Dict[str, Any]]:
        """Ownership gate for every per-job route: the stored row must
        exist *and* belong to the caller — other tenants' jobs 404
        indistinguishably from absent ones (no existence oracle)."""
        def not_found() -> http.HttpError:
            # Built lazily: _reject counts the reject when called, so a
            # successful resolve must not construct it.
            return self._reject(tenant, "not-found", 404, "unknown-job",
                                f"unknown job {gid!r}")

        if not gid.startswith("g") or not gid[1:].isdigit():
            raise not_found()
        pk = int(gid[1:])
        row = self.store.get_job(pk)
        if row is None or row["tenant"] != tenant.stored_tenant:
            raise not_found()
        return pk, self.core.get_job(gid), row

    async def _job_snapshot(self, request: http.Request,
                            writer: asyncio.StreamWriter, keep: bool,
                            job: Optional[Job], row: Dict[str, Any]) -> None:
        if job is not None:
            snap = job.snapshot(points="points" in request.query)
        else:
            snap = self._stored_snapshot(row)
        await http.send_json(writer, 200, snap, keep_alive=keep)

    def _stored_snapshot(self, row: Dict[str, Any]) -> Dict[str, Any]:
        """Summary snapshot for a job that is not live in the core —
        terminal before the last restart, or still awaiting recovery."""
        points = self.store.job_points(row["id"])
        snap: Dict[str, Any] = {
            "job": f"g{row['id']}",
            "state": row["state"],
            "priority": row["priority"],
            "points": len(points),
            "unique_points": len({p["point_key"] for p in points}),
            "stored": True,
        }
        if row["state"] in ("queued", "running"):
            snap["recovering"] = True
        if row["error"]:
            snap["errors"] = {"job": row["error"]}
        return snap

    def _stored_results(self, row: Dict[str, Any]
                        ) -> List[Dict[str, Any]]:
        """Result payloads for a stored-terminal job, grid order: the
        results table first, the run cache as backstop (crash between
        cache write and store commit)."""
        points = self.store.job_points(row["id"])
        keys = [p["point_key"] for p in points]
        payloads = self.store.result_payloads(keys)
        missing = [key for key in dict.fromkeys(keys) if key not in payloads]
        for key in missing:
            payload = self.core.executor.cache.get_payload(key)
            if payload is not None:
                payloads[key] = payload
        still = [key for key in dict.fromkeys(keys) if key not in payloads]
        if still:
            raise http.HttpError(
                500, "results-missing",
                f"{len(still)} result payload(s) are in neither the store "
                f"nor the run cache")
        return [payloads[key] for key in keys]

    async def _results(self, writer: asyncio.StreamWriter, keep: bool,
                       job: Optional[Job], row: Dict[str, Any]) -> None:
        if job is not None:
            results = job.results()
            state = job.state
        elif row["state"] == "done":
            results = self._stored_results(row)
            state = "done"
        else:
            results, state = None, row["state"]
        if results is None:
            raise http.HttpError(
                409, "not-done",
                f"job g{row['id']} is {state}; results exist only for "
                f"state 'done'")
        await http.send_json(writer, 200,
                             {"job": f"g{row['id']}", "state": state,
                              "results": results}, keep_alive=keep)

    async def _events(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter,
                      job: Optional[Job], row: Dict[str, Any]) -> None:
        """SSE progress stream; ends with an ``event=end`` frame. A
        client disconnect mid-stream just unsubscribes — the job (and
        the daemon) are unaffected. The read side is watched while we
        wait for snapshots: an SSE client never sends again, so EOF (or
        stray bytes) means the watcher went away — detected *promptly*
        instead of on some later write into a dead socket, so the
        subscription is released and the request is observed as aborted
        exactly once."""
        sse = http.SseStream(writer)
        gid = f"g{row['id']}"
        if job is None:
            await sse.start()
            end: Dict[str, Any] = {"event": "end", "job": gid,
                                   "state": row["state"], "stored": True}
            if row["state"] == "done":
                end["results"] = self._stored_results(row)
            await sse.send(end)
            await sse.end()
            return
        channel = job.subscribe()
        gone = asyncio.ensure_future(reader.read(1))
        getter: Optional[asyncio.Task] = None
        try:
            await sse.start()
            while True:
                getter = asyncio.ensure_future(channel.get())
                await asyncio.wait({getter, gone},
                                   return_when=asyncio.FIRST_COMPLETED)
                if not getter.done():
                    raise ConnectionResetError(
                        "SSE client disconnected mid-stream")
                snap = getter.result()
                getter = None
                if snap is None:
                    end = {"event": "end", "job": job.id,
                           "state": job.state}
                    results = job.results()
                    if results is not None:
                        end["results"] = results
                    if job.errors:
                        end["errors"] = dict(job.errors)
                    await sse.send(end)
                    await sse.end()
                    return
                snap = dict(snap)
                snap["event"] = "progress"
                await sse.send(snap)
        finally:
            for task in (getter, gone):
                if task is None:
                    continue
                task.cancel()
                try:
                    await task
                except (asyncio.CancelledError, OSError):
                    pass
            job.unsubscribe(channel)

    async def _cancel(self, writer: asyncio.StreamWriter, keep: bool,
                      pk: int, job: Optional[Job],
                      row: Dict[str, Any]) -> None:
        if job is not None:
            job.cancel(self.core.scheduler)  # tracker persists the state
            await http.send_json(writer, 200,
                                 {"job": job.id, "state": job.state},
                                 keep_alive=keep)
            return
        if row["state"] not in STORED_TERMINAL:
            # Stored but not yet (re-)admitted: cancel in the store; the
            # recovery loop re-checks state before admitting.
            self.store.set_job_state(pk, "cancelled")
            row = dict(row, state="cancelled")
        await http.send_json(writer, 200,
                             {"job": f"g{pk}", "state": row["state"]},
                             keep_alive=keep)

    # -- status --------------------------------------------------------------

    def server_status(self) -> Dict[str, Any]:
        return {
            "draining": self.core.draining,
            "recovering": not (self.recovery_done is None
                               or self.recovery_done.is_set()),
            "queue": self.core.queue_status(),
            "workers": self.core.workers,
            "workers_busy": self.core.busy,
            "procs": self.core.executor.jobs,
            "procs_busy": self.core.executor.procs_busy(),
            "fabric": self.core.executor.fabric_stats(),
            "fabric_summary": self.core.executor.fabric_summary(),
            "jobs": self.core.jobs_by_state(),
            "points": self.core.points_status(),
            "cache": self.core.cache_summary(),
            "store": {"jobs": self.store.counts_by_state(),
                      "results": self.store.result_count()},
            "gateway": self.registry.to_dict()["gateway"],
        }


# -- embedding helpers --------------------------------------------------------

async def _thread_main(gateway: Gateway, started: threading.Event,
                       box: Dict[str, Any]) -> None:
    try:
        box["address"] = await gateway.start()
        box["loop"] = asyncio.get_running_loop()
    except BaseException as exc:
        box["error"] = exc
        started.set()
        raise
    started.set()
    await gateway.serve_forever()


class GatewayThread:
    """A gateway on a background event loop — tests and notebooks (the
    HTTP sibling of :class:`~repro.service.server.ServiceThread`)."""

    def __init__(self, config: Optional[GatewayConfig] = None,
                 executor: Optional[Executor] = None,
                 settings: Optional[RunSettings] = None,
                 store: Optional[JobStore] = None) -> None:
        self.gateway = Gateway(config, executor, settings, store)
        self._box: Dict[str, Any] = {}
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple:
        return self._box["address"]

    @property
    def base_url(self) -> str:
        kind, host, port = self.address
        assert kind == "tcp", "base_url needs a TCP bind"
        return f"http://{host}:{port}"

    def __enter__(self) -> "GatewayThread":
        started = threading.Event()
        self._thread = threading.Thread(
            target=lambda: asyncio.run(
                _thread_main(self.gateway, started, self._box)),
            name="esp-nuca-gateway", daemon=True)
        self._thread.start()
        started.wait(timeout=30)
        if "error" in self._box:
            self._thread.join(timeout=5)
            raise self._box["error"]
        if "address" not in self._box:
            raise RuntimeError("gateway failed to start within 30s")
        return self

    def __exit__(self, *exc_info) -> None:
        import concurrent.futures

        loop = self._box.get("loop")
        if (self._thread is not None and self._thread.is_alive()
                and loop is not None and not loop.is_closed()):
            try:
                future = asyncio.run_coroutine_threadsafe(
                    self.gateway.shutdown(), loop)
                future.result(timeout=120)
            except (RuntimeError, concurrent.futures.TimeoutError):
                pass
        if self._thread is not None:
            self._thread.join(timeout=120)
