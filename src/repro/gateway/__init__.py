"""Production HTTP gateway: durable, authenticated simulation serving.

The third front end over the simulation stack (after the batch CLI and
the JSON-lines daemon), and the first with *state that outlives the
process*: a REST API (``esp-nuca gateway serve``) sharing the
:class:`~repro.service.core.ServiceCore` with the socket daemon,
backed by a SQLite job store with versioned migrations so jobs,
results-by-content-hash and tenant identities survive restarts — a
SIGKILL'd gateway recovers its backlog on the next boot and answers
byte-identically. Multi-tenancy is first-class: hashed API keys,
per-tenant quotas, token-bucket rate limiting, per-tenant stats
scopes. See docs/gateway.md.
"""

from repro.gateway.app import (Gateway, GatewayConfig, GatewayThread,
                               TenantState)
from repro.gateway.auth import TokenBucket, generate_key, hash_key
from repro.gateway.client import GatewayClient, GatewayError
from repro.gateway.http import HttpError
from repro.gateway.store import JobStore, StoreError

__all__ = [
    "Gateway",
    "GatewayConfig",
    "GatewayThread",
    "GatewayClient",
    "GatewayError",
    "HttpError",
    "JobStore",
    "StoreError",
    "TenantState",
    "TokenBucket",
    "generate_key",
    "hash_key",
]
