-- Jobs, their expanded run points, and results by content hash.
--
-- `request` is the canonical JSON of the validated submit message; on
-- recovery the gateway re-expands it through the exact same
-- grid_points path as the original admission, which is what makes
-- recovered results byte-identical to direct runs.

CREATE TABLE jobs (
    id          INTEGER PRIMARY KEY AUTOINCREMENT,
    state       TEXT NOT NULL,
    priority    INTEGER NOT NULL DEFAULT 0,
    request     TEXT NOT NULL,
    error       TEXT,
    created_at  REAL NOT NULL,
    updated_at  REAL NOT NULL
);

CREATE TABLE job_points (
    job_id      INTEGER NOT NULL REFERENCES jobs(id) ON DELETE CASCADE,
    ord         INTEGER NOT NULL,
    point_key   TEXT NOT NULL,
    name        TEXT NOT NULL,
    workload    TEXT NOT NULL,
    seed        INTEGER NOT NULL,
    PRIMARY KEY (job_id, ord)
);

-- Content-hash keyed result payloads (canonical JSON of
-- SimResult.to_dict()). Shared across jobs: two jobs naming the same
-- point share one row, exactly like the run cache shares one entry.
CREATE TABLE results (
    point_key   TEXT PRIMARY KEY,
    payload     TEXT NOT NULL,
    created_at  REAL NOT NULL
);
