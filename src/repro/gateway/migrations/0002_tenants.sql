-- Multi-tenancy: API-key identities with per-tenant quotas.
--
-- Only the sha256 of an API key is stored; the plaintext is shown once
-- at `esp-nuca gateway add-tenant` time and cannot be recovered.

CREATE TABLE tenants (
    id             INTEGER PRIMARY KEY AUTOINCREMENT,
    name           TEXT NOT NULL UNIQUE,
    key_hash       TEXT NOT NULL UNIQUE,
    max_jobs       INTEGER NOT NULL DEFAULT 4,
    max_points     INTEGER NOT NULL DEFAULT 64,
    rate_capacity  REAL NOT NULL DEFAULT 10.0,
    rate_refill    REAL NOT NULL DEFAULT 2.0,
    created_at     REAL NOT NULL
);

-- Jobs gain an owner (tenant name; NULL = submitted anonymously before
-- this migration or with --allow-anonymous).
ALTER TABLE jobs ADD COLUMN tenant TEXT;
