-- Hot-path indexes: recovery scans by state, listings scan by tenant,
-- and result re-attachment joins points to results by content hash.

CREATE INDEX idx_jobs_state ON jobs(state);
CREATE INDEX idx_jobs_tenant ON jobs(tenant);
CREATE INDEX idx_job_points_key ON job_points(point_key);
