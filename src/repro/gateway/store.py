"""Persistent job store: SQLite with versioned schema migrations.

The gateway's durability layer. One SQLite file holds everything that
must survive a restart — jobs (with the canonical request JSON that
re-expands to the exact same grid on recovery), their run points,
results keyed by content hash, and tenant identities with quotas. The
in-memory :class:`~repro.service.core.ServiceCore` stays the execution
authority while the process lives; this store is the write-behind
record that lets a SIGKILL'd gateway come back and finish its backlog.

Schema changes ship as numbered SQL files in ``gateway/migrations/``
(``0001_initial.sql``, ``0002_tenants.sql``, ...). :meth:`JobStore.migrate`
applies the pending suffix in order, each file in its own transaction,
and records it in ``schema_migrations`` — so a v1 database opened by
v3 code upgrades in place, and an old binary refuses a newer database
instead of corrupting it. Adding a migration = dropping a new
``NNNN_name.sql`` into the package; nothing else to register.

Durability settings: WAL journal with ``synchronous=NORMAL`` — commits
survive process SIGKILL (the failure mode the recovery test exercises);
an OS crash may lose the last few commits but never corrupts, which is
the right trade for re-runnable simulation jobs backed by the run
cache.
"""

from __future__ import annotations

import json
import os
import re
import sqlite3
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

MIGRATIONS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                              "migrations")
_MIGRATION_RE = re.compile(r"^(\d{4})_[a-z0-9_]+\.sql$")

#: Stored job states. `queued` and `running` are the recoverable ones;
#: the rest are terminal and never re-dispatched.
STORED_TERMINAL = ("done", "failed", "cancelled")


class StoreError(Exception):
    """Schema or integrity problem with the job store."""


def available_migrations(directory: str = MIGRATIONS_DIR
                         ) -> List[Tuple[int, str]]:
    """Sorted ``(version, filename)`` pairs shipped with this build."""
    out: List[Tuple[int, str]] = []
    for name in sorted(os.listdir(directory)):
        match = _MIGRATION_RE.match(name)
        if match:
            out.append((int(match.group(1)), name))
    versions = [v for v, _ in out]
    if versions != list(range(1, len(versions) + 1)):
        raise StoreError(f"migration files are not a 1..N sequence: "
                         f"{[name for _, name in out]}")
    return out


def canonical_json(obj: Any) -> str:
    """The one JSON serialization used for stored requests and result
    payloads (same separators/sort as the byte-identity checks)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


class JobStore:
    """One SQLite-backed job/tenant store.

    Thread-safe via one connection + a lock (the gateway does all store
    work on its event-loop thread; the lock covers CLI tooling and
    tests poking a live store from another thread). Open with
    :meth:`open` to connect *and* migrate in one step.
    """

    def __init__(self, path: str, *, migrations: str = MIGRATIONS_DIR
                 ) -> None:
        self.path = path
        self.migrations_dir = migrations
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(path, check_same_thread=False,
                                     timeout=30.0)
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute("PRAGMA foreign_keys=ON")
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS schema_migrations ("
                " version INTEGER PRIMARY KEY,"
                " name TEXT NOT NULL,"
                " applied_at REAL NOT NULL)")
            self._conn.commit()

    @classmethod
    def open(cls, path: str) -> "JobStore":
        """Connect and bring the schema fully up to date."""
        store = cls(path)
        store.migrate()
        return store

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- migrations ----------------------------------------------------------

    def version(self) -> int:
        """Highest applied migration version (0 = fresh database)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT MAX(version) AS v FROM schema_migrations").fetchone()
        return int(row["v"] or 0)

    def pending_migrations(self) -> List[Tuple[int, str]]:
        current = self.version()
        shipped = available_migrations(self.migrations_dir)
        if current > len(shipped):
            raise StoreError(
                f"database {self.path} is at schema version {current} but "
                f"this build only ships {len(shipped)} migration(s) — "
                f"refusing to touch a newer database")
        return [(v, name) for v, name in shipped if v > current]

    def migrate(self, upto: Optional[int] = None) -> List[str]:
        """Apply pending migrations in order (each in its own
        transaction, recorded on success); returns the applied
        filenames. ``upto`` stops early — migration tests use it to
        build a database at an old version and prove the remaining
        suffix upgrades it."""
        applied: List[str] = []
        for ver, name in self.pending_migrations():
            if upto is not None and ver > upto:
                break
            sql_path = os.path.join(self.migrations_dir, name)
            with open(sql_path, encoding="utf-8") as handle:
                sql = handle.read()
            with self._lock:
                try:
                    self._conn.executescript(sql)
                    self._conn.execute(
                        "INSERT INTO schema_migrations "
                        "(version, name, applied_at) VALUES (?, ?, ?)",
                        (ver, name, time.time()))
                    self._conn.commit()
                except sqlite3.Error as exc:
                    self._conn.rollback()
                    raise StoreError(
                        f"migration {name} failed: {exc}") from exc
            applied.append(name)
        return applied

    # -- tenants -------------------------------------------------------------

    def add_tenant(self, name: str, *, max_jobs: int = 4,
                   max_points: int = 64, rate_capacity: float = 10.0,
                   rate_refill: float = 2.0) -> Tuple[Dict[str, Any], str]:
        """Create a tenant; returns ``(row, api_key)``. The plaintext
        key exists only in this return value — the store keeps its
        sha256."""
        from repro.gateway.auth import generate_key, hash_key, validate_tenant

        validate_tenant(name)
        key = generate_key()
        with self._lock:
            try:
                self._conn.execute(
                    "INSERT INTO tenants (name, key_hash, max_jobs, "
                    "max_points, rate_capacity, rate_refill, created_at) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?)",
                    (name, hash_key(key), max_jobs, max_points,
                     rate_capacity, rate_refill, time.time()))
                self._conn.commit()
            except sqlite3.IntegrityError as exc:
                self._conn.rollback()
                raise StoreError(f"tenant {name!r} already exists") from exc
        tenant = self.get_tenant(name)
        assert tenant is not None
        return tenant, key

    def get_tenant(self, name: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM tenants WHERE name = ?", (name,)).fetchone()
        return dict(row) if row is not None else None

    def find_tenant_by_key(self, key: str) -> Optional[Dict[str, Any]]:
        """Authentication lookup: the presented key's hash, or None."""
        from repro.gateway.auth import hash_key

        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM tenants WHERE key_hash = ?",
                (hash_key(key),)).fetchone()
        return dict(row) if row is not None else None

    def list_tenants(self) -> List[Dict[str, Any]]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT name, max_jobs, max_points, rate_capacity, "
                "rate_refill, created_at FROM tenants "
                "ORDER BY name").fetchall()
        return [dict(row) for row in rows]

    # -- jobs ----------------------------------------------------------------

    def create_job(self, request: Dict[str, Any], priority: int,
                   tenant: Optional[str],
                   points: Sequence[Tuple[str, str, str, int]]) -> int:
        """Persist a validated submission; returns the integer primary
        key (public id ``g<pk>``). ``points`` are ``(key, name,
        workload, seed)`` in grid order."""
        now = time.time()
        with self._lock:
            cur = self._conn.execute(
                "INSERT INTO jobs (state, priority, request, tenant, "
                "created_at, updated_at) VALUES (?, ?, ?, ?, ?, ?)",
                ("queued", priority, canonical_json(request), tenant,
                 now, now))
            job_id = int(cur.lastrowid)
            self._conn.executemany(
                "INSERT INTO job_points (job_id, ord, point_key, name, "
                "workload, seed) VALUES (?, ?, ?, ?, ?, ?)",
                [(job_id, i, key, name, workload, seed)
                 for i, (key, name, workload, seed) in enumerate(points)])
            self._conn.commit()
        return job_id

    def set_job_state(self, job_id: int, state: str,
                      error: Optional[str] = None) -> None:
        with self._lock:
            self._conn.execute(
                "UPDATE jobs SET state = ?, error = ?, updated_at = ? "
                "WHERE id = ?", (state, error, time.time(), job_id))
            self._conn.commit()

    def delete_job(self, job_id: int) -> None:
        """Remove a row that never got admitted (queue-full reject after
        the insert) — a rejected submission must not be 'recovered'."""
        with self._lock:
            self._conn.execute("DELETE FROM job_points WHERE job_id = ?",
                               (job_id,))
            self._conn.execute("DELETE FROM jobs WHERE id = ?", (job_id,))
            self._conn.commit()

    def get_job(self, job_id: int) -> Optional[Dict[str, Any]]:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM jobs WHERE id = ?", (job_id,)).fetchone()
        return dict(row) if row is not None else None

    def job_points(self, job_id: int) -> List[Dict[str, Any]]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT ord, point_key, name, workload, seed "
                "FROM job_points WHERE job_id = ? ORDER BY ord",
                (job_id,)).fetchall()
        return [dict(row) for row in rows]

    def list_jobs(self, tenant: Optional[str] = None, limit: int = 100, *,
                  any_tenant: bool = False) -> List[Dict[str, Any]]:
        """Job summaries, newest first. ``tenant`` scopes to one tenant;
        ``tenant=None`` means *anonymous* jobs (``tenant IS NULL``) —
        tenants never see each other's jobs. ``any_tenant=True`` lifts
        the filter (operator tooling)."""
        query = ("SELECT id, state, priority, tenant, error, created_at, "
                 "updated_at FROM jobs")
        params: Tuple = ()
        if not any_tenant:
            if tenant is not None:
                query += " WHERE tenant = ?"
                params = (tenant,)
            else:
                query += " WHERE tenant IS NULL"
        query += " ORDER BY id DESC LIMIT ?"
        with self._lock:
            rows = self._conn.execute(query, params + (limit,)).fetchall()
        return [dict(row) for row in rows]

    def unfinished_jobs(self) -> List[Dict[str, Any]]:
        """Jobs to recover on startup, oldest first (FIFO within equal
        priority; the scheduler re-applies priority ordering anyway)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM jobs WHERE state IN ('queued', 'running') "
                "ORDER BY id").fetchall()
        return [dict(row) for row in rows]

    def counts_by_state(self) -> Dict[str, int]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) AS n FROM jobs "
                "GROUP BY state").fetchall()
        return {row["state"]: int(row["n"]) for row in rows}

    # -- results -------------------------------------------------------------

    def record_results(self, payloads: Dict[str, Dict[str, Any]]) -> None:
        """Upsert result payloads by content hash (idempotent — two jobs
        resolving the same point write the same canonical bytes)."""
        if not payloads:
            return
        now = time.time()
        with self._lock:
            self._conn.executemany(
                "INSERT OR REPLACE INTO results "
                "(point_key, payload, created_at) VALUES (?, ?, ?)",
                [(key, canonical_json(payload), now)
                 for key, payload in payloads.items()])
            self._conn.commit()

    def result_payloads(self, keys: Sequence[str]
                        ) -> Dict[str, Dict[str, Any]]:
        """Stored payloads for the given content hashes (missing keys
        are simply absent — callers fall back to the run cache)."""
        out: Dict[str, Dict[str, Any]] = {}
        unique = list(dict.fromkeys(keys))
        with self._lock:
            for i in range(0, len(unique), 500):
                chunk = unique[i:i + 500]
                marks = ",".join("?" * len(chunk))
                rows = self._conn.execute(
                    f"SELECT point_key, payload FROM results "
                    f"WHERE point_key IN ({marks})", chunk).fetchall()
                for row in rows:
                    out[row["point_key"]] = json.loads(row["payload"])
        return out

    def result_count(self) -> int:
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) AS n FROM results").fetchone()
        return int(row["n"])
