"""Synchronous HTTP client for the gateway — stdlib ``http.client``.

The HTTP sibling of :class:`~repro.service.client.ServiceClient`: used
by tests, ``tools/gateway_smoke.py`` and the benchmark, and small
enough to read as API documentation. One client holds one keep-alive
connection; typed error replies raise :class:`GatewayError` carrying
the HTTP status and machine ``code`` so callers branch on
``exc.code == "rate-limited"`` instead of string-matching messages.

::

    client = GatewayClient("http://127.0.0.1:8643", api_key=key)
    job = client.submit(["esp-nuca"], ["apache"])["job"]
    for event in client.events(job):      # SSE stream
        ...
    results = client.results(job)["results"]
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Any, Dict, Iterator, List, Optional
from urllib.parse import urlsplit


class GatewayError(Exception):
    """A typed error response (4xx/5xx with an ``error`` object)."""

    def __init__(self, status: int, code: str, message: str,
                 retry_after: Optional[float] = None) -> None:
        super().__init__(f"HTTP {status} [{code}] {message}")
        self.status = status
        self.code = code
        self.detail = message
        self.retry_after = retry_after


class GatewayClient:
    """One keep-alive connection to a running gateway."""

    def __init__(self, base_url: str, api_key: Optional[str] = None,
                 timeout: float = 120.0) -> None:
        split = urlsplit(base_url)
        if split.scheme != "http" or not split.hostname:
            raise ValueError(f"base_url must be http://host:port, "
                             f"got {base_url!r}")
        self.host = split.hostname
        self.port = split.port or 80
        self.api_key = api_key
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    @classmethod
    def wait_until_ready(cls, base_url: str, timeout: float = 60.0,
                         proc=None, api_key: Optional[str] = None
                         ) -> "GatewayClient":
        """Bounded retry/backoff until ``GET /healthz`` answers (the
        gateway's :meth:`ServiceClient.wait_until_ready` counterpart);
        ``proc`` fails fast when the server process dies first."""
        deadline = time.monotonic() + timeout
        delay = 0.05
        while True:
            if proc is not None and proc.poll() is not None:
                raise ConnectionError(
                    f"gateway process exited with code {proc.returncode} "
                    f"before becoming ready")
            client = cls(base_url, api_key=api_key)
            try:
                client.health()
                return client
            except (OSError, GatewayError, ConnectionError) as exc:
                client.close()
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"gateway at {base_url} not ready within "
                        f"{timeout:.0f}s: {exc}") from exc
            time.sleep(min(delay, max(0.0, deadline - time.monotonic())))
            delay = min(delay * 2, 1.0)

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- plumbing ------------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._conn

    def _headers(self) -> Dict[str, str]:
        headers = {"Accept": "application/json"}
        if self.api_key is not None:
            headers["Authorization"] = f"Bearer {self.api_key}"
        return headers

    def _roundtrip(self, method: str, path: str,
                   body: Optional[Dict[str, Any]] = None):
        """One request over the keep-alive connection; returns
        ``(response, raw_bytes)``. Retries once on a stale socket."""
        payload = None
        headers = self._headers()
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=payload, headers=headers)
                resp = conn.getresponse()
                data = resp.read()
                break
            except (http.client.HTTPException, ConnectionError,
                    socket.timeout, OSError):
                self.close()
                if attempt:
                    raise
        return resp, data

    def request(self, method: str, path: str,
                body: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """One request/JSON reply; raises :class:`GatewayError` on a
        typed error status. Retries once on a stale keep-alive socket."""
        resp, data = self._roundtrip(method, path, body)
        return self._decode(resp.status, resp, data)

    def request_text(self, method: str, path: str) -> str:
        """Like :meth:`request` but returns the raw body text (the
        /metrics exposition document is not JSON); still raises a typed
        :class:`GatewayError` on error statuses."""
        resp, data = self._roundtrip(method, path)
        if resp.status >= 400:
            self._decode(resp.status, resp, data)
        return data.decode("utf-8")

    @staticmethod
    def _decode(status: int, resp, data: bytes) -> Dict[str, Any]:
        try:
            obj = json.loads(data.decode("utf-8")) if data else {}
        except ValueError:
            obj = {}
        if status >= 400:
            err = obj.get("error") or {}
            retry = resp.getheader("Retry-After")
            raise GatewayError(status, err.get("code", "unknown"),
                               err.get("message", f"HTTP {status}"),
                               retry_after=float(retry) if retry else None)
        return obj

    # -- endpoints -----------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self.request("GET", "/healthz")

    def readyz(self) -> Dict[str, Any]:
        """The readiness verdict ``{"ready": bool, "checks": {...}}``.
        Unlike :meth:`request`, a 503 (not ready) is a *answer*, not an
        error — the body is returned either way."""
        resp, data = self._roundtrip("GET", "/readyz")
        try:
            obj = json.loads(data.decode("utf-8")) if data else {}
        except ValueError:
            obj = {}
        if not isinstance(obj, dict):
            obj = {}
        obj.setdefault("ready", resp.status == 200)
        return obj

    def metrics(self) -> str:
        """The Prometheus text exposition document from ``/metrics``."""
        return self.request_text("GET", "/metrics")

    def openapi(self) -> Dict[str, Any]:
        return self.request("GET", "/openapi.json")

    def status(self) -> Dict[str, Any]:
        return self.request("GET", "/v1/status")

    def submit(self, architectures: List[str], workloads: List[str],
               seeds: Optional[List[int]] = None,
               settings: Optional[Dict[str, Any]] = None,
               priority: int = 0, check: int = 0) -> Dict[str, Any]:
        body: Dict[str, Any] = {"architectures": architectures,
                                "workloads": workloads,
                                "priority": priority}
        if seeds is not None:
            body["seeds"] = seeds
        if settings is not None:
            body["settings"] = settings
        if check:
            body["check"] = check
        return self.request("POST", "/v1/jobs", body)

    def jobs(self, limit: int = 100) -> List[Dict[str, Any]]:
        return self.request("GET", f"/v1/jobs?limit={limit}")["jobs"]

    def job(self, job_id: str, points: bool = False) -> Dict[str, Any]:
        suffix = "?points=1" if points else ""
        return self.request("GET", f"/v1/jobs/{job_id}{suffix}")

    def results(self, job_id: str) -> Dict[str, Any]:
        return self.request("GET", f"/v1/jobs/{job_id}/results")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self.request("DELETE", f"/v1/jobs/{job_id}")

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.1) -> Dict[str, Any]:
        """Poll until the job is terminal; returns the final snapshot."""
        deadline = time.monotonic() + timeout
        while True:
            snap = self.job(job_id)
            if snap["state"] in ("done", "failed", "cancelled"):
                return snap
            if time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id} still {snap['state']} "
                                   f"after {timeout:.0f}s")
            time.sleep(poll)

    def events(self, job_id: str) -> Iterator[Dict[str, Any]]:
        """Stream SSE frames for a job until the ``end`` frame (the
        server closes the connection after it). Uses a dedicated
        connection — the stream consumes it."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/events",
                         headers=self._headers())
            resp = conn.getresponse()
            if resp.status >= 400:
                raise self._error_from_stream(resp)
            buffer = b""
            while True:
                chunk = resp.read(4096)
                if not chunk and b"\n\n" not in buffer:
                    return
                buffer += chunk
                while b"\n\n" in buffer:
                    frame, buffer = buffer.split(b"\n\n", 1)
                    for line in frame.splitlines():
                        if line.startswith(b"data: "):
                            event = json.loads(line[6:].decode("utf-8"))
                            yield event
                            if event.get("event") == "end":
                                return
        finally:
            conn.close()

    @staticmethod
    def _error_from_stream(resp) -> GatewayError:
        try:
            obj = json.loads(resp.read().decode("utf-8"))
            err = obj.get("error") or {}
        except ValueError:
            err = {}
        return GatewayError(resp.status, err.get("code", "unknown"),
                            err.get("message", f"HTTP {resp.status}"))
