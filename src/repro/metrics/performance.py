"""Performance aggregation across perturbed runs.

The paper reports, per (architecture, workload) point, the mean over
several pseudo-randomly perturbed runs with a 95% confidence interval;
its stability headline is the *variance of normalized performance*
across a benchmark set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.common.stats import confidence_interval95, mean, variance
from repro.sim.request import Supplier
from repro.sim.results import SimResult


@dataclass
class AggregateResult:
    """Mean behaviour of one (architecture, workload) data point."""

    architecture: str
    workload: str
    runs: List[SimResult] = field(default_factory=list)

    def add(self, result: SimResult) -> None:
        self.runs.append(result)

    @property
    def performance(self) -> float:
        return mean([r.performance for r in self.runs])

    @property
    def performance_ci95(self) -> float:
        return confidence_interval95([r.performance for r in self.runs])

    @property
    def average_access_time(self) -> float:
        return mean([r.average_access_time for r in self.runs])

    @property
    def offchip_per_kilo_access(self) -> float:
        return mean([r.offchip_accesses_per_kilo_access for r in self.runs])

    @property
    def onchip_latency(self) -> float:
        return mean([r.onchip_latency for r in self.runs])

    def access_time_component(self, supplier: Supplier) -> float:
        return mean([r.access_time_component(supplier) for r in self.runs])

    def normalized_to(self, baseline: "AggregateResult") -> float:
        return self.performance / baseline.performance


def normalize_map(results: Dict[str, AggregateResult],
                  baseline: str) -> Dict[str, float]:
    """Normalize {architecture: aggregate} to one architecture."""
    base = results[baseline].performance
    return {name: agg.performance / base for name, agg in results.items()}


def variance_of(normalized: Sequence[float]) -> float:
    """The paper's stability metric over a benchmark set."""
    return variance(list(normalized))
