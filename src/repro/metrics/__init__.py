"""Derived metrics: aggregation over seeds, normalization, stability,
per-thread fairness."""

from repro.metrics.decomposition import decompose
from repro.metrics.fairness import group_ipc, ipc_variance, per_core_ipc
from repro.metrics.performance import AggregateResult, normalize_map, variance_of

__all__ = ["AggregateResult", "normalize_map", "variance_of", "decompose",
           "group_ipc", "ipc_variance", "per_core_ipc"]
