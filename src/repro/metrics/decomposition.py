"""Average-access-time decomposition (Figure 6).

Each demand access's full latency is attributed to the component that
supplied the data; dividing by total accesses gives per-component
contributions that stack to the average access time.
"""

from __future__ import annotations

from typing import Dict, List

from repro.metrics.performance import AggregateResult
from repro.sim.request import Supplier

#: Stacking order used by the paper's Figure 6 legend (bottom-up).
COMPONENT_ORDER: List[Supplier] = [
    Supplier.L1_LOCAL,
    Supplier.L1_REMOTE,
    Supplier.L2_LOCAL,
    Supplier.L2_REMOTE,
    Supplier.L2_SHARED,
    Supplier.OFFCHIP,
]


def decompose(aggregate: AggregateResult) -> Dict[Supplier, float]:
    """Per-component contribution (cycles) to the average access time."""
    return {supplier: aggregate.access_time_component(supplier)
            for supplier in COMPONENT_ORDER}


def total_access_time(components: Dict[Supplier, float]) -> float:
    return sum(components.values())
