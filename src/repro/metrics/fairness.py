"""Per-thread fairness metrics (Section 6.3).

For the hybrid multiprogrammed workloads the paper argues through
per-thread numbers: "The average performance observed for each thread
for this architecture [shared] ... shows a high variability. ASR has a
100% higher variance in average IPC than ESP-NUCA. Cooperative Caching
has a 10% higher IPC variance and 110% in D-NUCA." These helpers
compute exactly those quantities from a run's per-core counters.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.common.stats import variance
from repro.sim.results import SimResult


def per_core_ipc(result: SimResult) -> List[float]:
    """IPC of every core that executed instructions."""
    ipcs = []
    for instructions, cycles in zip(result.per_core_instructions,
                                    result.per_core_cycles):
        if instructions and cycles:
            ipcs.append(instructions / cycles)
    return ipcs


def ipc_variance(result: SimResult) -> float:
    """Variance of per-core IPC — the paper's Section 6.3 metric.

    Valid for multiprogrammed workloads ("because there is no
    synchronization, we could use the average IPC of all cores as a
    valid performance metric").
    """
    ipcs = per_core_ipc(result)
    if len(ipcs) < 2:
        return 0.0
    return variance(ipcs)


def group_ipc(result: SimResult, cores: Sequence[int]) -> float:
    """Mean IPC of a core group (e.g. the two halves of a hybrid)."""
    ipcs = []
    for core in cores:
        instructions = result.per_core_instructions[core]
        cycles = result.per_core_cycles[core]
        if instructions and cycles:
            ipcs.append(instructions / cycles)
    if not ipcs:
        return 0.0
    return sum(ipcs) / len(ipcs)


def slowdown_fairness(result: SimResult, solo_ipcs: Dict[int, float]) -> float:
    """Min/max ratio of per-core relative progress vs solo execution —
    1.0 is perfectly fair, 0 means a thread is starved."""
    ratios = []
    for core, solo in solo_ipcs.items():
        instructions = result.per_core_instructions[core]
        cycles = result.per_core_cycles[core]
        if not instructions or not cycles or solo <= 0:
            continue
        ratios.append((instructions / cycles) / solo)
    if not ratios:
        return 1.0
    return min(ratios) / max(ratios)
