"""Token-counting coherence substrate (Section 2.3).

The paper uses token coherence with a TokenD performance policy: token
counting guarantees correctness, and the directory-like performance
policy lets controllers forward requests straight to current holders.
This package provides the functional equivalent — an authoritative
per-block token ledger with conservation invariants — plus the latency
rules for collection/forwarding used by the timing layer.
"""

from repro.coherence.tokens import BlockState, TokenLedger

__all__ = ["BlockState", "TokenLedger"]
