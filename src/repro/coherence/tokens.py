"""Authoritative token ledger.

Token-coherence rules (Martin, 2003), as used here:

* every block has a fixed total of T tokens (``2 * num_cores``: enough
  for every L1 plus the L2 copies ESP-NUCA can create);
* holding >= 1 token with data permits reading;
* writing requires all T tokens (so all other copies are invalidated);
* tokens never appear or disappear — the ledger asserts conservation.

Token *counts* live inside the cache line objects (``L1Line.tokens``,
``CacheBlock.tokens``); the ledger owns the directory of where copies
are and is the only code allowed to move counts around. The simulated
system calls the ledger first and then mirrors the result in the cache
structures (install/remove), which the ledger cross-checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.cache.block import CacheBlock
from repro.cache.l1 import L1Line
from repro.common.statsreg import Scope


@dataclass
class L2Holding:
    bank_id: int
    set_index: int
    entry: CacheBlock


@dataclass
class BlockState:
    """Where a block's T tokens currently are."""

    memory_tokens: int
    l1: Dict[int, L1Line] = field(default_factory=dict)
    l2: Dict[int, L2Holding] = field(default_factory=dict)  # keyed by id(entry)

    def on_chip(self) -> bool:
        return bool(self.l1) or bool(self.l2)

    def chip_tokens(self) -> int:
        return (sum(line.tokens for line in self.l1.values())
                + sum(h.entry.tokens for h in self.l2.values()))


class TokenConservationError(AssertionError):
    pass


# Shared empty result for the (dominant) no-L2-copy case; callers only
# iterate or truth-test the returned list, never mutate it.
_NO_HOLDINGS: List[L2Holding] = []


class _StateMap(dict):
    """Block-state table with inline creation: ``states[block]`` runs at
    C dict speed for known blocks and materializes fresh all-in-memory
    state via ``__missing__`` otherwise — the ledger's hot paths hit
    this once or more per miss."""

    __slots__ = ("total_tokens",)

    def __init__(self, total_tokens: int) -> None:
        super().__init__()
        self.total_tokens = total_tokens

    def __missing__(self, block: int) -> BlockState:
        state = self[block] = BlockState(memory_tokens=self.total_tokens)
        return state


class TokenLedger:
    def __init__(self, num_cores: int, checking: bool = False) -> None:
        self.num_cores = num_cores
        self.total_tokens = 2 * num_cores
        self.checking = checking
        # Observation hook (docs/engine.md): take_from_l1 is the single
        # chokepoint through which L1 token counts ever decrease, so
        # the vectorized engine's mirror journal subscribes here to
        # learn when a line's full-token status (write locality) may
        # have lapsed. The journal object itself is installed (duck
        # typed: ``runs``/``dirty``/``_stale``) and its field updates
        # are inlined in take_from_l1 — the hook fires once per token
        # withdrawal, too hot for a method call.
        self.l1_journal = None
        self._states: Dict[int, BlockState] = _StateMap(self.total_tokens)
        # Statistics scope, mounted at ``coherence`` by the system.
        self.stats = Scope()
        self._token_steals = self.stats.counter("token_steals")
        self._blocks_left_chip = self.stats.counter("blocks_left_chip")

    @property
    def token_steals(self) -> int:
        """Times a new reader had to take a token from a live copy
        because memory's pool for the block was empty."""
        return self._token_steals.value

    @property
    def blocks_left_chip(self) -> int:
        """Blocks whose last on-chip copy disappeared (state forgotten)."""
        return self._blocks_left_chip.value

    # -- state access ----------------------------------------------------------

    def state(self, block: int) -> BlockState:
        return self._states[block]  # _StateMap creates on first touch

    def known_blocks(self) -> Iterator[int]:
        return iter(self._states)

    def on_chip(self, block: int) -> bool:
        state = self._states.get(block)
        return state is not None and state.on_chip()

    def l1_holders(self, block: int) -> List[int]:
        state = self._states.get(block)
        return list(state.l1) if state else []

    def l2_holdings(self, block: int) -> List[L2Holding]:
        state = self._states.get(block)
        if state is None or not state.l2:
            return _NO_HOLDINGS  # shared: callers only iterate/test it
        return list(state.l2.values())

    # -- token movement primitives ----------------------------------------------

    def take_from_memory(self, block: int, amount: Optional[int] = None) -> int:
        """Remove tokens from memory's pool (all of them by default)."""
        state = self._states[block]
        taken = state.memory_tokens if amount is None else min(amount, state.memory_tokens)
        state.memory_tokens -= taken
        if self.checking:
            self._check(block)
        return taken

    def give_to_memory(self, block: int, amount: int) -> None:
        state = self._states[block]
        state.memory_tokens += amount
        if self.checking:
            self._check(block)
        if not state.on_chip() and state.memory_tokens == self.total_tokens:
            # Block fully off chip: forget it (classification resets too,
            # handled by the caller via `left_chip`).
            self._blocks_left_chip.value += 1
            del self._states[block]

    def take_from_l1(self, block: int, core: int, amount: Optional[int] = None) -> int:
        """Take tokens from an L1 line; caller invalidates the line if
        it reaches zero tokens."""
        state = self._states[block]
        line = state.l1[core]
        taken = line.tokens if amount is None else min(amount, line.tokens)
        line.tokens -= taken
        if line.tokens == 0:
            del state.l1[core]
        j = self.l1_journal
        if taken and j is not None:
            # Inlined MirrorJournal._on_tokens_taken (keep in sync).
            run = j.runs[core]
            if run is not None and block in run:
                j.dirty.add(core)
            j._stale[core] = True
        if self.checking:
            self._check(block)
        return taken

    def take_from_l2(self, block: int, entry: CacheBlock,
                     amount: Optional[int] = None) -> int:
        """Take tokens from an L2 entry; caller removes it from its bank
        if it reaches zero tokens."""
        state = self._states[block]
        if id(entry) not in state.l2:  # caller bug: entry never registered
            raise KeyError(f"L2 entry for block {block:#x} is not registered")
        taken = entry.tokens if amount is None else min(amount, entry.tokens)
        entry.tokens -= taken
        if entry.tokens == 0:
            del state.l2[id(entry)]
        if self.checking:
            self._check(block)
        return taken

    # -- registration ---------------------------------------------------------------

    def register_l1(self, block: int, core: int, line: L1Line) -> None:
        state = self._states[block]
        if line.tokens <= 0:
            raise TokenConservationError("an L1 copy must hold >= 1 token")
        state.l1[core] = line
        if self.checking:
            self._check(block)

    def register_l2(self, block: int, bank_id: int, set_index: int,
                    entry: CacheBlock) -> None:
        state = self._states[block]
        if entry.tokens <= 0:
            raise TokenConservationError("an L2 copy must hold >= 1 token")
        state.l2[id(entry)] = L2Holding(bank_id, set_index, entry)
        if self.checking:
            self._check(block)

    def forget_l1(self, block: int, core: int) -> None:
        """Drop directory knowledge of a zero-token line (already taken)."""
        state = self._states[block]
        state.l1.pop(core, None)

    def forget_l2(self, block: int, entry: CacheBlock) -> None:
        state = self._states[block]
        state.l2.pop(id(entry), None)

    # -- composite helpers -------------------------------------------------------------

    def steal_one_token(self, block: int) -> Optional[Tuple[str, object]]:
        """Find a holder that can spare one token for a new reader when
        memory has none.

        Returns ``('l1', core)`` or ``('l2', entry)`` describing where to
        take the token from, preferring copies with spare tokens so no
        copy dies; returns None when a copy must be sacrificed (the
        caller picks a victim copy and invalidates it).
        """
        state = self._states[block]
        for holding in state.l2.values():
            if holding.entry.tokens > 1:
                self._token_steals.value += 1
                return "l2", holding.entry
        for core, line in state.l1.items():
            if line.tokens > 1:
                self._token_steals.value += 1
                return "l1", core
        return None

    # -- invariants ----------------------------------------------------------------

    def _check(self, block: int) -> None:
        """Relaxed mid-operation check: tokens may be *in flight*
        between a take and the matching grant, so only bounds are
        enforced here; exact conservation is asserted by
        ``check_block``/``check_all`` at quiesced points."""
        if not self.checking:
            return
        state = self._states.get(block)
        if state is None:
            return
        total = state.memory_tokens + state.chip_tokens()
        if not 0 <= total <= self.total_tokens:
            raise TokenConservationError(
                f"block {block:#x}: {total} tokens outside [0, {self.total_tokens}]")
        if state.memory_tokens < 0:
            raise TokenConservationError(f"block {block:#x}: negative memory tokens")

    def check_block(self, block: int) -> None:
        state = self._states.get(block)
        if state is None:
            return
        total = state.memory_tokens + state.chip_tokens()
        if total != self.total_tokens:
            raise TokenConservationError(
                f"block {block:#x}: {total} tokens, expected {self.total_tokens}")
        if state.memory_tokens < 0:
            raise TokenConservationError(f"block {block:#x}: negative memory tokens")
        for core, line in state.l1.items():
            if line.block != block or line.tokens <= 0:
                raise TokenConservationError(
                    f"block {block:#x}: bad L1 holding at core {core}")
        for holding in state.l2.values():
            if holding.entry.block != block or holding.entry.tokens <= 0:
                raise TokenConservationError(
                    f"block {block:#x}: bad L2 holding in bank {holding.bank_id}")

    def check_all(self) -> None:
        for block in list(self._states):
            self.check_block(block)
