"""2D-mesh network-on-chip substrate (Table 2 'Network' rows)."""

from repro.noc.message import Message, MessageKind
from repro.noc.network import Network
from repro.noc.topology import MeshTopology

__all__ = ["Message", "MessageKind", "Network", "MeshTopology"]
