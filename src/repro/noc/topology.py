"""Mesh topology and dimension-order (X-then-Y) routing.

The simulated chip (Figure 1a) is a ``columns x rows`` mesh with one
router per core; each router hosts the core's L1 and four L2 banks.
Memory controllers sit on the left and right edges of the mesh and are
reachable from any router in the corresponding edge column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.common.config import SystemConfig


@dataclass(frozen=True)
class Coord:
    col: int
    row: int


class MeshTopology:
    """Static geometry queries: coordinates, routes, hop counts."""

    def __init__(self, config: SystemConfig) -> None:
        self.columns = config.noc.columns
        self.rows = config.noc.rows
        self.banks_per_router = config.noc.banks_per_router
        self.num_routers = self.columns * self.rows
        self.num_controllers = config.mem.num_controllers
        if self.num_controllers not in (1, 2):
            raise ValueError("the layout supports 1 or 2 memory controllers")
        # Dense all-pairs tables: the timing layer queries these on
        # every message, so they are precomputed (the mesh is tiny).
        self._hops = [[self._compute_hops(s, d) for d in range(self.num_routers)]
                      for s in range(self.num_routers)]
        self._routes = [[tuple(self._compute_route(s, d))
                         for d in range(self.num_routers)]
                        for s in range(self.num_routers)]
        self._controller_dist = [
            [self._compute_controller_distance(c, r)
             for r in range(self.num_routers)]
            for c in range(self.num_controllers)]
        self._controller_hops = [
            min(((self._controller_dist[c][r], c)
                 for c in range(self.num_controllers)))[::-1]
            for r in range(self.num_routers)]

    # -- placement ---------------------------------------------------------

    def router_coord(self, router: int) -> Coord:
        if not 0 <= router < self.num_routers:
            raise ValueError(f"router {router} out of range")
        return Coord(router % self.columns, router // self.columns)

    def router_of_core(self, core: int) -> int:
        """Cores are numbered router-major: core i sits at router i."""
        return core

    def router_of_bank(self, bank: int) -> int:
        return bank // self.banks_per_router

    def banks_of_router(self, router: int) -> Tuple[int, ...]:
        base = router * self.banks_per_router
        return tuple(range(base, base + self.banks_per_router))

    # -- routing -----------------------------------------------------------

    def hops(self, src_router: int, dst_router: int) -> int:
        """Manhattan distance — the hop count of a DOR route."""
        return self._hops[src_router][dst_router]

    def dor_route(self, src_router: int, dst_router: int) -> Tuple[int, ...]:
        """The routers traversed by X-then-Y dimension-order routing,
        including source and destination."""
        return self._routes[src_router][dst_router]

    def _compute_hops(self, src_router: int, dst_router: int) -> int:
        a, b = self.router_coord(src_router), self.router_coord(dst_router)
        return abs(a.col - b.col) + abs(a.row - b.row)

    def _compute_route(self, src_router: int, dst_router: int) -> List[int]:
        a, b = self.router_coord(src_router), self.router_coord(dst_router)
        path = [src_router]
        col, row = a.col, a.row
        while col != b.col:
            col += 1 if b.col > col else -1
            path.append(row * self.columns + col)
        while row != b.row:
            row += 1 if b.row > row else -1
            path.append(row * self.columns + col)
        return path

    # -- memory controllers --------------------------------------------------

    def controller_hops(self, router: int) -> Tuple[int, int]:
        """(controller id, hops) for the nearest memory controller.

        Controller 0 hangs off the left edge (column 0), controller 1
        off the right edge (last column); reaching one costs the hops to
        its edge column plus one for the controller link itself. Ties
        prefer controller 0. Precomputed: the off-chip path queries this
        on every memory request.
        """
        return self._controller_hops[router]

    def controller_distance(self, controller: int, router: int) -> int:
        """Hops between a specific controller and a router."""
        if not 0 <= controller < self.num_controllers:
            raise ValueError(f"controller {controller} out of range")
        return self._controller_dist[controller][router]

    def _compute_controller_distance(self, controller: int, router: int) -> int:
        coord = self.router_coord(router)
        if controller == 0:
            return coord.col + 1
        return (self.columns - 1 - coord.col) + 1
