"""Timing model of the mesh: per-hop latency plus link contention.

Each directed link keeps a ``busy_until`` reservation. A message
traversing a link is serialized behind earlier traffic and occupies the
link for ``flits`` cycles. With the 5-cycle hop latency of Table 2
(3-cycle router + 2-cycle link) an uncontended traversal of ``h`` hops
costs ``5 * h`` cycles; contention adds queueing on top.

The model deliberately ignores virtual channels and buffer depth: at
the injection rates cache studies produce on a 4x2 mesh, serialization
at links is the first-order congestion effect.

Statistics live in the network's :class:`~repro.common.statsreg.Scope`
(mounted at ``noc`` by the system): aggregate ``messages`` / ``flits``
/ ``hops`` / ``queueing``, per-kind counts under ``kinds.<kind>``, and
per-directed-link traffic under ``links.r<src>-r<dst>`` (``messages`` +
``queueing``) — the breakdown that shows *where* the mesh saturates.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.common.config import SystemConfig
from repro.common.statsreg import Counter, Scope
from repro.noc.message import FLITS, Message, MessageKind
from repro.noc.topology import MeshTopology


class Network:
    """Mesh timing: ``deliver`` computes the arrival time of a message."""

    def __init__(self, config: SystemConfig, topology: MeshTopology | None = None,
                 model_contention: bool = True) -> None:
        self.config = config
        self.topology = topology or MeshTopology(config)
        self.hop_latency = config.noc.hop_latency
        self.model_contention = model_contention
        # Per (src, dst) pair: the tuple of directed links of the DOR
        # route — precomputed, the timing layer walks one per message.
        n = self.topology.num_routers
        self._links = [[self._route_links(s, d) for d in range(n)]
                       for s in range(n)]
        # Statistics.
        self.stats = Scope()
        self._messages = self.stats.counter("messages")
        self._flits = self.stats.counter("flits")
        self._hops = self.stats.counter("hops")
        self._queueing = self.stats.counter("queueing")
        kind_scope = self.stats.scope("kinds")
        self._kind_counts: Dict[MessageKind, Counter] = {
            k: kind_scope.counter(k.name.lower()) for k in MessageKind}
        # Every directed link any DOR route uses, in a stable order.
        link_scope = self.stats.scope("links")
        self._link_stats: Dict[Tuple[int, int], Tuple[Counter, Counter]] = {}
        for src in range(n):
            for dst in range(n):
                for link in self._links[src][dst]:
                    if link not in self._link_stats:
                        ls = link_scope.scope(f"r{link[0]}-r{link[1]}")
                        self._link_stats[link] = (ls.counter("messages"),
                                                  ls.counter("queueing"))
        # Per-route latency tables (docs/performance.md): each directed
        # link gets a dense integer id into a busy-until list, and each
        # (src, dst) route becomes a tuple of (link id, message counter,
        # queueing counter) triplets — ``arrival`` then walks plain
        # tuples and list slots instead of hashing link keys per hop.
        link_ids = {link: i for i, link in enumerate(self._link_stats)}
        self._link_busy = [0] * len(link_ids)
        self._route_stats = [
            [tuple((link_ids[link],) + self._link_stats[link]
                   for link in self._links[s][d]) for d in range(n)]
            for s in range(n)]

    def _route_links(self, src: int, dst: int) -> Tuple[Tuple[int, int], ...]:
        route = self.topology.dor_route(src, dst)
        return tuple(zip(route[:-1], route[1:]))

    # -- legacy attribute API (reads through to the registry) ---------------

    @property
    def messages_sent(self) -> int:
        return self._messages.value

    @property
    def flits_sent(self) -> int:
        return self._flits.value

    @property
    def total_hops(self) -> int:
        return self._hops.value

    @property
    def total_queueing(self) -> int:
        return self._queueing.value

    @property
    def kind_counts(self) -> Dict[MessageKind, int]:
        return {k: c.value for k, c in self._kind_counts.items()}

    def reset_stats(self) -> None:
        self.stats.reset()

    def latency(self, src_router: int, dst_router: int) -> int:
        """Uncontended latency between two routers."""
        return self.hop_latency * self.topology.hops(src_router, dst_router)

    def deliver(self, kind: MessageKind, src_router: int, dst_router: int,
                depart: int) -> Message:
        """Route a message and return it with ``arrive`` filled in."""
        msg = Message(kind=kind, src_router=src_router, dst_router=dst_router,
                      depart=depart)
        msg.hops = self.topology.hops(src_router, dst_router)
        msg.arrive = self.arrival(kind, src_router, dst_router, depart)
        return msg

    def arrival(self, kind: MessageKind, src_router: int, dst_router: int,
                depart: int) -> int:
        """Arrival time of a message (the timing layer's fast path)."""
        route = self._route_stats[src_router][dst_router]
        hops = len(route)
        flits = FLITS[kind]
        now = depart
        if self.model_contention and hops:
            # Per-link serialization with a bounded wait: the simulator
            # orders events at reference granularity, so reservations
            # can be stamped out of time order; an uncapped busy-until
            # would then charge phantom waits against earlier-stamped
            # traffic. The cap (a few messages' worth of flits) keeps
            # genuine burst serialization while bounding the skew error.
            busy = self._link_busy
            hop_latency = self.hop_latency
            queue = 0
            cap = 4 * flits
            for link_id, msg_c, queue_c in route:
                msg_c.value += 1
                ready = busy[link_id]
                if ready > now:
                    wait = ready - now
                    if wait > cap:
                        wait = cap
                    queue += wait
                    queue_c.value += wait
                    now += wait
                if ready > now + flits:
                    busy[link_id] = ready  # keep the later reservation
                else:
                    busy[link_id] = now + flits
                now += hop_latency
            self._queueing.value += queue
        else:
            now += self.hop_latency * hops
            if hops:
                for _, msg_c, _ in route:
                    msg_c.value += 1
        self._messages.value += 1
        self._flits.value += flits * hops
        self._hops.value += hops
        self._kind_counts[kind].value += 1
        return now
