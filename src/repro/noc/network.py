"""Timing model of the mesh: per-hop latency plus link contention.

Each directed link keeps a ``busy_until`` reservation. A message
traversing a link is serialized behind earlier traffic and occupies the
link for ``flits`` cycles. With the 5-cycle hop latency of Table 2
(3-cycle router + 2-cycle link) an uncontended traversal of ``h`` hops
costs ``5 * h`` cycles; contention adds queueing on top.

The model deliberately ignores virtual channels and buffer depth: at
the injection rates cache studies produce on a 4x2 mesh, serialization
at links is the first-order congestion effect.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.common.config import SystemConfig
from repro.noc.message import FLITS, Message, MessageKind
from repro.noc.topology import MeshTopology


class Network:
    """Mesh timing: ``deliver`` computes the arrival time of a message."""

    def __init__(self, config: SystemConfig, topology: MeshTopology | None = None,
                 model_contention: bool = True) -> None:
        self.config = config
        self.topology = topology or MeshTopology(config)
        self.hop_latency = config.noc.hop_latency
        self.model_contention = model_contention
        self._link_busy: Dict[Tuple[int, int], int] = {}
        # Per (src, dst) pair: the tuple of directed links of the DOR
        # route — precomputed, the timing layer walks one per message.
        n = self.topology.num_routers
        self._links = [[self._route_links(s, d) for d in range(n)]
                       for s in range(n)]
        # Aggregate statistics.
        self.messages_sent = 0
        self.flits_sent = 0
        self.total_hops = 0
        self.total_queueing = 0
        self.kind_counts: Dict[MessageKind, int] = {k: 0 for k in MessageKind}

    def _route_links(self, src: int, dst: int) -> Tuple[Tuple[int, int], ...]:
        route = self.topology.dor_route(src, dst)
        return tuple(zip(route[:-1], route[1:]))

    def reset_stats(self) -> None:
        self.messages_sent = 0
        self.flits_sent = 0
        self.total_hops = 0
        self.total_queueing = 0
        self.kind_counts = {k: 0 for k in MessageKind}

    def latency(self, src_router: int, dst_router: int) -> int:
        """Uncontended latency between two routers."""
        return self.hop_latency * self.topology.hops(src_router, dst_router)

    def deliver(self, kind: MessageKind, src_router: int, dst_router: int,
                depart: int) -> Message:
        """Route a message and return it with ``arrive`` filled in."""
        msg = Message(kind=kind, src_router=src_router, dst_router=dst_router,
                      depart=depart)
        msg.hops = self.topology.hops(src_router, dst_router)
        msg.arrive = self.arrival(kind, src_router, dst_router, depart)
        return msg

    def arrival(self, kind: MessageKind, src_router: int, dst_router: int,
                depart: int) -> int:
        """Arrival time of a message (the timing layer's fast path)."""
        links = self._links[src_router][dst_router]
        hops = len(links)
        flits = FLITS[kind]
        now = depart
        if self.model_contention and hops:
            # Per-link serialization with a bounded wait: the simulator
            # orders events at reference granularity, so reservations
            # can be stamped out of time order; an uncapped busy-until
            # would then charge phantom waits against earlier-stamped
            # traffic. The cap (a few messages' worth of flits) keeps
            # genuine burst serialization while bounding the skew error.
            busy = self._link_busy
            queue = 0
            cap = 4 * flits
            for link in links:
                ready = busy.get(link, 0)
                if ready > now:
                    wait = ready - now
                    if wait > cap:
                        wait = cap
                    queue += wait
                    now += wait
                if ready > now + flits:
                    busy[link] = ready  # keep the later reservation
                else:
                    busy[link] = now + flits
                now += self.hop_latency
            self.total_queueing += queue
        else:
            now += self.hop_latency * hops
        self.messages_sent += 1
        self.flits_sent += flits * max(hops, 1)
        self.total_hops += hops
        self.kind_counts[kind] += 1
        return now
