"""On-chip message descriptors.

Messages are bookkeeping records for the timing layer: the functional
layer resolves what happens, while ``Message`` objects carry latency
accounting and let the network model charge per-hop contention.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class MessageKind(enum.Enum):
    REQUEST = "request"          # L1 -> L2 / L2 -> L2 control, 1 flit
    RESPONSE_DATA = "data"       # 64B data payload, 5 flits on 128-bit links
    RESPONSE_CTRL = "ack"        # token/ack response, 1 flit
    WRITEBACK = "writeback"      # data eviction traffic
    FORWARD = "forward"          # protocol forwarding between controllers


#: Flit counts on the 128-bit links of Table 2 (64-byte payload = 4
#: data flits + 1 head flit).
FLITS = {
    MessageKind.REQUEST: 1,
    MessageKind.RESPONSE_DATA: 5,
    MessageKind.RESPONSE_CTRL: 1,
    MessageKind.WRITEBACK: 5,
    MessageKind.FORWARD: 1,
}

# Dense per-member fields for hot paths: ``kind.idx`` (enumeration
# order) indexes flat arrays and ``kind.flits`` replaces a dict hash —
# Enum.__hash__ is a Python-level call that shows up once per message
# otherwise.
for _i, _kind in enumerate(MessageKind):
    _kind.idx = _i
    _kind.flits = FLITS[_kind]


@dataclass
class Message:
    kind: MessageKind
    src_router: int
    dst_router: int
    depart: int
    arrive: int = 0
    hops: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def flits(self) -> int:
        return FLITS[self.kind]
