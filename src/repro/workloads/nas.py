"""NAS Parallel Benchmarks (OpenMP, Section 6.4).

The paper: "The sharing degree of these applications is relatively
limited, with large numbers of references and large percentages of
cache capacity devoted to private data", with >200 MB working sets.

Capacity regime: per-thread hot sets around the private-partition size
(16384 blocks) with all eight cores active, so the shared pool offers
no extra effective capacity (131072 / 8 = 16384 per core) — miss rates
are similar across organizations and *latency* decides, which is why
private-derived architectures win this suite. The >200 MB cold part of
the working sets appears as per-core streaming (compulsory) traffic.
"""

from __future__ import annotations

from typing import List

from repro.workloads.base import WorkloadSpec

ALL_CORES = tuple(range(8))

NAS_WORKLOADS: List[WorkloadSpec] = [
    WorkloadSpec(
        name="BT", family="nas", active_cores=ALL_CORES,
        private_footprint_blocks=18_000, shared_footprint_blocks=3_000,
        shared_fraction=0.06, write_fraction=0.30, dep_fraction=0.06,
        mean_gap=3, locality=1.3, reuse_fraction=0.70, reuse_window=256,
        stream_fraction=0.20,
        description="block tridiagonal solver: dense line sweeps",
    ),
    WorkloadSpec(
        name="CG", family="nas", active_cores=ALL_CORES,
        private_footprint_blocks=22_000, shared_footprint_blocks=5_000,
        shared_fraction=0.12, shared_locality=1.9, write_fraction=0.18, dep_fraction=0.20,
        mean_gap=2, locality=1.2, reuse_fraction=0.62, reuse_window=160,
        stream_fraction=0.10,
        description="conjugate gradient: sparse matvec, indirect indexing",
    ),
    WorkloadSpec(
        name="FT", family="nas", active_cores=ALL_CORES,
        private_footprint_blocks=20_000, shared_footprint_blocks=4_000,
        shared_fraction=0.08, write_fraction=0.30, dep_fraction=0.04,
        mean_gap=2, locality=1.2, reuse_fraction=0.60, reuse_window=192,
        stream_fraction=0.45,
        description="3D FFT: long strided/streaming transposes",
    ),
    WorkloadSpec(
        name="IS", family="nas", active_cores=ALL_CORES,
        private_footprint_blocks=16_000, shared_footprint_blocks=5_000,
        shared_fraction=0.10, shared_locality=1.9, write_fraction=0.35, dep_fraction=0.08,
        mean_gap=2, locality=1.1, reuse_fraction=0.58, reuse_window=128,
        stream_fraction=0.35,
        description="integer sort: bucketed counting, scatter writes",
    ),
    WorkloadSpec(
        name="LU", family="nas", active_cores=ALL_CORES,
        private_footprint_blocks=15_000, shared_footprint_blocks=3_000,
        shared_fraction=0.08, write_fraction=0.28, dep_fraction=0.08,
        mean_gap=3, locality=1.5, reuse_fraction=0.72, reuse_window=256,
        stream_fraction=0.10,
        description="LU factorization: wavefront with good reuse",
    ),
    WorkloadSpec(
        name="MG", family="nas", active_cores=ALL_CORES,
        private_footprint_blocks=22_000, shared_footprint_blocks=4_000,
        shared_fraction=0.10, shared_locality=1.9, write_fraction=0.25, dep_fraction=0.06,
        mean_gap=2, locality=1.3, reuse_fraction=0.64, reuse_window=192,
        stream_fraction=0.30,
        description="multigrid: strided sweeps over grid hierarchies",
    ),
    WorkloadSpec(
        name="SP", family="nas", active_cores=ALL_CORES,
        private_footprint_blocks=18_000, shared_footprint_blocks=3_000,
        shared_fraction=0.06, write_fraction=0.30, dep_fraction=0.06,
        mean_gap=3, locality=1.3, reuse_fraction=0.68, reuse_window=224,
        stream_fraction=0.25,
        description="scalar pentadiagonal solver: line sweeps",
    ),
    WorkloadSpec(
        name="UA", family="nas", active_cores=ALL_CORES,
        private_footprint_blocks=17_000, shared_footprint_blocks=4_000,
        shared_fraction=0.09, write_fraction=0.22, dep_fraction=0.15,
        mean_gap=3, locality=1.4, reuse_fraction=0.68, reuse_window=192,
        stream_fraction=0.08,
        phase_blocks=6_000, phase_period=12_000,
        description="unstructured adaptive mesh: irregular, phase changes",
    ),
]
