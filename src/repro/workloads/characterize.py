"""Trace characterization — validating calibration claims.

DESIGN.md §7 argues the synthetic workloads preserve the paper's
regimes through a handful of first-order quantities: sharing degree,
write ratio, footprint-to-capacity ratios, stack-distance profile.
This module measures those quantities *from a trace*, so the claim
"apache's generator produces ~40% shared accesses with a hot head" is
checkable rather than asserted (see tests/test_characterize.py).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.sim.cpu import TraceItem, TraceKind
from repro.workloads.base import (
    OS_REGION_BASE,
    SHARED_REGION_BASE,
    STREAM_REGION_BASE,
)


def region_of(block: int) -> str:
    if block >= STREAM_REGION_BASE:
        return "stream"
    if block >= OS_REGION_BASE:
        return "os"
    if block >= SHARED_REGION_BASE:
        return "shared"
    return "private"


@dataclass
class CoreProfile:
    """Per-core measurements."""

    references: int = 0
    writes: int = 0
    dep_loads: int = 0
    region_refs: Dict[str, int] = field(default_factory=dict)
    distinct_blocks: int = 0
    #: stack-distance histogram, bucketed by powers of two; -1 = cold.
    stack_histogram: Dict[int, int] = field(default_factory=dict)

    @property
    def write_ratio(self) -> float:
        return self.writes / self.references if self.references else 0.0

    @property
    def dep_ratio(self) -> float:
        return self.dep_loads / self.references if self.references else 0.0

    def region_fraction(self, region: str) -> float:
        if not self.references:
            return 0.0
        return self.region_refs.get(region, 0) / self.references

    def reuse_within(self, distance: int) -> float:
        """Fraction of references whose LRU stack distance is below
        ``distance`` (≈ hit rate of a fully associative cache that
        size)."""
        if not self.references:
            return 0.0
        hits = sum(count for bucket, count in self.stack_histogram.items()
                   if 0 <= bucket < distance)
        return hits / self.references


@dataclass
class WorkloadProfile:
    cores: Dict[int, CoreProfile] = field(default_factory=dict)
    shared_blocks_touched_by: Dict[int, int] = field(default_factory=dict)

    @property
    def sharing_degree(self) -> float:
        """Mean number of cores touching each shared-region block."""
        if not self.shared_blocks_touched_by:
            return 0.0
        return (sum(self.shared_blocks_touched_by.values())
                / len(self.shared_blocks_touched_by))

    @property
    def total_references(self) -> int:
        return sum(p.references for p in self.cores.values())

    def aggregate_region_fraction(self, region: str) -> float:
        total = self.total_references
        if not total:
            return 0.0
        return sum(p.region_refs.get(region, 0)
                   for p in self.cores.values()) / total


class _LruStack:
    """Exact LRU stack distances via an ordered dict (O(n) distance
    query is fine at characterization scale)."""

    def __init__(self) -> None:
        self._stack: "OrderedDict[int, None]" = OrderedDict()

    def touch(self, block: int) -> int:
        """Return the stack distance of this touch (-1 if cold)."""
        if block in self._stack:
            distance = 0
            for resident in reversed(self._stack):
                if resident == block:
                    break
                distance += 1
            self._stack.move_to_end(block)
            return distance
        self._stack[block] = None
        return -1

    def __len__(self) -> int:
        return len(self._stack)


def _bucket(distance: int) -> int:
    """Power-of-two bucket start for a stack distance."""
    if distance < 0:
        return -1
    bucket = 1
    while bucket <= distance:
        bucket <<= 1
    return bucket >> 1


def characterize(traces: Sequence[Optional[Iterable[TraceItem]]]
                 ) -> WorkloadProfile:
    """Measure a per-core trace list (as produced by TraceGenerator)."""
    profile = WorkloadProfile()
    shared_touchers: Dict[int, set] = {}
    for core, trace in enumerate(traces):
        if trace is None:
            continue
        core_profile = CoreProfile()
        stack = _LruStack()
        for item in trace:
            core_profile.references += 1
            if item.kind is TraceKind.STORE:
                core_profile.writes += 1
            elif item.kind is TraceKind.DEP_LOAD:
                core_profile.dep_loads += 1
            region = region_of(item.block)
            core_profile.region_refs[region] = \
                core_profile.region_refs.get(region, 0) + 1
            if region == "shared":
                shared_touchers.setdefault(item.block, set()).add(core)
            bucket = _bucket(stack.touch(item.block))
            core_profile.stack_histogram[bucket] = \
                core_profile.stack_histogram.get(bucket, 0) + 1
        core_profile.distinct_blocks = len(stack)
        profile.cores[core] = core_profile
    profile.shared_blocks_touched_by = {
        block: len(cores) for block, cores in shared_touchers.items()}
    return profile


def format_profile(profile: WorkloadProfile) -> str:
    lines = ["core  refs     distinct  write  dep    shared  stream  "
             "reuse<512  reuse<16k"]
    for core, p in sorted(profile.cores.items()):
        lines.append(
            f"{core:4d}  {p.references:7d}  {p.distinct_blocks:8d}  "
            f"{p.write_ratio:5.2f}  {p.dep_ratio:5.2f}  "
            f"{p.region_fraction('shared'):6.2f}  "
            f"{p.region_fraction('stream'):6.2f}  "
            f"{p.reuse_within(512):9.2f}  {p.reuse_within(16384):9.2f}")
    lines.append(f"sharing degree (cores/shared block): "
                 f"{profile.sharing_degree:.2f}")
    return "\n".join(lines)
