"""Workload specification and the per-core trace generator.

Each active core runs a thread with:

* a **private region** (its working set; phases rotate a hot window
  through it),
* a **shared region** common to the workload's threads (referenced
  with probability ``shared_fraction``),
* an **OS region** modelling background system activity (the paper
  stresses that OS effects matter for transactional workloads),
* a sequential **stream** component (stride-1 scans through the
  private region, the dominant pattern of several NAS kernels).

Region references use a power-law ("hot front") distribution so stack
distances look like real programs rather than uniform noise;
``locality`` is the exponent (higher = hotter head, smaller effective
working set).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Iterator, Optional, Tuple

from repro.common.rng import substream
from repro.sim.cpu import TraceItem, TraceKind

#: Block-number bases carving up a flat address space (block units).
PRIVATE_REGION_STRIDE = 1 << 32
SHARED_REGION_BASE = 1 << 40
OS_REGION_BASE = 1 << 41
STREAM_REGION_BASE = 1 << 42
OS_REGION_BLOCKS = 2048  # 128 KB of OS-touched data


@dataclass(frozen=True)
class WorkloadSpec:
    """Complete description of one benchmark (one row of Table 1)."""

    name: str
    family: str
    active_cores: Tuple[int, ...]
    refs_per_core: int = 50_000
    #: Size of the *reused* (hot) regions; capacity behaviour follows
    #: from how these compare to the 16384-block private partition and
    #: the 131072-block shared pool. Cold/compulsory traffic is the
    #: ``stream_fraction`` below.
    private_footprint_blocks: int = 8192
    shared_footprint_blocks: int = 0
    shared_fraction: float = 0.0
    shared_write_fraction: float = 0.1
    write_fraction: float = 0.25
    dep_fraction: float = 0.05
    mean_gap: int = 3
    locality: float = 2.0
    #: Separate skew for the shared region (None = use ``locality``).
    #: Commercial workloads concentrate shared reuse on a hot head
    #: (metadata, lock words, B-tree roots), which is exactly what
    #: replication mechanisms capture.
    shared_locality: Optional[float] = None
    #: Temporal reuse: probability a reference re-touches a recently
    #: used block (recency-biased pick from the last ``reuse_window``
    #: distinct blocks). This is what gives the trace a realistic
    #: stack-distance profile.
    reuse_fraction: float = 0.70
    reuse_window: int = 192
    #: Cyclic scan over a fixed buffer (art/mcf's LRU-hostile pattern):
    #: hits ~100% when ``loop_blocks`` fits the cache level, ~0% when it
    #: does not — the sharpest capacity discriminator.
    loop_blocks: int = 0
    loop_fraction: float = 0.0
    #: Fraction of new draws that scan an unbounded cold region —
    #: compulsory misses no cache can absorb (streaming kernels, huge
    #: data sets touched once).
    stream_fraction: float = 0.0
    #: Probability a stream access advances to the next block (several
    #: word-level touches land in one 64B block before moving on).
    stream_advance: float = 0.2
    phase_blocks: int = 0          # hot-window size; 0 = whole region
    phase_period: int = 20_000     # refs between hot-window moves
    os_noise: float = 0.01
    description: str = ""
    #: Per-core spec overrides for hybrid workloads: core id -> the
    #: WorkloadSpec of the program that core runs.
    per_core: dict = field(default_factory=dict)

    def capacity_scaled(self, factor: int) -> "WorkloadSpec":
        """Shrink the workload's hot sets by ``factor`` to match a
        :func:`repro.common.config.scaled_config` system. Temporal
        parameters shrink by sqrt(factor) (the L1 shrinks too, but
        reuse distance matters less than capacity ratio)."""
        if factor == 1:
            return self
        shrink = max(1, int(factor ** 0.5))
        scaled_overrides = {core: spec.capacity_scaled(factor)
                            for core, spec in self.per_core.items()}
        return replace(
            self,
            private_footprint_blocks=max(64, self.private_footprint_blocks // factor),
            shared_footprint_blocks=(max(64, self.shared_footprint_blocks // factor)
                                     if self.shared_footprint_blocks else 0),
            loop_blocks=self.loop_blocks // factor,
            phase_blocks=self.phase_blocks // factor,
            reuse_window=max(32, self.reuse_window // shrink),
            per_core=scaled_overrides,
        )

    def scaled(self, refs_per_core: int) -> "WorkloadSpec":
        """The same workload with a different reference budget (per-core
        overrides are scaled proportionally)."""
        if not self.per_core:
            return replace(self, refs_per_core=refs_per_core)
        scaled_overrides = {
            core: spec.scaled(
                max(1, spec.refs_per_core * refs_per_core // self.refs_per_core))
            for core, spec in self.per_core.items()
        }
        return replace(self, refs_per_core=refs_per_core,
                       per_core=scaled_overrides)


class TraceGenerator:
    """Builds deterministic per-core trace iterators for a workload."""

    def __init__(self, spec: WorkloadSpec, seed: int = 1) -> None:
        self.spec = spec
        self.seed = seed

    def traces(self, num_cores: int) -> list:
        """One iterator per core (None for fully idle cores)."""
        return [self.core_trace(core) if core in self.spec.active_cores
                else None
                for core in range(num_cores)]

    def core_trace(self, core: int) -> Iterator[TraceItem]:
        spec = self._spec_for_core(core)
        return _generate(spec, core, self.seed)

    def _spec_for_core(self, core: int) -> WorkloadSpec:
        override = self.spec.per_core.get(core)
        if override is None:
            return self.spec
        return override


def _generate(spec: WorkloadSpec, core: int, seed: int) -> Iterator[TraceItem]:
    rng = substream(seed, f"{spec.name}/core{core}")
    random01 = rng.random
    private_base = (core + 1) * PRIVATE_REGION_STRIDE
    private_size = max(spec.private_footprint_blocks, 1)
    shared_size = max(spec.shared_footprint_blocks, 1)
    window = spec.phase_blocks if spec.phase_blocks else private_size
    window = min(window, private_size)
    window_start = 0
    # The cold stream walks an unbounded per-core region: pure
    # compulsory traffic, disjoint across cores and workloads.
    stream_base = STREAM_REGION_BASE + (core + 1) * PRIVATE_REGION_STRIDE
    stream_pos = 0
    # The loop buffer lives in the private region above the hot set.
    loop_base = private_base + private_size
    loop_pos = rng.randrange(spec.loop_blocks) if spec.loop_blocks else 0
    exponent = max(spec.locality, 1.0)
    shared_exponent = max(spec.shared_locality or spec.locality, 1.0)
    recent = deque(maxlen=max(spec.reuse_window, 1))

    for ref in range(spec.refs_per_core):
        if spec.phase_blocks and spec.phase_period and ref and \
                ref % spec.phase_period == 0:
            window_start = (window_start + window) % private_size
        draw = random01()
        if draw < spec.os_noise:
            block = OS_REGION_BASE + int(OS_REGION_BLOCKS * random01() ** exponent)
        elif recent and random01() < spec.reuse_fraction:
            # Temporal reuse: recency-biased pick among recent blocks
            # (quadratic bias toward the most recent).
            back = int(len(recent) * random01() ** 2)
            block = recent[len(recent) - 1 - back]
        elif draw < spec.os_noise + spec.shared_fraction:
            block = SHARED_REGION_BASE + _hot(rng, shared_size, shared_exponent)
            recent.append(block)
        elif spec.loop_blocks and random01() < spec.loop_fraction:
            loop_pos += 1
            if loop_pos >= spec.loop_blocks:
                loop_pos = 0
            block = loop_base + loop_pos
        elif random01() < spec.stream_fraction:
            if random01() < spec.stream_advance:
                stream_pos += 1
            block = stream_base + stream_pos
        else:
            offset = (window_start + _hot(rng, window, exponent)) % private_size
            block = private_base + offset
            recent.append(block)
        if block >= STREAM_REGION_BASE:
            write = random01() < spec.write_fraction
        elif block >= OS_REGION_BASE:
            write = random01() < 0.05
        elif block >= SHARED_REGION_BASE:
            write = random01() < spec.shared_write_fraction
        else:
            write = random01() < spec.write_fraction
        if write:
            kind = TraceKind.STORE
        elif random01() < spec.dep_fraction:
            kind = TraceKind.DEP_LOAD
        else:
            kind = TraceKind.LOAD
        gap = _geometric(rng, spec.mean_gap)
        yield TraceItem(gap=gap, block=block, kind=kind)


def _hot(rng, size: int, exponent: float) -> int:
    """Power-law index in [0, size): index 0 is hottest."""
    return int(size * (rng.random() ** exponent))


def _geometric(rng, mean: int) -> int:
    """Cheap integer geometric-ish gap with the requested mean."""
    if mean <= 0:
        return 0
    return int(-mean * math.log(max(rng.random(), 1e-12)))
