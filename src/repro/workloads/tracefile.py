"""Trace recording and replay.

Materialized traces are what make runs *paired* across architectures;
persisting them lets a study be re-run bit-identically later (or on
another machine), shared alongside results, or inspected offline.

Format: a small text header, then one line per reference —
``gap kind block_hex`` — gzip-compressed. Self-describing and
diff-able beats clever encoding at this scale (a 160k-reference trace
compresses to ~1 MB).
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import Iterator, List, Optional, Sequence

from repro.sim.cpu import TraceItem, TraceKind

MAGIC = "esp-nuca-trace v1"

_KIND_CODE = {TraceKind.LOAD: "L", TraceKind.STORE: "S",
              TraceKind.DEP_LOAD: "D"}
_CODE_KIND = {v: k for k, v in _KIND_CODE.items()}


def save_traces(path: str | Path,
                traces: Sequence[Optional[Sequence[TraceItem]]],
                workload: str = "", seed: int = 0) -> None:
    """Write per-core traces (None = idle core) to ``path``."""
    path = Path(path)
    with gzip.open(path, "wt", encoding="ascii") as handle:
        handle.write(f"{MAGIC}\n")
        handle.write(f"workload={workload} seed={seed} "
                     f"cores={len(traces)}\n")
        for core, trace in enumerate(traces):
            if trace is None:
                handle.write(f"core {core} idle\n")
                continue
            items = list(trace)
            handle.write(f"core {core} refs={len(items)}\n")
            for item in items:
                handle.write(f"{item.gap} {_KIND_CODE[item.kind]} "
                             f"{item.block:x}\n")


def load_traces(path: str | Path) -> List[Optional[List[TraceItem]]]:
    """Read traces written by :func:`save_traces`."""
    path = Path(path)
    with gzip.open(path, "rt", encoding="ascii") as handle:
        if handle.readline().strip() != MAGIC:
            raise ValueError(f"{path} is not an esp-nuca trace file")
        header = handle.readline().split()
        cores = int(next(f for f in header if f.startswith("cores=")
                         ).split("=")[1])
        traces: List[Optional[List[TraceItem]]] = [None] * cores
        for _ in range(cores):
            fields = handle.readline().split()
            if not fields or fields[0] != "core":
                raise ValueError(f"{path}: malformed core header")
            core = int(fields[1])
            if fields[2] == "idle":
                continue
            count = int(fields[2].split("=")[1])
            items = []
            for _ in range(count):
                gap, code, block_hex = handle.readline().split()
                items.append(TraceItem(gap=int(gap),
                                       kind=_CODE_KIND[code],
                                       block=int(block_hex, 16)))
            traces[core] = items
        return traces


def trace_info(path: str | Path) -> dict:
    """Header metadata without loading the body."""
    with gzip.open(Path(path), "rt", encoding="ascii") as handle:
        if handle.readline().strip() != MAGIC:
            raise ValueError(f"{path} is not an esp-nuca trace file")
        fields = dict(part.split("=") for part in handle.readline().split()
                      if "=" in part)
        return {"workload": fields.get("workload", ""),
                "seed": int(fields.get("seed", 0)),
                "cores": int(fields.get("cores", 0))}
