"""Transactional workloads — the Wisconsin Commercial Workload suite.

Characteristics this family models (Barroso et al. [2], Alameldeen et
al. [1], and Section 6.2 of the paper): all eight cores active, a hot
shared database/heap region referenced by every thread (30–50% of
accesses), noticeable OS activity, pointer-heavy access patterns
(moderate serializing-load fractions).

Capacity regime (what drives Figures 6–8): per-thread hot sets of
10–14k blocks plus a hot shared region of 10–24k blocks. A private
organization must fit *hot-private + a replica of hot-shared* into its
16384-block partition — it cannot, so it thrashes; the shared pool
(131072 blocks) holds everything but serves it at remote-bank latency.
ESP-NUCA replicates only as much of the hot shared region as fits
without hurting first-class hit rates.
"""

from __future__ import annotations

from typing import List

from repro.workloads.base import WorkloadSpec

ALL_CORES = tuple(range(8))

TRANSACTIONAL_WORKLOADS: List[WorkloadSpec] = [
    WorkloadSpec(
        name="apache", family="transactional", active_cores=ALL_CORES,
        private_footprint_blocks=10_500, shared_footprint_blocks=16_000,
        shared_fraction=0.42, shared_write_fraction=0.10,
        shared_locality=2.6,
        write_fraction=0.22, dep_fraction=0.10, mean_gap=4,
        locality=1.3, reuse_fraction=0.70, reuse_window=192,
        stream_fraction=0.06,
        phase_blocks=6_000, phase_period=15_000, os_noise=0.08,
        description="static web serving: hot shared page/metadata cache",
    ),
    WorkloadSpec(
        name="jbb", family="transactional", active_cores=ALL_CORES,
        private_footprint_blocks=12_000, shared_footprint_blocks=10_000,
        shared_fraction=0.30, shared_write_fraction=0.15,
        shared_locality=2.5,
        write_fraction=0.28, dep_fraction=0.12, mean_gap=4,
        locality=1.4, reuse_fraction=0.72, reuse_window=160,
        stream_fraction=0.05, os_noise=0.03,
        description="Java middleware: warehouse-private heaps + shared structures",
    ),
    WorkloadSpec(
        name="oltp", family="transactional", active_cores=ALL_CORES,
        private_footprint_blocks=9_000, shared_footprint_blocks=20_000,
        shared_fraction=0.52, shared_write_fraction=0.18,
        shared_locality=2.2,
        write_fraction=0.20, dep_fraction=0.15, mean_gap=5,
        locality=1.2, reuse_fraction=0.68, reuse_window=224,
        stream_fraction=0.04, os_noise=0.06,
        description="TPC-C-like: dominant shared buffer pool, migratory rows",
    ),
    WorkloadSpec(
        name="zeus", family="transactional", active_cores=ALL_CORES,
        private_footprint_blocks=10_000, shared_footprint_blocks=13_000,
        shared_fraction=0.38, shared_write_fraction=0.08,
        shared_locality=2.6,
        write_fraction=0.20, dep_fraction=0.08, mean_gap=4,
        locality=1.3, reuse_fraction=0.70, reuse_window=192,
        stream_fraction=0.08,
        phase_blocks=5_000, phase_period=18_000, os_noise=0.10,
        description="event-driven web serving: higher OS component than apache",
    ),
]
