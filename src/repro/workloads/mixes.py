"""Custom workload-mix construction.

Table 1's Hybrid rows are one instance of a general pattern — different
programs pinned to different cores. This module exposes that machinery
as a public API so studies beyond the paper's 22 workloads are easy to
express::

    mix = MixBuilder("webmix")                       \\
        .assign(range(0, 4), program("oltp-like", ...))  \\
        .assign([4, 5], program("batch", ...))           \\
        .idle([6, 7])                                    \\
        .build()

The result is an ordinary :class:`WorkloadSpec` usable everywhere a
Table 1 workload is (runner, trace files, characterization).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterable, Optional

from repro.workloads.base import WorkloadSpec


def program(name: str, footprint_blocks: int, *,
            shared_blocks: int = 0, shared_fraction: float = 0.0,
            write_fraction: float = 0.25, dep_fraction: float = 0.05,
            locality: float = 1.5, reuse_fraction: float = 0.65,
            stream_fraction: float = 0.0, loop_blocks: int = 0,
            loop_fraction: float = 0.0, mean_gap: int = 3,
            refs_per_core: int = 50_000,
            description: str = "") -> WorkloadSpec:
    """A single-program behaviour description (one Table-1-style row)."""
    return WorkloadSpec(
        name=name, family="custom", active_cores=(),
        refs_per_core=refs_per_core,
        private_footprint_blocks=footprint_blocks,
        shared_footprint_blocks=shared_blocks,
        shared_fraction=shared_fraction,
        write_fraction=write_fraction, dep_fraction=dep_fraction,
        locality=locality, reuse_fraction=reuse_fraction,
        stream_fraction=stream_fraction,
        loop_blocks=loop_blocks, loop_fraction=loop_fraction,
        mean_gap=mean_gap, os_noise=0.01, description=description)


class MixBuilder:
    """Compose per-core program assignments into one WorkloadSpec."""

    def __init__(self, name: str, num_cores: int = 8) -> None:
        self.name = name
        self.num_cores = num_cores
        self._assignments: Dict[int, WorkloadSpec] = {}
        self._idle: set = set()

    def assign(self, cores: Iterable[int], spec: WorkloadSpec
               ) -> "MixBuilder":
        for core in cores:
            if not 0 <= core < self.num_cores:
                raise ValueError(f"core {core} out of range")
            if core in self._assignments or core in self._idle:
                raise ValueError(f"core {core} assigned twice")
            self._assignments[core] = spec
        return self

    def idle(self, cores: Iterable[int]) -> "MixBuilder":
        for core in cores:
            if core in self._assignments:
                raise ValueError(f"core {core} assigned twice")
            self._idle.add(core)
        return self

    def build(self, refs_per_core: Optional[int] = None) -> WorkloadSpec:
        if not self._assignments:
            raise ValueError("a mix needs at least one assigned core")
        active = tuple(sorted(self._assignments))
        refs = refs_per_core or max(s.refs_per_core
                                    for s in self._assignments.values())
        # The base spec is the first program; per-core overrides carry
        # each core's actual behaviour (including the first's, so the
        # base parameters never silently apply to the wrong core).
        first = self._assignments[active[0]]
        return replace(
            first,
            name=self.name, family="custom-mix", active_cores=active,
            refs_per_core=refs,
            per_core=dict(self._assignments),
            description=" + ".join(
                f"{core}:{spec.name}"
                for core, spec in sorted(self._assignments.items())))


def half_and_half(name: str, left: WorkloadSpec, right: WorkloadSpec,
                  num_cores: int = 8) -> WorkloadSpec:
    """The paper's Hybrid pattern: ``left`` on the first half of the
    chip, ``right`` on the second."""
    half = num_cores // 2
    return (MixBuilder(name, num_cores)
            .assign(range(half), left)
            .assign(range(half, num_cores), right)
            .build())
