"""Workload model: parameterized synthetic traces for all 22 benchmarks.

No SPEC inputs, Simics checkpoints or NAS binaries are available in
this environment, so each benchmark of Table 1 is modelled by a
:class:`~repro.workloads.base.WorkloadSpec` whose parameters (active
cores, footprints, sharing degree, write ratio, locality, MLP
behaviour) are calibrated to the published characteristics of the
suite (see DESIGN.md §2 and §7 for the substitution argument).
"""

from repro.workloads.base import TraceGenerator, WorkloadSpec
from repro.workloads.registry import WORKLOADS, get_workload, workload_names

__all__ = ["TraceGenerator", "WorkloadSpec", "WORKLOADS", "get_workload",
           "workload_names"]
