"""Directed synthetic traces for unit/integration tests and examples.

These bypass :class:`WorkloadSpec` and build exact reference patterns:
single-block loops, ping-pong sharing, streaming scans — the scenarios
the tests use to pin down architecture behaviour.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

from repro.sim.cpu import TraceItem, TraceKind


def repeat_blocks(blocks: Sequence[int], repetitions: int, gap: int = 3,
                  kind: TraceKind = TraceKind.LOAD) -> Iterator[TraceItem]:
    """Loop over ``blocks`` ``repetitions`` times."""
    for _ in range(repetitions):
        for block in blocks:
            yield TraceItem(gap=gap, block=block, kind=kind)


def stream(base: int, length: int, gap: int = 3,
           kind: TraceKind = TraceKind.LOAD) -> Iterator[TraceItem]:
    """A stride-1 scan of ``length`` blocks starting at ``base``."""
    for offset in range(length):
        yield TraceItem(gap=gap, block=base + offset, kind=kind)


def mixed(items: Iterable[tuple]) -> Iterator[TraceItem]:
    """Build a trace from (block, kind) tuples with zero gaps."""
    for block, kind in items:
        yield TraceItem(gap=0, block=block, kind=kind)


def single_core_traces(num_cores: int, core: int,
                       trace: Iterator[TraceItem]
                       ) -> List[Optional[Iterator[TraceItem]]]:
    """Trace list with one active core."""
    traces: List[Optional[Iterator[TraceItem]]] = [None] * num_cores
    traces[core] = trace
    return traces
