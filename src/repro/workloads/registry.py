"""The 22 workloads of Table 1, collected from the family modules
(transactional, SPEC half-rate/hybrid, NAS)."""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.base import WorkloadSpec


def _build_registry() -> Dict[str, WorkloadSpec]:
    from repro.workloads.nas import NAS_WORKLOADS
    from repro.workloads.spec import SPEC_WORKLOADS
    from repro.workloads.transactional import TRANSACTIONAL_WORKLOADS

    registry: Dict[str, WorkloadSpec] = {}
    for group in (TRANSACTIONAL_WORKLOADS, SPEC_WORKLOADS, NAS_WORKLOADS):
        for spec in group:
            if spec.name in registry:
                raise ValueError(f"duplicate workload {spec.name}")
            registry[spec.name] = spec
    return registry


WORKLOADS: Dict[str, WorkloadSpec] = _build_registry()


def get_workload(name: str) -> WorkloadSpec:
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {', '.join(sorted(WORKLOADS))}"
        ) from None


def workload_names(family: str | None = None) -> List[str]:
    if family is None:
        return list(WORKLOADS)
    return [name for name, spec in WORKLOADS.items() if spec.family == family]
