"""Multiprogrammed SPEC2000 workloads (Section 6.3).

Two scenarios from Table 1:

* **Half Rate** — four instances of one program on cores 0–3; core 4
  runs system services; the rest idle. Shared caches win here when the
  program's footprint exceeds the private partition (art, mcf) because
  the idle half of the chip is usable; private caches win when the
  footprint fits (gcc, gzip) thanks to lower hit latency.
* **Hybrid** — 4 instances of program A on cores 0–3 and 4 of program
  B on cores 4–7: the inter-thread-isolation stress test. A thrashing
  program (art, mcf) destroys a small-footprint co-runner on a shared
  cache; isolation-capable architectures keep them apart.

Program models are calibrated to the classic SPEC2000 memory
characterizations: art/mcf large-footprint, low-MLP (serializing
loads), low-locality; gcc/gzip cache-resident; twolf in between.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Tuple

from repro.workloads.base import WorkloadSpec

#: Per-program building blocks (single-instance behaviour).
#:
#: Capacity regimes against the 16384-block private partition:
#: art/mcf hot sets (25-30k blocks) overflow a private partition but
#: four of them fit the 131072-block shared pool — the "up to 40%
#: worse" private results of Section 6.3; gcc/gzip fit comfortably, so
#: locality favours private organizations; twolf sits at the boundary.
_PROGRAMS: Dict[str, dict] = {
    "art": dict(private_footprint_blocks=8_000, locality=1.2,
                reuse_fraction=0.55, reuse_window=96,
                loop_blocks=22_000, loop_fraction=0.35,
                dep_fraction=0.25, stream_fraction=0.10,
                write_fraction=0.18, mean_gap=2),
    "gcc": dict(private_footprint_blocks=9_000, locality=1.6,
                reuse_fraction=0.75, reuse_window=256,
                dep_fraction=0.08, stream_fraction=0.05,
                write_fraction=0.30, mean_gap=4),
    "gzip": dict(private_footprint_blocks=6_000, locality=1.5,
                 reuse_fraction=0.72, reuse_window=192,
                 dep_fraction=0.05, stream_fraction=0.15,
                 write_fraction=0.25, mean_gap=3),
    "mcf": dict(private_footprint_blocks=12_000, locality=1.1,
                reuse_fraction=0.55, reuse_window=96,
                loop_blocks=26_000, loop_fraction=0.25,
                dep_fraction=0.45, stream_fraction=0.08,
                write_fraction=0.15, mean_gap=2),
    "twolf": dict(private_footprint_blocks=18_000, locality=1.4,
                  reuse_fraction=0.70, reuse_window=192,
                  dep_fraction=0.12, stream_fraction=0.03,
                  write_fraction=0.25, mean_gap=3),
}

#: The light system-services thread of the Half Rate scenario.
_OS_SERVICE = WorkloadSpec(
    name="os-service", family="spec-service", active_cores=(4,),
    refs_per_core=10_000, private_footprint_blocks=1_500,
    shared_fraction=0.0, write_fraction=0.20, dep_fraction=0.05,
    mean_gap=8, locality=1.8, os_noise=0.50,
    description="system services on one otherwise idle core",
)


def _program_spec(program: str, name: str, cores: Tuple[int, ...],
                  family: str) -> WorkloadSpec:
    return WorkloadSpec(name=name, family=family, active_cores=cores,
                        shared_fraction=0.0, os_noise=0.01,
                        **_PROGRAMS[program])


def _half_rate(program: str) -> WorkloadSpec:
    """4 copies on cores 0-3 plus the system-services core."""
    base = _program_spec(program, f"{program}-4", (0, 1, 2, 3, 4),
                         family="spec-half")
    return replace(base,
                   per_core={4: _OS_SERVICE},
                   description=f"4x {program} + system services (half rate)")


def _hybrid(prog_a: str, prog_b: str) -> WorkloadSpec:
    """4 copies of each program on the two halves of the chip."""
    cores = tuple(range(8))
    spec_b = _program_spec(prog_b, f"{prog_b}-of-{prog_a}-{prog_b}",
                           (4, 5, 6, 7), family="spec-hybrid")
    base = _program_spec(prog_a, f"{prog_a}-{prog_b}", cores,
                         family="spec-hybrid")
    return replace(base,
                   per_core={c: spec_b for c in (4, 5, 6, 7)},
                   description=f"4x {prog_a} (cores 0-3) + 4x {prog_b} (cores 4-7)")


SPEC_HALF_RATE: List[WorkloadSpec] = [
    _half_rate(p) for p in ("art", "gcc", "gzip", "mcf", "twolf")
]

SPEC_HYBRID: List[WorkloadSpec] = [
    _hybrid("art", "gzip"),
    _hybrid("gcc", "gzip"),
    _hybrid("gcc", "twolf"),
    _hybrid("mcf", "gzip"),
    _hybrid("mcf", "twolf"),
]

SPEC_WORKLOADS: List[WorkloadSpec] = SPEC_HALF_RATE + SPEC_HYBRID
