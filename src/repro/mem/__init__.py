"""Off-chip memory substrate."""

from repro.mem.controller import MemoryController, MemorySystem

__all__ = ["MemoryController", "MemorySystem"]
