"""Memory-controller timing: fixed DRAM latency behind a bandwidth queue.

Each controller serializes requests with a per-request occupancy,
bounding off-chip bandwidth; the request then pays the DRAM latency.
The introduction of the paper motivates NUCA management precisely by
this off-chip bandwidth wall, so the queue is not optional detail: the
off-chip component in Figure 6 includes its queueing.

Per-controller statistics (``demand``, ``writebacks``, ``queueing``)
live in each controller's :class:`~repro.common.statsreg.Scope`; the
:class:`MemorySystem` mounts them as ``mc<i>`` under its own scope,
which the system mounts at ``mem`` — so a skewed controller (one mesh
edge absorbing most of the off-chip traffic) is visible per run.
"""

from __future__ import annotations

from typing import List

from repro.common.config import SystemConfig
from repro.common.statsreg import Scope


class MemoryController:
    """A single controller: busy-until queue + fixed latency."""

    def __init__(self, latency: int, occupancy: int) -> None:
        self.latency = latency
        self.occupancy = occupancy
        self._busy_until = 0
        self.stats = Scope()
        self._requests = self.stats.counter("demand")
        self._writebacks = self.stats.counter("writebacks")
        self._queueing = self.stats.counter("queueing")

    #: Bound on the queueing a request can be charged (in services);
    #: caps phantom waits from out-of-time-order reservations (see
    #: Network.arrival) while keeping the bandwidth wall.
    MAX_QUEUE_SERVICES = 8

    def service(self, arrive: int) -> int:
        """Admit a demand request at ``arrive``; return data-ready time."""
        start = arrive
        if self._busy_until > start:
            start += min(self._busy_until - start,
                         self.MAX_QUEUE_SERVICES * self.occupancy)
        self._queueing.value += start - arrive
        self._busy_until = max(self._busy_until, start + self.occupancy)
        self._requests.value += 1
        return start + self.latency

    def post_writeback(self, arrive: int) -> None:
        """Writebacks consume bandwidth but nobody waits on them.

        The queue charge is capped like :meth:`service`'s: reservations
        arrive in reference order, not time order, so an uncapped wait
        would chain writebacks onto a future-stamped frontier forever.
        """
        start = arrive
        if self._busy_until > start:
            start += min(self._busy_until - start,
                         self.MAX_QUEUE_SERVICES * self.occupancy)
        self._busy_until = max(self._busy_until, start + self.occupancy)
        self._writebacks.value += 1

    @property
    def requests(self) -> int:
        return self._requests.value

    @property
    def writebacks(self) -> int:
        return self._writebacks.value

    @property
    def total_queueing(self) -> int:
        return self._queueing.value

    def reset_stats(self) -> None:
        self.stats.reset()


class MemorySystem:
    """The set of controllers hanging off the mesh edges."""

    def __init__(self, config: SystemConfig) -> None:
        self.stats = Scope()
        self.controllers: List[MemoryController] = []
        for index in range(config.mem.num_controllers):
            controller = MemoryController(config.mem.latency,
                                          config.mem.occupancy)
            self.stats.mount(f"mc{index}", controller.stats)
            self.controllers.append(controller)

    def controller(self, index: int) -> MemoryController:
        return self.controllers[index]

    @property
    def demand_requests(self) -> int:
        return sum(c.requests for c in self.controllers)

    @property
    def writebacks(self) -> int:
        return sum(c.writebacks for c in self.controllers)

    def reset_stats(self) -> None:
        self.stats.reset()
