"""Memory-controller timing: fixed DRAM latency behind a bandwidth queue.

Each controller serializes requests with a per-request occupancy,
bounding off-chip bandwidth; the request then pays the DRAM latency.
The introduction of the paper motivates NUCA management precisely by
this off-chip bandwidth wall, so the queue is not optional detail: the
off-chip component in Figure 6 includes its queueing.
"""

from __future__ import annotations

from typing import List

from repro.common.config import SystemConfig


class MemoryController:
    """A single controller: busy-until queue + fixed latency."""

    def __init__(self, latency: int, occupancy: int) -> None:
        self.latency = latency
        self.occupancy = occupancy
        self._busy_until = 0
        self.requests = 0
        self.writebacks = 0
        self.total_queueing = 0

    #: Bound on the queueing a request can be charged (in services);
    #: caps phantom waits from out-of-time-order reservations (see
    #: Network.arrival) while keeping the bandwidth wall.
    MAX_QUEUE_SERVICES = 8

    def service(self, arrive: int) -> int:
        """Admit a demand request at ``arrive``; return data-ready time."""
        start = arrive
        if self._busy_until > start:
            start += min(self._busy_until - start,
                         self.MAX_QUEUE_SERVICES * self.occupancy)
        self.total_queueing += start - arrive
        self._busy_until = max(self._busy_until, start + self.occupancy)
        self.requests += 1
        return start + self.latency

    def post_writeback(self, arrive: int) -> None:
        """Writebacks consume bandwidth but nobody waits on them."""
        start = arrive if arrive >= self._busy_until else self._busy_until
        self._busy_until = start + self.occupancy
        self.writebacks += 1

    def reset_stats(self) -> None:
        self.requests = 0
        self.writebacks = 0
        self.total_queueing = 0


class MemorySystem:
    """The set of controllers hanging off the mesh edges."""

    def __init__(self, config: SystemConfig) -> None:
        self.controllers: List[MemoryController] = [
            MemoryController(config.mem.latency, config.mem.occupancy)
            for _ in range(config.mem.num_controllers)
        ]

    def controller(self, index: int) -> MemoryController:
        return self.controllers[index]

    @property
    def demand_requests(self) -> int:
        return sum(c.requests for c in self.controllers)

    @property
    def writebacks(self) -> int:
        return sum(c.writebacks for c in self.controllers)

    def reset_stats(self) -> None:
        for controller in self.controllers:
            controller.reset_stats()
