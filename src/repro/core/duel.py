"""Set dueling and the per-bank nmax controller (Sections 3.2–3.3).

Each bank designates a handful of its sets as *reference* (helping
blocks refused), *explorer* (one helping block above the bank's current
budget) and *monitored conventional* sets. Shift-only EMAs estimate the
first-class hit rate of each group; every ``update_period`` monitored
events the controller applies equation (3):

    nmax -= 1   if HR_R - HR_C > (HR_R >> d)    (helping blocks hurt)
    nmax += 1   if HR_R - HR_E <= (HR_R >> d)   (one more would be safe)

(strict ">" on the decrement — see EmaEstimator.degraded_beyond for why
the paper's ">=" degenerates at exact equality).

Engine note (docs/engine.md): duel observations and controller
evaluations fire only from L2 lookups, i.e. inside the contention path
that both simulation engines serialize in identical reference order —
so the controller needs no engine-specific code, and every ``nmax``
trajectory is byte-identical across engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.cache.bank import CacheBank, SetRole
from repro.common.config import EspConfig
from repro.common.fixedpoint import EmaEstimator
from repro.common.statsreg import Scope
from repro.obs.trace import NULL_TRACER


# Knuth's multiplicative-hash constant (2**32 / phi, odd): cheap
# deterministic mixing of the bank id into a placement offset.
_PLACEMENT_MIX = 2654435761


def sampled_set_indices(num_sets: int, config: EspConfig,
                        bank_id: int = 0) -> Dict[int, SetRole]:
    """Deterministic placement of the special sets within a bank.

    Sets are spread across the index space so that a strided workload
    cannot systematically miss (or hammer) the monitors, and the whole
    pattern is rotated by a per-bank offset so the *same* index never
    plays the same role in every bank. Without the rotation every bank
    put REFERENCE at set 0 and the other roles at identical strided
    indices, so a workload touching congruent sets across banks biased
    every monitor of the chip at once — exactly what the spreading
    claims to prevent (see ``tests/test_duel.py``).
    """
    total = config.reference_sets + config.explorer_sets + config.conventional_sample_sets
    if total > num_sets:
        raise ValueError("more monitor sets than sets in the bank")
    roles: Dict[int, SetRole] = {}
    stride = num_sets // total
    offset = (bank_id * _PLACEMENT_MIX) % num_sets
    slot = 0
    for _ in range(config.reference_sets):
        roles[(slot * stride + offset) % num_sets] = SetRole.REFERENCE
        slot += 1
    for _ in range(config.explorer_sets):
        roles[(slot * stride + offset) % num_sets] = SetRole.EXPLORER
        slot += 1
    for _ in range(config.conventional_sample_sets):
        roles[(slot * stride + offset) % num_sets] = SetRole.CONVENTIONAL_SAMPLE
        slot += 1
    return roles


@dataclass
class BankDuelState:
    """Per-bank estimators and budget."""

    nmax: int
    hr_reference: EmaEstimator
    hr_explorer: EmaEstimator
    hr_conventional: EmaEstimator
    events: int = 0
    increases: int = 0
    decreases: int = 0
    history: List[int] = field(default_factory=list)


class DuelController:
    """Owns the duel state of every bank of an ESP-NUCA L2.

    Mechanism state (the EMAs, the current ``nmax``, the update-period
    pacing counter) lives in :class:`BankDuelState` and survives the
    warm-up statistics reset — resetting it would change simulated
    behaviour. *Observability* lives in ``stats`` (mounted by the
    system under ``arch.duel``): per-bank monitored-event and
    increase/decrease counters plus gauges tracking ``nmax`` and the
    three role-set hit rates at the last evaluation.
    """

    def __init__(self, config: EspConfig, ways: int, record_history: bool = False) -> None:
        self.config = config
        self.ways = ways
        self.nmax_cap = ways - 1  # log2(w)-bit counter, and >= 1 way stays first-class
        self.record_history = record_history
        self._states: Dict[int, BankDuelState] = {}
        self.stats = Scope()
        self._bank_stats: Dict[int, Dict[str, object]] = {}
        # Event tracing: pushed by the owning architecture
        # (EspNuca.on_tracer). `now`/`pid` come from the system so duel
        # events land on the run's sim-clock process at the in-flight
        # access's timestamp.
        self._tracer = NULL_TRACER
        self._now: Callable[[], int] = lambda: 0
        self._pid: Callable[[], int] = lambda: 0

    def set_tracer(self, tracer, now: Callable[[], int],
                   pid: Callable[[], int]) -> None:
        """Wire the controller to an event stream (see EspNuca.on_tracer)."""
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._now = now
        self._pid = pid

    def attach(self, bank: CacheBank) -> BankDuelState:
        """Configure a bank for dueling and return its state."""
        state = BankDuelState(
            nmax=min(self.config.nmax_initial, self.nmax_cap),
            hr_reference=EmaEstimator(self.config.ema_bits, self.config.ema_shift),
            hr_explorer=EmaEstimator(self.config.ema_bits, self.config.ema_shift),
            hr_conventional=EmaEstimator(self.config.ema_bits, self.config.ema_shift),
        )
        self._states[bank.bank_id] = state
        scope = self.stats.scope(f"bank{bank.bank_id}")
        self._bank_stats[bank.bank_id] = {
            "events": scope.counter("events"),
            "evaluations": scope.counter("evaluations"),
            "increases": scope.counter("increases"),
            "decreases": scope.counter("decreases"),
            "nmax": scope.gauge("nmax"),
            "hr_reference": scope.gauge("hr_reference"),
            "hr_explorer": scope.gauge("hr_explorer"),
            "hr_conventional": scope.gauge("hr_conventional"),
        }
        self._bank_stats[bank.bank_id]["nmax"].set(state.nmax)
        for set_index, role in sampled_set_indices(
                bank.num_sets, self.config, bank.bank_id).items():
            bank.assign_role(set_index, role)
        bank.nmax = state.nmax
        bank.monitor = self.observe
        return state

    def state_of(self, bank_id: int) -> BankDuelState:
        return self._states[bank_id]

    # -- monitoring (called by CacheBank.lookup on monitored sets) --------

    def observe(self, bank: CacheBank, set_index: int, first_class_hit: bool) -> None:
        state = self._states[bank.bank_id]
        role = bank.role(set_index)
        if role is SetRole.REFERENCE:
            state.hr_reference.record(first_class_hit)
        elif role is SetRole.EXPLORER:
            state.hr_explorer.record(first_class_hit)
        elif role is SetRole.CONVENTIONAL_SAMPLE:
            state.hr_conventional.record(first_class_hit)
        else:
            return
        self._bank_stats[bank.bank_id]["events"].value += 1
        state.events += 1
        if state.events >= self.config.update_period:
            state.events = 0
            self._evaluate(bank, state)
        # Detail category (explicit opt-in only): one event per
        # monitored lookup, emitted *after* a possible evaluation so a
        # listener sampling every Nth event sees the updated nmax —
        # this is the stream TimelineRecorder is a view over.
        tr = self._tracer
        if tr.enabled and tr.wants("duel-observe"):
            tr.instant("duel-observe", "monitored lookup", ts=self._now(),
                       pid=self._pid(), tid=f"bank{bank.bank_id}",
                       args=None)

    # -- equation (3) -------------------------------------------------------

    def _evaluate(self, bank: CacheBank, state: BankDuelState) -> None:
        d = self.config.degradation_shift
        # Both directions of equation (3) go through the one shift-only
        # comparison, EmaEstimator.degraded_beyond, whose strictness is
        # documented there: decrement only when the conventional sets
        # trail the reference by strictly more than the tolerance
        # (helping blocks demonstrably hurt); increment when the
        # explorer stays within it — including exact equality — so one
        # more helping block is argued safe.
        stats = self._bank_stats[bank.bank_id]
        changed = 0
        if (state.hr_conventional.degraded_beyond(state.hr_reference, d)
                and state.nmax > 0):
            state.nmax -= 1
            state.decreases += 1
            stats["decreases"].value += 1
            changed = -1
        elif (not state.hr_explorer.degraded_beyond(state.hr_reference, d)
              and state.nmax < self.nmax_cap):
            state.nmax += 1
            state.increases += 1
            stats["increases"].value += 1
            changed = 1
        bank.nmax = state.nmax
        if changed:
            tr = self._tracer
            if tr.enabled and tr.wants("duel"):
                tr.instant(
                    "duel", "nmax +1" if changed > 0 else "nmax -1",
                    ts=self._now(), pid=self._pid(),
                    tid=f"bank{bank.bank_id}",
                    args={"nmax": state.nmax,
                          "hr_reference": state.hr_reference.hit_rate(),
                          "hr_explorer": state.hr_explorer.hit_rate(),
                          "hr_conventional":
                              state.hr_conventional.hit_rate()})
        stats["evaluations"].value += 1
        stats["nmax"].set(state.nmax)
        stats["hr_reference"].set(state.hr_reference.hit_rate())
        stats["hr_explorer"].set(state.hr_explorer.hit_rate())
        stats["hr_conventional"].set(state.hr_conventional.hit_rate())
        if self.record_history:
            state.history.append(state.nmax)

    # -- reporting ------------------------------------------------------------

    def average_nmax(self) -> float:
        if not self._states:
            return 0.0
        return sum(s.nmax for s in self._states.values()) / len(self._states)
