"""The paper's contribution: SP-NUCA and ESP-NUCA.

* :mod:`repro.core.private_bit` — the chip-wide private/shared block
  classification (Section 2.1).
* :mod:`repro.core.duel` — set dueling and the ``nmax`` controller with
  shift-only EMA hit-rate estimation (Sections 3.2–3.3).
* :mod:`repro.core.sp_nuca` — the SP-NUCA architecture (Section 2).
* :mod:`repro.core.esp_nuca` — the full ESP-NUCA architecture with
  replicas, victims and protected LRU (Section 3).
"""

from repro.core.duel import BankDuelState, DuelController
from repro.core.esp_nuca import EspNuca
from repro.core.private_bit import Classification, PrivateBitDirectory
from repro.core.sp_nuca import SpNuca

__all__ = [
    "BankDuelState",
    "DuelController",
    "EspNuca",
    "Classification",
    "PrivateBitDirectory",
    "SpNuca",
]
