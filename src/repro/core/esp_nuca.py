"""ESP-NUCA: SP-NUCA enhanced with replicas and victims (Section 3).

On top of SP-NUCA's private/shared organization, ESP-NUCA keeps two
kinds of *helping blocks*:

* **replicas** — when an L1 evicts a shared block, a one-token copy is
  (tentatively) left in the evicting core's private partition while the
  rest of the tokens return to the shared bank, so later local reads
  hit at private-bank distance;
* **victims** — when a private block is evicted from its owner's
  private partition, it is (tentatively) moved to its shared-map bank
  instead of off chip, so the owner's next miss stays on chip — and a
  second core's access finds it already in shared space, where it is
  demoted in place.

"Tentatively" is the point of the architecture: admission is governed
by protected LRU, whose per-set helping budget ``nmax`` is tuned
on-line by the set-dueling controller (:mod:`repro.core.duel`) so
helping blocks exist only while they do not hurt first-class hit rates.
``variant="flat"`` disables the protection (the Figure 5 baseline).

Engine note (docs/engine.md): replica/victim creation rides L1 and L2
evictions, which only happen during misses and fills — contention
events both simulation engines serialize identically — so ESP-NUCA
needs no engine-specific code; the cross-engine fuzz grid pins it.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cache.bank import CacheBank
from repro.cache.block import BlockClass, CacheBlock
from repro.cache.l1 import L1Line
from repro.cache.replacement import FlatLru, ProtectedLru
from repro.common.config import SystemConfig
from repro.core.duel import DuelController
from repro.core.private_bit import Classification
from repro.core.sp_nuca import SpNuca
from repro.sim.request import Supplier

VARIANTS = ("protected", "flat")

#: ``nmax_pinned`` sentinel: helping blocks unbounded (``bank.nmax =
#: None``), i.e. protected LRU with an infinite budget.
UNBOUNDED = "unbounded"


class EspNuca(SpNuca):
    name = "esp-nuca"

    private_probe_classes = (BlockClass.PRIVATE, BlockClass.REPLICA)
    shared_probe_classes = (BlockClass.SHARED, BlockClass.VICTIM)

    def __init__(self, config: SystemConfig, variant: str = "protected",
                 record_nmax_history: bool = False,
                 nmax_pinned: "int | str | None" = None) -> None:
        super().__init__(config, partitioning="lru")
        if variant not in VARIANTS:
            raise ValueError(f"unknown ESP-NUCA variant {variant!r}")
        # ``nmax_pinned`` freezes the helping budget instead of dueling:
        # an int in [0, ways-1], or UNBOUNDED for an infinite budget.
        # No duel controller, no set roles, no monitors — the oracle
        # harness (repro.check.oracles) uses it to reduce ESP-NUCA to
        # behaviourally comparable fixed points.
        if nmax_pinned is not None:
            if variant != "protected":
                raise ValueError("nmax_pinned requires the protected variant")
            if nmax_pinned != UNBOUNDED and not (
                    isinstance(nmax_pinned, int)
                    and 0 <= nmax_pinned <= config.l2.assoc - 1):
                raise ValueError(
                    f"nmax_pinned must be in [0, {config.l2.assoc - 1}] "
                    f"or UNBOUNDED, got {nmax_pinned!r}")
            self.name = f"esp-nuca-pin-{nmax_pinned}"
        self.nmax_pinned = nmax_pinned
        self.variant = variant
        if variant == "flat":
            self.name = "esp-nuca-flat"
        self.duel: Optional[DuelController] = None
        self._record_nmax_history = record_nmax_history
        # Helping-block statistics (mounted at ``arch.helping``).
        helping = self.stats.scope("helping")
        self._replicas_created = helping.counter("replicas_created")
        self._victims_created = helping.counter("victims_created")
        self._replica_hits = helping.counter("replica_hits")
        self._victim_hits = helping.counter("victim_hits")

    @property
    def replicas_created(self) -> int:
        return self._replicas_created.value

    @property
    def victims_created(self) -> int:
        return self._victims_created.value

    @property
    def replica_hits(self) -> int:
        return self._replica_hits.value

    @property
    def victim_hits(self) -> int:
        return self._victim_hits.value

    # -- construction ---------------------------------------------------------------

    def build_banks(self) -> List[CacheBank]:
        cfg = self.config.l2
        if self.variant == "flat":
            return [CacheBank(b, cfg.sets_per_bank, cfg.assoc, FlatLru())
                    for b in range(cfg.num_banks)]
        policy = ProtectedLru()
        return [CacheBank(b, cfg.sets_per_bank, cfg.assoc, policy)
                for b in range(cfg.num_banks)]

    def on_bound(self) -> None:
        if self.variant != "protected":
            return
        if self.nmax_pinned is not None:
            pinned = (None if self.nmax_pinned == UNBOUNDED
                      else self.nmax_pinned)
            for bank in self.banks:
                bank.nmax = pinned
            return
        self.duel = DuelController(self.config.esp, self.config.l2.assoc,
                                   record_history=self._record_nmax_history)
        for bank in self.banks:
            self.duel.attach(bank)
        self.stats.mount("duel", self.duel.stats, replace=True)
        self.on_tracer(self.system.tracer)

    def on_tracer(self, tracer) -> None:
        if self.duel is not None:
            system = self.system
            self.duel.set_tracer(tracer, now=lambda: system.trace_now,
                                 pid=system.trace_pid)

    # -- hit handling refinements ---------------------------------------------------

    def _serve_private_hit(self, core: int, block: int, entry: CacheBlock,
                           bank_id: int, index: int, is_write: bool,
                           t_hit: int) -> Tuple[int, Supplier]:
        if entry.cls is BlockClass.REPLICA:
            self._replica_hits.value += 1
            if not is_write:
                # Serve reads token-by-token so the replica persists
                # across reuses instead of swapping into the L1 and
                # being recreated (and re-evicting a neighbour) on
                # every L1 eviction cycle.
                tokens, dirty, _ = self.take_from_l2_entry(
                    block, bank_id, index, entry,
                    want_all=False, exclusive_if_sole=False)
                self.system.l1_fill(core, block, tokens, dirty, t_hit)
                return t_hit, Supplier.L2_LOCAL
        return super()._serve_private_hit(core, block, entry, bank_id,
                                          index, is_write, t_hit)

    def _serve_shared_hit(self, core: int, block: int, entry: CacheBlock,
                          bank_id: int, index: int, sb_router: int,
                          is_write: bool, t_hit: int) -> Tuple[int, Supplier]:
        if entry.cls is BlockClass.VICTIM:
            self._victim_hits.value += 1
            if entry.owner == core:
                # The owner reclaims its victim: swap it back into L1.
                tokens, dirty, _ = self.take_from_l2_entry(
                    block, bank_id, index, entry, want_all=True)
                t_done = t_hit
                if is_write and tokens < self.ledger.total_tokens:
                    t_coll, extra, _ = self.collect_for_write(
                        core, block, sb_router, t_hit)
                    tokens += extra
                    t_done = max(t_done, t_coll)
                core_router = self.router_of_core(core)
                t_done = max(t_done, self.data(sb_router, core_router, t_hit))
                self.system.l1_fill(core, block, tokens, dirty or is_write,
                                    t_done)
                supplier = (Supplier.L2_LOCAL if sb_router == core_router
                            else Supplier.L2_SHARED)
                return t_done, supplier
            # A second core reached a remote private block that already
            # sits at its shared-map location: demote it in place.
            self.banks[bank_id].reclassify(index, entry, BlockClass.SHARED)
            entry.owner = -1
            tr = self.system.tracer
            if tr.enabled and tr.wants("esp"):
                tr.instant(
                    "esp", "victim demoted in place",
                    ts=self.system.trace_now, pid=self.system.trace_pid(),
                    tid=f"bank{bank_id}",
                    args={"block": f"{block:#x}", "accessor": core})
        return super()._serve_shared_hit(core, block, entry, bank_id, index,
                                         sb_router, is_write, t_hit)

    # -- helping-block creation --------------------------------------------------------

    def route_l1_eviction(self, core: int, line: L1Line, t: int = 0) -> None:
        block = line.block
        cls = self.classifier.classify(block)
        if (cls is Classification.PRIVATE
                and self.classifier.owner(block) == core):
            tokens = self.ledger.take_from_l1(block, core)
            self.merge_or_allocate(self.amap.private_bank(block, core),
                                   self.amap.private_index(block),
                                   block, BlockClass.PRIVATE, core,
                                   tokens, line.dirty, t=t)
            return
        tokens = self.ledger.take_from_l1(block, core)
        dirty = line.dirty
        sb = self.amap.shared_bank(block)
        sidx = self.amap.shared_index(block)
        if self.is_local_bank(core, sb) or not line.reused:
            # No replica when the shared bank already sits at this
            # core's router (it could not get closer), or when the line
            # showed no reuse while in the L1 (single-touch shared data
            # would only burn a way and evict first-class blocks).
            self.merge_or_allocate(sb, sidx, block, BlockClass.SHARED, -1,
                                   tokens, dirty, t=t)
            return
        if tokens >= 2:
            # Endow the replica with a few tokens so it can serve
            # several local reads before dissolving; the remainder (and
            # the dirty responsibility) goes to the shared bank.
            grant = min(tokens - 1, 4)
            if self._try_replica(core, block, grant, dirty=False, t=t):
                tokens -= grant
            self.merge_or_allocate(sb, sidx, block, BlockClass.SHARED, -1,
                                   tokens, dirty, t=t)
            return
        # Single token: the other copies (and likely a shared entry)
        # are elsewhere, so the whole writeback becomes the replica.
        if not self._try_replica(core, block, tokens, dirty, t=t):
            self.merge_or_allocate(sb, sidx, block, BlockClass.SHARED, -1,
                                   tokens, dirty, t=t)

    def _try_replica(self, core: int, block: int, tokens: int,
                     dirty: bool, t: int = 0) -> bool:
        bank_id = self.amap.private_bank(block, core)
        index = self.amap.private_index(block)
        bank = self.banks[bank_id]
        existing = bank.peek(index, block, classes=(BlockClass.REPLICA,),
                             owner=core)
        if existing is not None:
            existing.tokens += tokens
            existing.dirty = existing.dirty or dirty
            bank.touch(existing)
            return True
        entry = CacheBlock(block=block, cls=BlockClass.REPLICA, owner=core,
                           dirty=dirty, tokens=tokens)
        if self.l2_allocate(bank_id, index, entry, cascade=True, t=t):
            self._replicas_created.value += 1
            tr = self.system.tracer
            if tr.enabled and tr.wants("esp"):
                tr.instant(
                    "esp", "replica placed", ts=self.system.trace_now,
                    pid=self.system.trace_pid(), tid=f"bank{bank_id}",
                    args={"block": f"{block:#x}", "owner": core,
                          "tokens": tokens})
            return True
        return False

    def on_l2_eviction(self, bank_id: int, set_index: int, entry: CacheBlock,
                       tokens: int, cascade: bool, t: int = 0) -> None:
        if entry.cls is BlockClass.PRIVATE and not cascade:
            sb = self.amap.shared_bank(entry.block)
            sidx = self.amap.shared_index(entry.block)
            bank = self.banks[sb]
            existing = bank.peek(sidx, entry.block,
                                 classes=(BlockClass.VICTIM,),
                                 owner=entry.owner)
            if existing is not None:
                existing.tokens += tokens
                existing.dirty = existing.dirty or entry.dirty
                bank.touch(existing)
                return
            victim = CacheBlock(block=entry.block, cls=BlockClass.VICTIM,
                                owner=entry.owner, dirty=entry.dirty,
                                tokens=tokens)
            if self.l2_allocate(sb, sidx, victim, cascade=True, t=t):
                self._victims_created.value += 1
                tr = self.system.tracer
                if tr.enabled and tr.wants("esp"):
                    tr.instant(
                        "esp", "victim placed", ts=self.system.trace_now,
                        pid=self.system.trace_pid(), tid=f"bank{sb}",
                        args={"block": f"{entry.block:#x}",
                              "owner": entry.owner, "tokens": tokens})
                return
        self.system.send_to_memory(entry.block, tokens, entry.dirty,
                                   self.router_of_bank(bank_id), t)
