"""Chip-wide private/shared block classification (Section 2.1).

A block is *private* from the moment it arrives on chip until a second
core touches it, at which point it becomes *shared* and stays shared
"while it stays in the chip". When the last on-chip copy disappears the
status is forgotten: the next arrival starts private again.

In hardware the state is the private bit stored alongside each copy and
carried in requests; a central map is its exact functional equivalent.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional

from repro.common.statsreg import Scope


class Classification(enum.Enum):
    ABSENT = "absent"
    PRIVATE = "private"
    SHARED = "shared"


_SHARED_OWNER = -1


class PrivateBitDirectory:
    def __init__(self) -> None:
        self._owner: Dict[int, int] = {}
        # Mounted at ``arch.classifier`` when owned by an architecture.
        self.stats = Scope()
        self._demotions = self.stats.counter("demotions")

    @property
    def demotions(self) -> int:
        """Private -> shared transitions."""
        return self._demotions.value

    def classify(self, block: int) -> Classification:
        owner = self._owner.get(block)
        if owner is None:
            return Classification.ABSENT
        return Classification.SHARED if owner == _SHARED_OWNER else Classification.PRIVATE

    def owner(self, block: int) -> Optional[int]:
        """The owning core for PRIVATE blocks, else None."""
        owner = self._owner.get(block)
        return None if owner is None or owner == _SHARED_OWNER else owner

    def on_arrival(self, block: int, core: int) -> None:
        """Block enters the chip: private, owned by the fetching core."""
        if block in self._owner:
            raise ValueError(f"block {block:#x} already classified")
        self._owner[block] = core

    def note_access(self, block: int, core: int) -> bool:
        """Record an access; returns True on a private->shared demotion."""
        owner = self._owner.get(block)
        if owner is None or owner == _SHARED_OWNER or owner == core:
            return False
        self._owner[block] = _SHARED_OWNER
        self._demotions.value += 1
        return True

    def force_shared(self, block: int) -> None:
        if block in self._owner:
            self._owner[block] = _SHARED_OWNER

    def on_left_chip(self, block: int) -> None:
        """All copies gone: the status leaves with the block."""
        self._owner.pop(block, None)

    def __len__(self) -> int:
        return len(self._owner)
