"""Time-series instrumentation of the dueling controller (Figure 3).

The paper's Figure 3 illustrates how the reference/explorer/
conventional hit-rate monitors drive ``nmax`` in small-working-set vs
high-utility phases. ``TimelineRecorder`` samples exactly those
quantities during a live run, so the adaptation can be plotted — see
``examples/adaptive_nmax.py`` and the phase-change tests.

Since the unified tracing layer (:mod:`repro.obs`) the recorder is a
**view over the duel controller's event stream**: the controller emits
a ``duel-observe`` detail event per monitored lookup (emitted only when
something opted in — this recorder, or a trace capture listing the
category explicitly), and the recorder counts those events and
snapshots the per-bank duel state every ``period`` of them. Use it as
a context manager::

    with TimelineRecorder(architecture, period=256) as recorder:
        engine.run(...)
    print(recorder.format())

so an exception mid-run cannot leave the subscription installed.
``install()``/``uninstall()`` remain for older callers but are
deprecated in favour of the ``with`` form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.esp_nuca import EspNuca
from repro.obs.trace import TraceEvent, TracerView

SPARK = "▁▂▃▄▅▆▇█"


@dataclass
class TimelineSample:
    events: int
    average_nmax: float
    hr_reference: float
    hr_conventional: float
    hr_explorer: float
    per_bank_nmax: List[int] = field(default_factory=list)


class TimelineRecorder(TracerView):
    """Samples duel state every ``period`` monitored events."""

    def __init__(self, architecture: EspNuca, period: int = 256,
                 focus_bank: Optional[int] = None) -> None:
        if architecture.duel is None:
            raise ValueError("timeline recording needs the protected "
                             "(dueling) ESP-NUCA variant")
        if architecture.system is None:
            raise ValueError("timeline recording needs a bound "
                             "architecture (construct the CmpSystem first)")
        TracerView.__init__(self, architecture.system,
                            categories=(), detail=("duel-observe",))
        self.architecture = architecture
        self.period = period
        self.focus_bank = focus_bank
        self.samples: List[TimelineSample] = []
        self._events = 0

    # -- lifecycle ---------------------------------------------------------------

    def __enter__(self) -> "TimelineRecorder":
        self._attach()
        return self

    def __exit__(self, *exc_info) -> None:
        self._detach()

    def install(self) -> "TimelineRecorder":
        """Deprecated — use the context-manager form, which uninstalls
        even when the traced block raises."""
        return self.__enter__()

    def uninstall(self) -> None:
        """Deprecated — use the context-manager form."""
        self._detach()

    # -- the view ----------------------------------------------------------------

    def _view_event(self, event: TraceEvent) -> None:
        if event.category != "duel-observe":
            return
        self._events += 1
        if self._events % self.period == 0:
            self._snapshot()

    def _snapshot(self) -> None:
        arch = self.architecture
        duel = arch.duel
        states = [duel.state_of(b.bank_id) for b in arch.banks]
        focus = (duel.state_of(self.focus_bank)
                 if self.focus_bank is not None else states[0])
        self.samples.append(TimelineSample(
            events=self._events,
            average_nmax=sum(s.nmax for s in states) / len(states),
            hr_reference=focus.hr_reference.hit_rate(),
            hr_conventional=focus.hr_conventional.hit_rate(),
            hr_explorer=focus.hr_explorer.hit_rate(),
            per_bank_nmax=[s.nmax for s in states],
        ))

    # -- rendering ----------------------------------------------------------------

    def sparkline(self, attribute: str = "average_nmax",
                  width: Optional[int] = None) -> str:
        """A one-line unicode chart of one sampled attribute."""
        values = [getattr(s, attribute) for s in self.samples]
        if not values:
            return ""
        if width and len(values) > width:
            stride = len(values) / width
            values = [values[int(i * stride)] for i in range(width)]
        low, high = min(values), max(values)
        span = (high - low) or 1.0
        return "".join(
            SPARK[min(int((v - low) / span * (len(SPARK) - 1)),
                      len(SPARK) - 1)]
            for v in values)

    def format(self) -> str:
        if not self.samples:
            return "no samples"
        last = self.samples[-1]
        return "\n".join([
            f"samples: {len(self.samples)} "
            f"(every {self.period} monitored events)",
            f"nmax    {self.sparkline('average_nmax')}  "
            f"now {last.average_nmax:.2f}",
            f"HR_ref  {self.sparkline('hr_reference')}  "
            f"now {last.hr_reference:.2f}",
            f"HR_conv {self.sparkline('hr_conventional')}  "
            f"now {last.hr_conventional:.2f}",
            f"HR_expl {self.sparkline('hr_explorer')}  "
            f"now {last.hr_explorer:.2f}",
        ])
