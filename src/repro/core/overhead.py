"""Storage-overhead model — the 'low-cost' half of the paper's title.

Section 5.2 itemizes ESP-NUCA's bookkeeping: ``log2(w)`` bits per set
for the helping-block count ``n``, ``log2(w)`` bits per bank for
``nmax``, ``3b`` bits per bank for the hit-rate estimators, plus the
per-line private bit and the ``p``-bit tag extension of Section 2.1 —
"the aggregate storage overhead is approximately 9KB" for their
configuration (bank-level items; the tag extension is accounted
separately as it also applies to SP-NUCA).

The same model prices the counterparts' extra state, reproducing the
cost narrative of Section 6.1: shadow-tag partitioning, D-NUCA's
search/placement state, ASR's monitoring machinery and Cooperative
Caching's central duplicate-tag directory (CCE) are all one to three
orders of magnitude more expensive.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

from repro.common.config import SystemConfig


def _log2(value: int) -> int:
    return max(1, math.ceil(math.log2(value)))


@dataclass
class OverheadReport:
    """Itemized extra storage (bits) of one architecture."""

    architecture: str
    items: Dict[str, int] = field(default_factory=dict)

    def add(self, name: str, bits: int) -> None:
        self.items[name] = bits

    @property
    def total_bits(self) -> int:
        return sum(self.items.values())

    @property
    def total_kib(self) -> float:
        return self.total_bits / 8 / 1024

    def format(self) -> str:
        lines = [f"{self.architecture}: {self.total_kib:.2f} KiB total"]
        for name, bits in sorted(self.items.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {name:40s} {bits / 8 / 1024:10.3f} KiB")
        return "\n".join(lines)


class StorageModel:
    """Derived geometry shared by all the per-architecture calculators."""

    def __init__(self, config: SystemConfig | None = None,
                 physical_address_bits: int = 40) -> None:
        self.config = config or SystemConfig()
        cfg = self.config
        self.lines = cfg.l2.size // cfg.l2.block_size
        self.sets = cfg.l2.num_banks * cfg.l2.sets_per_bank
        self.banks = cfg.l2.num_banks
        self.ways = cfg.l2.assoc
        block_bits = cfg.byte_bits
        # Shared-interpretation tag width (Figure 1b).
        self.shared_tag_bits = (physical_address_bits - block_bits
                                - cfg.bank_bits - cfg.index_bits)
        # The private tag is p bits wider; the array is sized for it.
        self.private_tag_bits = self.shared_tag_bits + cfg.core_bits

    # -- the paper's proposals ---------------------------------------------------

    def sp_nuca(self) -> OverheadReport:
        """Section 2.1: a private bit per line plus the p-bit wider tag."""
        report = OverheadReport("sp-nuca")
        report.add("private bit (1 bit/line)", self.lines)
        report.add(f"tag extension ({self.config.core_bits} bits/line)",
                   self.lines * self.config.core_bits)
        return report

    def esp_nuca(self) -> OverheadReport:
        """Section 5.2's inventory on top of SP-NUCA."""
        cfg = self.config
        report = OverheadReport("esp-nuca")
        report.add("private bit (1 bit/line)", self.lines)
        report.add(f"tag extension ({cfg.core_bits} bits/line)",
                   self.lines * cfg.core_bits)
        # Helping blocks need a class bit (replica/victim vs first
        # class) and, for victims, the owner id to route reclaims.
        report.add("helping-class bit (1 bit/line)", self.lines)
        report.add(f"victim owner id ({cfg.core_bits} bits/line)",
                   self.lines * cfg.core_bits)
        way_bits = _log2(self.ways)
        report.add(f"n counter ({way_bits} bits/set)", self.sets * way_bits)
        report.add(f"nmax ({way_bits} bits/bank)", self.banks * way_bits)
        report.add(f"hit-rate EMAs (3 x {cfg.esp.ema_bits} bits/bank)",
                   self.banks * 3 * cfg.esp.ema_bits)
        return report

    def esp_nuca_bank_level(self) -> OverheadReport:
        """Only the items Section 5.2 sums to 'approximately 9KB':
        the per-set counter and the per-bank controller state."""
        cfg = self.config
        way_bits = _log2(self.ways)
        report = OverheadReport("esp-nuca (Section 5.2 items)")
        report.add(f"n counter ({way_bits} bits/set)", self.sets * way_bits)
        report.add(f"nmax ({way_bits} bits/bank)", self.banks * way_bits)
        report.add(f"hit-rate EMAs (3 x {cfg.esp.ema_bits} bits/bank)",
                   self.banks * 3 * cfg.esp.ema_bits)
        return report

    # -- counterpart costs (Section 6.1's cost narrative) -------------------------

    def shadow_tags(self, tags_per_set: int = 8) -> OverheadReport:
        """The Figure 4 baseline: full shadow tags in every set."""
        report = OverheadReport("sp-nuca-shadow")
        report.add(
            f"shadow tags ({tags_per_set}/set x {self.private_tag_bits} bits)",
            self.sets * tags_per_set * self.private_tag_bits)
        report.add("per-set partition target", self.sets * _log2(self.ways))
        return report

    def dnuca(self) -> OverheadReport:
        """Idealized perfect search priced as a chip-wide location
        table: one entry per line naming its current bankset slot, plus
        the partial-tag arrays a realistic smart search needs."""
        cluster_bits = _log2(self.config.num_cores)
        report = OverheadReport("d-nuca")
        report.add(f"location table ({cluster_bits} bits/line)",
                   self.lines * cluster_bits)
        report.add("partial-tag search arrays (6 bits/line)", self.lines * 6)
        return report

    def asr(self, victim_tags_per_core: int = 1024) -> OverheadReport:
        """Beckmann et al.'s monitoring: per-core benefit/cost pairs
        (VTBs for the current level, NLHBs for the next level) plus the
        controller state — the 'complex hardware implementation' of
        Section 6.4."""
        cores = self.config.num_cores
        report = OverheadReport("asr")
        report.add(f"victim tag buffers ({victim_tags_per_core}/core)",
                   cores * victim_tags_per_core * self.private_tag_bits)
        report.add(f"next-level hit buffers ({victim_tags_per_core}/core)",
                   cores * victim_tags_per_core * self.private_tag_bits)
        report.add("cost/benefit counters (4 x 32 bits/core)",
                   cores * 4 * 32)
        report.add("replication level (3 bits/core)", cores * 3)
        return report

    def cooperative_caching(self) -> OverheadReport:
        """The CCE keeps a duplicate of every tile's L2 tags."""
        report = OverheadReport("cooperative-caching")
        report.add(f"CCE duplicate tags ({self.private_tag_bits} bits/line)",
                   self.lines * self.private_tag_bits)
        report.add("CCE state (2 bits/line)", self.lines * 2)
        report.add("singlet/recirculation bits (2 bits/line)",
                   self.lines * 2)
        return report

    def all_reports(self) -> List[OverheadReport]:
        return [self.sp_nuca(), self.esp_nuca(), self.shadow_tags(),
                self.dnuca(), self.asr(), self.cooperative_caching()]


def summarize(config: SystemConfig | None = None) -> str:
    model = StorageModel(config)
    out = [
        "Extra storage on top of a plain shared S-NUCA "
        f"({model.lines} lines, {model.sets} sets, {model.banks} banks):",
        "",
    ]
    for report in model.all_reports():
        out.append(report.format())
        out.append("")
    bank_level = model.esp_nuca_bank_level()
    out.append(f"Section 5.2 check: bank-level ESP items = "
               f"{bank_level.total_kib:.2f} KiB (paper: ~9 KB)")
    return "\n".join(out)
