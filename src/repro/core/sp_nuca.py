"""SP-NUCA: Shared/Private NUCA (Section 2).

Request flow (Figure 2b): an L1 miss first probes the core's private
bank (private interpretation); on a miss there the request is forwarded
to the block's shared bank and — when the block is off chip — to the
memory controller in parallel; if the shared bank also misses, the
request is forwarded to the L1s or other private banks known (TokenD)
to hold tokens. A private block found in a *remote* private bank has
its private bit reset and migrates to its shared-map bank, so the
broadcast step is paid only once per demoted block.

Way partitioning between private and shared content is dynamic and
emergent from the replacement policy; flat LRU is the paper's choice,
with shadow-tag and static-12/4 partitioning as the Figure 4 baselines.

Engine note (docs/engine.md): the whole probe flow, including
private-bit demotion, runs from ``handle_miss`` — the contention path
serialized identically by both simulation engines. L1 hits never reach
the architecture, which is exactly what makes them batchable.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.architectures.base import NucaArchitecture
from repro.cache.bank import CacheBank
from repro.cache.block import BlockClass, CacheBlock
from repro.cache.l1 import L1Line
from repro.cache.replacement import FlatLru, ReplacementPolicy, StaticPartition
from repro.cache.shadow import ShadowTagPartition
from repro.common.config import SystemConfig
from repro.coherence.tokens import L2Holding
from repro.core.private_bit import Classification, PrivateBitDirectory
from repro.sim.request import Supplier

#: Figure 4 partitioning variants.
PARTITIONING_CHOICES = ("lru", "static", "shadow")


class SpNuca(NucaArchitecture):
    name = "sp-nuca"

    #: Block classes matched by the private-bank probe (ESP adds REPLICA).
    private_probe_classes: Tuple[BlockClass, ...] = (BlockClass.PRIVATE,)
    #: Block classes matched by the shared-bank probe (ESP adds VICTIM).
    shared_probe_classes: Tuple[BlockClass, ...] = (BlockClass.SHARED,)

    def __init__(self, config: SystemConfig, partitioning: str = "lru") -> None:
        super().__init__(config)
        if partitioning not in PARTITIONING_CHOICES:
            raise ValueError(f"unknown partitioning {partitioning!r}")
        self.partitioning = partitioning
        self.classifier = PrivateBitDirectory()
        self.stats.mount("classifier", self.classifier.stats)
        self._shadow: Optional[ShadowTagPartition] = None
        if partitioning != "lru":
            self.name = f"sp-nuca-{partitioning}"

    # -- construction ------------------------------------------------------------

    def _make_policy(self) -> ReplacementPolicy:
        if self.partitioning == "static":
            # 12 of 16 ways private, 4 shared (Section 5.1, [23]).
            return StaticPartition(private_ways=3 * self.config.l2.assoc // 4)
        if self.partitioning == "shadow":
            if self._shadow is None:
                self._shadow = ShadowTagPartition(self.config.l2.assoc)
            return self._shadow
        return FlatLru()

    def build_banks(self) -> List[CacheBank]:
        cfg = self.config.l2
        policy = self._make_policy()
        return [CacheBank(b, cfg.sets_per_bank, cfg.assoc, policy)
                for b in range(cfg.num_banks)]

    # -- the miss path --------------------------------------------------------------

    def handle_miss(self, core: int, block: int, is_write: bool, t: int
                    ) -> Tuple[int, Supplier]:
        # Address-map arithmetic inlined from AddressMap.private_bank /
        # private_index / shared_bank / shared_index (Figure 1b): this
        # runs once per L2 access, and four method calls are measurable
        # on the contention path. The bit layout is defined there.
        amap = self.amap
        pb = core * amap._banks_per_core + (block & amap._private_bank_mask)
        pidx = (block >> amap.private_bank_bits) & amap._index_mask
        core_router = self.router_of_core(core)
        # Step 1: the local private bank (same router as the core).
        entry = self.banks[pb].lookup(pidx, block,
                                      classes=self.private_probe_classes,
                                      owner=core)
        if entry is not None:
            t_hit = self.bank_service(pb, t, hit=True)
            return self._serve_private_hit(core, block, entry, pb, pidx,
                                           is_write, t_hit)
        t_pmiss = self.bank_service(pb, t, hit=False)
        if self._shadow is not None:
            self._observe_shadow_miss(pb, pidx, block, BlockClass.PRIVATE)
        # Step 2: forward to the shared bank; dispatch memory in parallel
        # when no on-chip copy exists (TokenD-filtered speculation).
        sb = block & amap._bank_mask
        sidx = (block >> amap.bank_bits) & amap._index_mask
        sb_router = self.router_of_bank(sb)
        off_chip = not self.ledger.on_chip(block)
        t_sb = self.req(core_router, sb_router, t_pmiss)
        sentry = self.banks[sb].lookup(sidx, block,
                                       classes=self.shared_probe_classes)
        if sentry is not None:
            t_hit = self.bank_service(sb, t_sb, hit=True)
            return self._serve_shared_hit(core, block, sentry, sb, sidx,
                                          sb_router, is_write, t_hit)
        t_smiss = self.bank_service(sb, t_sb, hit=False)
        if self._shadow is not None:
            self._observe_shadow_miss(sb, sidx, block, BlockClass.SHARED)
        if off_chip:
            t_mem = self.fetch_offchip(core_router, t_pmiss, core_router)
            tokens = self.ledger.take_from_memory(block)
            assert tokens > 0
            self.classifier.on_arrival(block, core)
            t_done = max(t_mem, t_smiss)
            self.system.l1_fill(core, block, tokens, is_write, t_done)
            return t_done, Supplier.OFFCHIP
        # Step 3/3': forward to L1 holders or other private banks.
        return self._serve_remote(core, block, sb, sidx, sb_router,
                                  is_write, t_smiss)

    # -- hit handlers ----------------------------------------------------------------

    def _serve_private_hit(self, core: int, block: int, entry: CacheBlock,
                           bank_id: int, index: int, is_write: bool,
                           t_hit: int) -> Tuple[int, Supplier]:
        """Hit in the requester's own partition: swap the block into L1."""
        tokens, dirty, _ = self.take_from_l2_entry(block, bank_id, index,
                                                   entry, want_all=True)
        t_done = t_hit
        if is_write and tokens < self.ledger.total_tokens:
            t_coll, extra, _ = self.collect_for_write(
                core, block, self.router_of_core(core), t_hit)
            tokens += extra
            t_done = max(t_done, t_coll)
        self.system.l1_fill(core, block, tokens, dirty or is_write, t_done)
        return t_done, Supplier.L2_LOCAL

    def _note_access(self, block: int, core: int) -> None:
        """Classifier update with a demotion instant when the private
        bit flips (the Section 2.3 private→shared transition)."""
        demoted = self.classifier.note_access(block, core)
        if demoted:
            tr = self.system.tracer
            if tr.enabled and tr.wants("classifier"):
                tr.instant(
                    "classifier", "demotion private->shared",
                    ts=self.system.trace_now, pid=self.system.trace_pid(),
                    tid=f"bank{self.amap.shared_bank(block)}",
                    args={"block": f"{block:#x}", "accessor": core})

    def _serve_shared_hit(self, core: int, block: int, entry: CacheBlock,
                          bank_id: int, index: int, sb_router: int,
                          is_write: bool, t_hit: int) -> Tuple[int, Supplier]:
        self._note_access(block, core)
        core_router = self.router_of_core(core)
        if is_write:
            tokens, _, _ = self.take_from_l2_entry(block, bank_id, index,
                                                   entry, want_all=True)
            t_coll, extra, _ = self.collect_for_write(core, block,
                                                      sb_router, t_hit)
            t_done = max(self.data(sb_router, core_router, t_hit), t_coll)
            self.system.l1_fill(core, block, tokens + extra, True, t_done)
        else:
            tokens, dirty, _ = self.take_from_l2_entry(block, bank_id, index,
                                                       entry, want_all=False)
            t_done = self.data(sb_router, core_router, t_hit)
            self.system.l1_fill(core, block, tokens, dirty, t_done)
        supplier = (Supplier.L2_LOCAL if sb_router == core_router
                    else Supplier.L2_SHARED)
        return t_done, supplier

    # -- the 3' path -------------------------------------------------------------------

    def _serve_remote(self, core: int, block: int, sb: int, sidx: int,
                      sb_router: int, is_write: bool, t: int
                      ) -> Tuple[int, Supplier]:
        """Block is on chip but in neither probed bank: remote private
        banks (migrate + demote) or remote L1s supply it."""
        self._note_access(block, core)
        core_router = self.router_of_core(core)
        state = self.ledger.state(block)
        holding = self._pick_remote_holding(state.l2.values(), sb_router)
        if holding is not None:
            return self._serve_remote_l2(core, block, holding, sb, sidx,
                                         sb_router, is_write, t)
        holders = [h for h in state.l1 if h != core]
        assert holders, "on-chip block must have a holder"
        if is_write:
            t_done, tokens, _ = self.collect_for_write(core, block,
                                                       sb_router, t)
            self.system.l1_fill(core, block, tokens, True, t_done)
            return t_done, Supplier.L1_REMOTE
        holder = min(holders, key=lambda h: self.topology.hops(
            sb_router, self.router_of_core(h)))
        tokens, dirty = self.take_read_from_l1(block, holder)
        t_done = self.supply_from_l1(core, holder, sb_router, t)
        self.system.l1_fill(core, block, tokens, dirty, t_done)
        return t_done, Supplier.L1_REMOTE

    def _pick_remote_holding(self, holdings, sb_router: int
                             ) -> Optional[L2Holding]:
        candidates = list(holdings)
        if not candidates:
            return None
        return min(candidates, key=lambda h: self.topology.hops(
            sb_router, self.router_of_bank(h.bank_id)))

    def _serve_remote_l2(self, core: int, block: int, holding: L2Holding,
                         sb: int, sidx: int, sb_router: int, is_write: bool,
                         t: int) -> Tuple[int, Supplier]:
        entry = holding.entry
        remote_router = self.router_of_bank(holding.bank_id)
        core_router = self.router_of_core(core)
        t1 = self.req(sb_router, remote_router, t)
        t2 = self.bank_service(holding.bank_id, t1, hit=True)
        if is_write:
            t_coll, tokens, _ = self.collect_for_write(core, block,
                                                       sb_router, t2)
            t_done = max(self.data(remote_router, core_router, t2), t_coll)
            self.system.l1_fill(core, block, tokens, True, t_done)
            return t_done, Supplier.L2_REMOTE
        if entry.cls is BlockClass.REPLICA:
            # Another core's local copy of shared data: borrow a token,
            # leave the replica serving its owner.
            tokens, dirty, _ = self.take_from_l2_entry(
                block, holding.bank_id, holding.set_index, entry,
                want_all=False, exclusive_if_sole=False)
            t_done = self.data(remote_router, core_router, t2)
            self.system.l1_fill(core, block, tokens, dirty, t_done)
            return t_done, Supplier.L2_REMOTE
        # Private block in a remote private bank: reset the private bit
        # and migrate the copy to its shared bank (Section 2.3).
        dirty = entry.dirty
        tokens = self.ledger.take_from_l2(block, entry)
        self.banks[holding.bank_id].remove(holding.set_index, entry)
        grant = 1 if tokens > 1 else tokens
        rest = tokens - grant
        t_done = self.data(remote_router, core_router, t2)
        self.system.l1_fill(core, block, grant, dirty if rest == 0 else False,
                            t_done)
        if rest:
            self.merge_or_allocate(sb, sidx, block, BlockClass.SHARED, -1,
                                   rest, dirty, t=t_done)
        return t_done, Supplier.L2_REMOTE

    # -- eviction routing ------------------------------------------------------------------

    def route_l1_eviction(self, core: int, line: L1Line, t: int = 0) -> None:
        block = line.block
        tokens = self.ledger.take_from_l1(block, core)
        cls = self.classifier.classify(block)
        if (cls is Classification.PRIVATE
                and self.classifier.owner(block) == core):
            self.merge_or_allocate(self.amap.private_bank(block, core),
                                   self.amap.private_index(block),
                                   block, BlockClass.PRIVATE, core,
                                   tokens, line.dirty, t=t)
        else:
            self.merge_or_allocate(self.amap.shared_bank(block),
                                   self.amap.shared_index(block),
                                   block, BlockClass.SHARED, -1,
                                   tokens, line.dirty, t=t)

    def on_block_left_chip(self, block: int) -> None:
        self.classifier.on_left_chip(block)

    # -- shadow-tag learning ---------------------------------------------------------------

    def _observe_shadow_miss(self, bank_id: int, set_index: int, block: int,
                             cls: BlockClass) -> None:
        if self._shadow is not None:
            self._shadow.observe_miss(bank_id, set_index, block, cls)
