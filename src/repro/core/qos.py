"""QoS-enabled ESP-NUCA — the paper's future-work extension.

Section 5.2: "Potentially, the dynamically defined d parameter provides
the opportunity to add some Quality of Service Policy [11] on top of
ESP-NUCA. However, we left this for future work."

This module builds that extension. The insight: ``d`` sets how much
first-class hit-rate degradation a bank tolerates before expelling
helping blocks — i.e. how strongly resident first-class content is
*protected*. Making ``d`` a per-bank function of the bank-owner's QoS
class turns the helping-block machinery into a service-level knob:

* banks owned by **high-priority** cores use a large ``d`` (tolerance
  ~0): foreign victims and local replicas are expelled at the first
  sign of first-class degradation — near-private isolation;
* banks owned by **low-priority** (or idle) cores use a small ``d``:
  they absorb other cores' victims readily — donated capacity.

Placement decisions are untouched; only the protection strength varies,
which keeps the extension as cheap as the base mechanism (one constant
per bank instead of one per cache).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cache.bank import CacheBank
from repro.common.config import SystemConfig
from repro.core.duel import BankDuelState, DuelController
from repro.core.esp_nuca import EspNuca


class QosClass(enum.Enum):
    """Service classes mapped onto protection strengths (d values)."""

    HIGH = "high"          # strict protection of first-class content
    NORMAL = "normal"      # the baseline ESP-NUCA tolerance
    BACKGROUND = "background"  # capacity donor


@dataclass(frozen=True)
class QosPolicy:
    """Per-class degradation shifts; larger d = smaller tolerance."""

    high_shift: int = 8
    normal_shift: Optional[int] = None   # None = the EspConfig default
    background_shift: int = 2

    def shift_for(self, qos: QosClass, default: int) -> int:
        if qos is QosClass.HIGH:
            return self.high_shift
        if qos is QosClass.BACKGROUND:
            return self.background_shift
        return self.normal_shift if self.normal_shift is not None else default


class QosDuelController(DuelController):
    """A duel controller whose tolerance is per-bank."""

    def __init__(self, config, ways: int, shifts: Dict[int, int]) -> None:
        super().__init__(config, ways)
        self._shifts = shifts

    def _evaluate(self, bank: CacheBank, state: BankDuelState) -> None:
        d = self._shifts.get(bank.bank_id, self.config.degradation_shift)
        hr_r = state.hr_reference.value
        tolerance = hr_r >> d
        if hr_r - state.hr_conventional.value > tolerance and state.nmax > 0:
            state.nmax -= 1
            state.decreases += 1
        elif (hr_r - state.hr_explorer.value <= tolerance
              and state.nmax < self.nmax_cap):
            state.nmax += 1
            state.increases += 1
        bank.nmax = state.nmax


class QosEspNuca(EspNuca):
    """ESP-NUCA with per-core QoS classes driving per-bank d values."""

    name = "esp-nuca-qos"

    def __init__(self, config: SystemConfig,
                 core_classes: Optional[Dict[int, QosClass]] = None,
                 policy: Optional[QosPolicy] = None) -> None:
        super().__init__(config, variant="protected")
        self.policy = policy or QosPolicy()
        self.core_classes: Dict[int, QosClass] = {
            core: QosClass.NORMAL for core in range(config.num_cores)}
        if core_classes:
            self.core_classes.update(core_classes)

    def qos_of_core(self, core: int) -> QosClass:
        return self.core_classes[core]

    def set_core_class(self, core: int, qos: QosClass) -> None:
        """Reclassify a core at run time (OS scheduling boundary)."""
        self.core_classes[core] = qos
        if self.duel is not None:
            self._apply_shifts()

    def _bank_shifts(self) -> Dict[int, int]:
        default = self.config.esp.degradation_shift
        shifts: Dict[int, int] = {}
        for core, qos in self.core_classes.items():
            for bank in self.amap.private_banks(core):
                shifts[bank] = self.policy.shift_for(qos, default)
        return shifts

    def _apply_shifts(self) -> None:
        assert isinstance(self.duel, QosDuelController)
        self.duel._shifts = self._bank_shifts()

    def on_bound(self) -> None:
        self.duel = QosDuelController(self.config.esp, self.config.l2.assoc,
                                      self._bank_shifts())
        for bank in self.banks:
            self.duel.attach(bank)

    def describe(self) -> str:
        classes = ", ".join(f"{c}:{q.value}"
                            for c, q in sorted(self.core_classes.items()))
        return f"{self.name}({classes})"


def protection_summary(arch: QosEspNuca) -> List[str]:
    """Human-readable per-class helping budgets (for examples/benches)."""
    lines = []
    for qos in QosClass:
        banks = [b for c, q in arch.core_classes.items() if q is qos
                 for b in arch.amap.private_banks(c)]
        if not banks:
            continue
        budgets = [arch.duel.state_of(b).nmax for b in banks]
        lines.append(f"{qos.value:10s} banks={len(banks):2d} "
                     f"avg nmax={sum(budgets) / len(budgets):5.2f}")
    return lines
