"""Machine-checkable reproduction claims.

EXPERIMENTS.md states which of the paper's claims reproduce; this
module makes those statements executable. Each :class:`Claim` names
the experiment whose report it reads and a predicate over the report's
series; ``verify_claims`` evaluates every claim available in a given
set of reports (e.g. the JSON files a full run exports) and renders a
verdict table.

Claims are *shape-level* on purpose — orderings and factors, never
absolute numbers — matching the reproduction's contract (DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from repro.common.stats import variance
from repro.harness.reporting import ExperimentReport, format_table


@dataclass(frozen=True)
class Claim:
    claim_id: str
    experiment: str
    paper_says: str
    check: Callable[[ExperimentReport], bool]


def _gmean(report: ExperimentReport, series: str) -> float:
    return report.series[series][-1]


def _col(report: ExperimentReport, series: str, column: str) -> float:
    return report.series[series][report.columns.index(column)]


CLAIMS: List[Claim] = [
    Claim("fig4-flat-lru", "fig4",
          "flat-LRU partitioning performs within noise of shadow tags",
          lambda r: all(abs(v - 1.0) < 0.05 for v in r.series["sp-nuca"])),
    Claim("fig4-static-poor", "fig4",
          "the static 12/4 partition is the poor performer",
          lambda r: (sum(r.series["sp-nuca-static"])
                     < sum(r.series["sp-nuca"]) - 0.2)),
    Claim("fig5-protected-stable", "fig5",
          "protected LRU is the more stable replacement policy",
          lambda r: (min(r.series["esp-nuca"]) >= min(r.series["esp-nuca-flat"])
                     and variance(r.series["esp-nuca"])
                     <= variance(r.series["esp-nuca-flat"]) + 1e-9)),
    Claim("fig7-esp-balances", "fig7",
          "ESP-NUCA pairs near-best off-chip traffic with strongly "
          "reduced on-chip latency",
          lambda r: (_col(r, "onchip-latency", "esp-nuca") < 0.8
                     and _col(r, "offchip-access", "esp-nuca")
                     <= _col(r, "offchip-access", "private"))),
    Claim("fig8-esp-beats-shared", "fig8",
          "ESP-NUCA improves on shared by roughly 15% on transactional "
          "workloads",
          lambda r: _gmean(r, "esp-nuca") > 1.10),
    Claim("fig8-esp-beats-private-family", "fig8",
          "ESP-NUCA outperforms private, D-NUCA and ASR on transactional",
          lambda r: all(_gmean(r, "esp-nuca") > _gmean(r, a)
                        for a in ("private", "d-nuca", "asr"))),
    Claim("fig9-private-collapses-on-art", "fig9",
          "private/ASR fall up to ~40% below shared on art/mcf half-rate",
          lambda r: (_col(r, "private", "art-4") < 0.85
                     and _col(r, "asr", "mcf-4") < 0.95)),
    Claim("fig9-esp-recovers", "fig9",
          "ESP-NUCA recovers most of the half-rate gap through victims",
          lambda r: (_col(r, "esp-nuca", "art-4")
                     > _col(r, "private", "art-4") + 0.05)),
    Claim("fig9-esp-tracks-cc-best", "fig9",
          "on hybrids ESP-NUCA plays at CC-best's level",
          lambda r: _gmean(r, "esp-nuca") > _gmean(r, "cc-avg") - 0.02),
    Claim("fig10-private-family-leads", "fig10",
          "private-derived architectures lead the shared baseline on NAS",
          lambda r: _gmean(r, "private") > 1.0),
    Claim("fig10-esp-keeps-up", "fig10",
          "ESP-NUCA is the shared derivative that reaches the private "
          "family's level",
          lambda r: (_gmean(r, "esp-nuca") > 1.0
                     and _gmean(r, "esp-nuca") > _gmean(r, "private") - 0.08)),
    Claim("stability-esp-most-stable", "stability",
          "ESP-NUCA's performance variance is the lowest of the adaptive "
          "architectures over the full benchmark set",
          lambda r: (r.series["esp-nuca"][-1] <= r.series["d-nuca"][-1]
                     and r.series["esp-nuca"][-1] <= r.series["private"][-1])),
]


@dataclass
class ClaimResult:
    claim: Claim
    verdict: Optional[bool]  # None = report unavailable

    @property
    def label(self) -> str:
        if self.verdict is None:
            return "NOT RUN"
        return "REPRODUCED" if self.verdict else "NOT REPRODUCED"


def verify_claims(reports: Dict[str, ExperimentReport],
                  claims: Iterable[Claim] = CLAIMS) -> List[ClaimResult]:
    results = []
    for claim in claims:
        report = reports.get(claim.experiment)
        if report is None:
            results.append(ClaimResult(claim, None))
            continue
        try:
            verdict = bool(claim.check(report))
        except (KeyError, ValueError, IndexError):
            verdict = False
        results.append(ClaimResult(claim, verdict))
    return results


def format_results(results: List[ClaimResult]) -> str:
    rows = [[r.claim.claim_id, r.claim.experiment, r.label,
             r.claim.paper_says] for r in results]
    return format_table(["claim", "experiment", "verdict", "paper says"],
                        rows)


def load_reports_from_json(directory) -> Dict[str, ExperimentReport]:
    """Read every ``<experiment>.json`` a CLI run exported."""
    from pathlib import Path

    reports = {}
    for path in Path(directory).glob("*.json"):
        report = ExperimentReport.from_json(path.read_text())
        reports[report.experiment] = report
    return reports
